//! Replay-based checking of [`pdisk::trace`] event streams.
//!
//! [`check_trace`] walks a recorded trace and rebuilds, independently of
//! the engine, every piece of state the model rules quantify over: the
//! forecasting table `FDS`, the fetch set `F` (`M_R`), the staging pool
//! `M_D`, each run's leading-block cursor, and the output run writer's
//! stripe cursor.  Every event is then judged against the paper's rules:
//!
//! * **one block per disk per parallel I/O** (the defining constraint of
//!   the Vitter–Shriver model, §2);
//! * **forecast-minimal fetching** (§4): a scheduled read takes exactly
//!   the smallest pending block of *every* disk that has one;
//! * **flush discipline** (§5.5 rules 2a–2c): flushes happen only under
//!   the exact occupancy arithmetic of rule 2c, evict the
//!   farthest-future blocks, and cost no I/O (they merely restore
//!   forecasting entries);
//! * **buffer budgets** (Definition 3): `|F| ≤ R + D` and `|M_D| ≤ D`,
//!   checked both against the replay and against the occupancy the
//!   engine recorded for itself;
//! * **write parallelism** (§3): output runs are perfectly `D`-striped
//!   from their random start disk, full-width on every stripe but the
//!   last;
//! * **parity placement** (the redundancy layer): stripe `s`'s parity
//!   lives on disk `s mod D`, never colocated with its data.
//!
//! The replay is *exact*, not approximate: the scheduler replica below
//! mirrors `srm-core`'s data structures operation for operation (same
//! orderings, same drain points), so any divergence between trace and
//! replica is a genuine rule violation or an engine bug — either way a
//! finding.

use std::collections::{BTreeMap, BTreeSet};

use pdisk::trace::{Tagged, TraceBlock, TraceEvent, TraceFlush, TraceRunMeta, TraceTarget};
use pdisk::{BlockAddr, DiskId, FaultKind, FaultOp, Geometry, IoStats};

use crate::violation::{BlockRef, Violation, ViolationKind};

/// Counters describing what a clean trace contained — so a "zero
/// violations" verdict can also assert the checker actually saw the
/// activity it was supposed to judge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CheckSummary {
    /// Events replayed.
    pub events: u64,
    /// `PassBegin` boundaries.
    pub passes: u64,
    /// Merges opened and closed.
    pub merges: u64,
    /// Scheduled parallel reads verified.
    pub sched_reads: u64,
    /// Split-phase read submissions verified (pipelined engine only;
    /// each is later matched by its completing `SchedRead`).
    pub read_submits: u64,
    /// Blocks virtually flushed by rule 2c.
    pub flushed_blocks: u64,
    /// Leading-block depletions.
    pub depletes: u64,
    /// Buffer-to-leading promotions.
    pub promotes: u64,
    /// Output runs written.
    pub runs_written: u64,
    /// Logical parallel reads.
    pub reads: u64,
    /// Logical parallel writes.
    pub writes: u64,
    /// Durable write completions (`WriteDurable` events).
    pub durable_writes: u64,
    /// Parity commits checked for placement.
    pub parity_commits: u64,
    /// Degraded-mode reconstructions checked.
    pub reconstructs: u64,
    /// Injected faults observed.
    pub faults: u64,
    /// Retry re-issues observed.
    pub retries: u64,
}

/// One block per disk per parallel operation, disks in range.
fn check_op_disks<I>(op: &'static str, disks: I, d: usize) -> Result<(), ViolationKind>
where
    I: IntoIterator<Item = DiskId>,
{
    let mut seen = vec![false; d];
    for disk in disks {
        if disk.index() >= d {
            return Err(ViolationKind::DiskOutOfRange { op, disk, d });
        }
        if seen[disk.index()] {
            return Err(ViolationKind::DuplicateDiskInOp { op, disk });
        }
        seen[disk.index()] = true;
    }
    Ok(())
}

/// Operation-for-operation replica of `srm-core`'s scheduler state:
/// same fetch-set ordering (`BlockRef` tuples order exactly like
/// `BlockKey`), same end-popping staging drain, same swap-remove
/// promotion — so occupancy comparisons against the engine's own tags
/// are exact at every observable point.
#[derive(Debug)]
pub(crate) struct SchedReplica {
    pub(crate) r: usize,
    pub(crate) d: usize,
    /// `F` = `M_R`: the fetch set, ordered by `(key, run, idx)`.
    pub(crate) fset: BTreeSet<BlockRef>,
    /// `M_D`: staged arrivals, drained LIFO into `F`.
    pub(crate) staged: Vec<BlockRef>,
    /// `FDS`: per disk, each run's next unread block on that disk.
    pub(crate) fds: Vec<BTreeMap<u32, BlockRef>>,
}

impl SchedReplica {
    pub(crate) fn new(r: usize, d: usize) -> Self {
        SchedReplica {
            r,
            d,
            fset: BTreeSet::new(),
            staged: Vec::new(),
            fds: vec![BTreeMap::new(); d],
        }
    }

    /// Mirror of the engine's loop-top drain: move staged blocks into
    /// `F` while capacity allows, taking from the staging pool's end.
    pub(crate) fn drain(&mut self) {
        while !self.staged.is_empty() && self.fset.len() < self.r + self.d {
            if let Some(b) = self.staged.pop() {
                self.fset.insert(b);
            }
        }
    }

    /// Global forecasting minimum (`s_min` of rule 2b).
    pub(crate) fn frontier_min(&self) -> Option<BlockRef> {
        self.fds.iter().flat_map(|m| m.values()).min().copied()
    }

    /// One disk's forecasting minimum (`min H_i[j]` of §4).
    pub(crate) fn disk_min(&self, disk: usize) -> Option<BlockRef> {
        self.fds[disk].values().min().copied()
    }

    /// Rule 2c's restore: re-arm the flushed block's forecasting entry,
    /// keeping the smaller key if one is already present.
    pub(crate) fn lower_to(&mut self, disk: usize, run: u32, b: BlockRef) {
        let e = self.fds[disk].entry(run).or_insert(b);
        if b < *e {
            *e = b;
        }
    }

    /// Unread blocks still tracked by the forecasting table.
    pub(crate) fn unread(&self) -> usize {
        self.fds.iter().map(BTreeMap::len).sum()
    }

    /// Mirror of `promote_to_leading`: fetch set first, staging second.
    pub(crate) fn remove_buffered(&mut self, run: u32, idx: u64) -> bool {
        if let Some(&b) = self.fset.iter().find(|b| b.1 == run && b.2 == idx) {
            self.fset.remove(&b);
            return true;
        }
        if let Some(pos) = self.staged.iter().position(|b| b.1 == run && b.2 == idx) {
            self.staged.swap_remove(pos);
            return true;
        }
        false
    }
}

/// Per-input-run merge state: the leading-block cursor.
#[derive(Debug)]
struct RunReplica {
    meta: TraceRunMeta,
    cur_idx: u64,
    awaiting: bool,
    exhausted: bool,
}

/// A split-phase read between its `ReadSubmit` and completing
/// `SchedRead` events (pipelined engine).  Scheduling legality — flush
/// arithmetic, forecast minimality, fetch-set completeness — was judged
/// at submit, against the state the decision was actually made in; the
/// completion must repeat the same fetch set verbatim and is then only
/// checked for arrival routing and occupancy.
#[derive(Debug)]
struct PendingRead {
    targets: Vec<TraceTarget>,
    flushed: Vec<TraceFlush>,
}

/// State of one in-progress merge.
#[derive(Debug)]
struct MergeReplica {
    sched: SchedReplica,
    runs: Vec<RunReplica>,
    /// A promotion the replay performed that the trace has not yet
    /// acknowledged with a `Promote` event.
    last_promote: Option<(u32, u64)>,
    /// The one split-phase read in flight, if any.
    pending_read: Option<PendingRead>,
}

/// State of one in-progress output run.
#[derive(Debug)]
struct WriterReplica {
    start_disk: DiskId,
    next_idx: u64,
    widths: Vec<usize>,
}

/// Incremental trace checker.  Feed events in order via
/// [`Replay::apply`]; ask for the [`CheckSummary`] when done.
#[derive(Debug)]
pub struct Replay {
    geom: Geometry,
    merge: Option<MergeReplica>,
    writer: Option<WriterReplica>,
    /// Addresses of the most recent logical `Read`, for cross-checking
    /// scheduler targets against what was actually fetched.
    last_read: Option<Vec<BlockAddr>>,
    /// Addresses whose logical `Write` has no matching `WriteDurable`
    /// yet — the window a crash can tear.  Reading one of these is the
    /// recovery-invariant violation: nothing may depend on a frame
    /// whose write never durably completed.
    undurable: BTreeSet<BlockAddr>,
    summary: CheckSummary,
}

impl Replay {
    /// A checker for traces recorded under `geom`.
    pub fn new(geom: Geometry) -> Self {
        Replay {
            geom,
            merge: None,
            writer: None,
            last_read: None,
            undurable: BTreeSet::new(),
            summary: CheckSummary::default(),
        }
    }

    /// The counters accumulated so far.
    pub fn summary(&self) -> &CheckSummary {
        &self.summary
    }

    /// Replay one event, returning the violation it exposes, if any.
    pub fn apply(&mut self, event: &Tagged) -> Result<(), Box<Violation>> {
        self.summary.events += 1;
        self.step(&event.event)
            .map_err(|kind| Box::new(Violation::new(event.seq, event.pass, kind)))
    }

    fn step(&mut self, event: &TraceEvent) -> Result<(), ViolationKind> {
        let d = self.geom.d;
        match event {
            TraceEvent::Read { addrs } => {
                check_op_disks("read", addrs.iter().map(|a| a.disk), d)?;
                self.summary.reads += 1;
                if let Some(addr) = addrs.iter().copied().find(|a| self.undurable.contains(a)) {
                    return Err(ViolationKind::ReadBeforeDurableWrite { addr });
                }
                self.last_read = Some(addrs.clone());
                Ok(())
            }
            TraceEvent::Write { addrs } => {
                check_op_disks("write", addrs.iter().map(|a| a.disk), d)?;
                self.summary.writes += 1;
                self.undurable.extend(addrs.iter().copied());
                self.on_run_write(addrs)
            }
            TraceEvent::WriteDurable { addrs } => {
                check_op_disks("durable write", addrs.iter().map(|a| a.disk), d)?;
                self.summary.durable_writes += 1;
                for a in addrs {
                    self.undurable.remove(a);
                }
                Ok(())
            }
            TraceEvent::PhysRead { addrs } => {
                check_op_disks("phys-read", addrs.iter().map(|a| a.disk), d)
            }
            TraceEvent::PhysWrite { addrs } => {
                check_op_disks("phys-write", addrs.iter().map(|a| a.disk), d)
            }
            TraceEvent::Alloc { disk, .. } => {
                if disk.index() >= d {
                    return Err(ViolationKind::DiskOutOfRange { op: "alloc", disk: *disk, d });
                }
                Ok(())
            }
            TraceEvent::Fault { .. } => {
                self.summary.faults += 1;
                Ok(())
            }
            TraceEvent::Retry { .. } => {
                self.summary.retries += 1;
                Ok(())
            }
            TraceEvent::Reconstruct { disk, stripe, siblings } => {
                self.summary.reconstructs += 1;
                check_op_disks("reconstruction", siblings.iter().map(|a| a.disk), d)?;
                if disk.index() >= d {
                    return Err(ViolationKind::DiskOutOfRange {
                        op: "reconstruction",
                        disk: *disk,
                        d,
                    });
                }
                if siblings.iter().any(|a| a.disk == *disk) {
                    return Err(ViolationKind::ReconstructReadsTarget {
                        stripe: *stripe,
                        disk: *disk,
                    });
                }
                Ok(())
            }
            TraceEvent::ParityCommit { stripe, parity_disk, data_disks } => {
                self.summary.parity_commits += 1;
                check_op_disks("parity commit", data_disks.iter().copied(), d)?;
                if parity_disk.index() >= d {
                    return Err(ViolationKind::DiskOutOfRange {
                        op: "parity commit",
                        disk: *parity_disk,
                        d,
                    });
                }
                let expected = DiskId::from_mod(*stripe, d);
                if *parity_disk != expected {
                    return Err(ViolationKind::ParityPlacementMismatch {
                        stripe: *stripe,
                        got: *parity_disk,
                        expected,
                    });
                }
                if data_disks.contains(parity_disk) {
                    return Err(ViolationKind::ParityOnDataDisk {
                        stripe: *stripe,
                        disk: *parity_disk,
                    });
                }
                Ok(())
            }
            TraceEvent::PassBegin { .. } => {
                self.summary.passes += 1;
                Ok(())
            }
            TraceEvent::MergeBegin { r, geom, runs } => self.on_merge_begin(*r, geom, runs),
            TraceEvent::InitImplant { run, idx, key, disk } => {
                let m = require_merge(&mut self.merge, "InitImplant")?;
                m.init_implant(*run, *idx, *key, *disk)
            }
            TraceEvent::InitLoad { blocks } => {
                let last_read = self.last_read.take();
                let m = require_merge(&mut self.merge, "InitLoad")?;
                check_op_disks("initial load", blocks.iter().map(|&(_, disk)| disk), d)?;
                m.init_load(blocks, last_read.as_deref())
            }
            TraceEvent::ReadSubmit { targets, flushed } => {
                self.summary.read_submits += 1;
                let last_read = self.last_read.take();
                let m = require_merge(&mut self.merge, "ReadSubmit")?;
                m.read_submit(targets, flushed, last_read.as_deref())
            }
            TraceEvent::SchedRead { targets, flushed, fset_len, staged_len } => {
                self.summary.sched_reads += 1;
                self.summary.flushed_blocks += flushed.len() as u64;
                let pending = self.merge.as_mut().and_then(|m| m.pending_read.take());
                let m = require_merge(&mut self.merge, "SchedRead")?;
                match pending {
                    // Completion of a split-phase read: legality was
                    // judged at its `ReadSubmit`; here only the arrivals.
                    Some(p) => m.sched_read_complete(&p, targets, flushed, *fset_len, *staged_len),
                    None => {
                        let last_read = self.last_read.take();
                        m.sched_read(targets, flushed, *fset_len, *staged_len, last_read.as_deref())
                    }
                }
            }
            TraceEvent::Promote { run, idx } => {
                self.summary.promotes += 1;
                let m = require_merge(&mut self.merge, "Promote")?;
                match m.last_promote.take() {
                    Some((r0, i0)) if r0 == *run && i0 == *idx => Ok(()),
                    _ => Err(ViolationKind::PromoteMismatch { run: *run, idx: *idx }),
                }
            }
            TraceEvent::Deplete { run, idx } => {
                self.summary.depletes += 1;
                let m = require_merge(&mut self.merge, "Deplete")?;
                m.deplete(*run, *idx)
            }
            TraceEvent::MergeEnd => {
                let m = require_merge(&mut self.merge, "MergeEnd")?;
                if let Some((run, idx)) = m.last_promote {
                    return Err(ViolationKind::PromoteMismatch { run, idx });
                }
                if m.pending_read.is_some() {
                    return Err(ViolationKind::UnexpectedEvent {
                        event: "MergeEnd",
                        reason: "a split-phase read is still in flight",
                    });
                }
                let fset = m.sched.fset.len();
                let staged = m.sched.staged.len();
                let unread = m.sched.unread();
                if fset > 0 || staged > 0 || unread > 0 {
                    return Err(ViolationKind::MergeIncomplete { fset, staged, unread });
                }
                self.merge = None;
                Ok(())
            }
            TraceEvent::RunStart { start_disk } => {
                self.summary.runs_written += 1;
                if self.writer.is_some() {
                    return Err(ViolationKind::UnexpectedEvent {
                        event: "RunStart",
                        reason: "previous output run still open",
                    });
                }
                if start_disk.index() >= d {
                    return Err(ViolationKind::DiskOutOfRange {
                        op: "run start",
                        disk: *start_disk,
                        d,
                    });
                }
                self.writer = Some(WriterReplica {
                    start_disk: *start_disk,
                    next_idx: 0,
                    widths: Vec::new(),
                });
                Ok(())
            }
            TraceEvent::RunEnd { start_disk, len_blocks } => {
                let Some(w) = self.writer.take() else {
                    return Err(ViolationKind::UnexpectedEvent {
                        event: "RunEnd",
                        reason: "no output run in progress",
                    });
                };
                if w.start_disk != *start_disk {
                    return Err(ViolationKind::UnexpectedEvent {
                        event: "RunEnd",
                        reason: "start disk disagrees with RunStart",
                    });
                }
                if w.next_idx != *len_blocks {
                    return Err(ViolationKind::RunLengthMismatch {
                        announced: *len_blocks,
                        written: w.next_idx,
                    });
                }
                if w.widths.len() > 1 {
                    for (stripe, &width) in w.widths[..w.widths.len() - 1].iter().enumerate() {
                        if width != d {
                            return Err(ViolationKind::RunStripeNotFullWidth { stripe, width, d });
                        }
                    }
                }
                Ok(())
            }
            // Future event kinds (the enum is non-exhaustive) are
            // outside this checker's rule set.
            _ => Ok(()),
        }
    }

    /// An output-run write must extend the run's cyclic stripe exactly.
    fn on_run_write(&mut self, addrs: &[BlockAddr]) -> Result<(), ViolationKind> {
        let d = self.geom.d;
        if let Some(w) = &mut self.writer {
            for (j, a) in addrs.iter().enumerate() {
                let idx = w.next_idx + j as u64;
                let expected = DiskId::from_mod(u64::from(w.start_disk.0) + idx, d);
                if a.disk != expected {
                    return Err(ViolationKind::RunWriteNotStriped {
                        idx,
                        got: a.disk,
                        expected,
                    });
                }
            }
            w.widths.push(addrs.len());
            w.next_idx += addrs.len() as u64;
        }
        Ok(())
    }

    fn on_merge_begin(
        &mut self,
        r: usize,
        geom: &Geometry,
        runs: &[TraceRunMeta],
    ) -> Result<(), ViolationKind> {
        self.summary.merges += 1;
        if self.merge.is_some() {
            return Err(ViolationKind::UnexpectedEvent {
                event: "MergeBegin",
                reason: "previous merge still open",
            });
        }
        if runs.len() != r {
            return Err(ViolationKind::UnexpectedEvent {
                event: "MergeBegin",
                reason: "run count disagrees with the merge order R",
            });
        }
        if geom.d != self.geom.d {
            return Err(ViolationKind::UnexpectedEvent {
                event: "MergeBegin",
                reason: "merge geometry disagrees with the checked geometry",
            });
        }
        for meta in runs {
            if meta.base_offsets.len() != self.geom.d || meta.start_disk.index() >= self.geom.d {
                return Err(ViolationKind::UnexpectedEvent {
                    event: "MergeBegin",
                    reason: "run layout disagrees with the geometry",
                });
            }
        }
        self.merge = Some(MergeReplica {
            sched: SchedReplica::new(r, self.geom.d),
            runs: runs
                .iter()
                .map(|meta| RunReplica {
                    meta: meta.clone(),
                    cur_idx: 0,
                    awaiting: false,
                    exhausted: false,
                })
                .collect(),
            last_promote: None,
            pending_read: None,
        });
        Ok(())
    }
}

fn require_merge<'a>(
    merge: &'a mut Option<MergeReplica>,
    event: &'static str,
) -> Result<&'a mut MergeReplica, ViolationKind> {
    merge.as_mut().ok_or(ViolationKind::UnexpectedEvent {
        event,
        reason: "no merge in progress",
    })
}

impl MergeReplica {
    fn run_count(&self) -> usize {
        self.runs.len()
    }

    fn check_run(&self, run: u32) -> Result<(), ViolationKind> {
        if (run as usize) < self.run_count() {
            Ok(())
        } else {
            Err(ViolationKind::RunOutOfRange {
                run,
                r: self.run_count(),
            })
        }
    }

    fn init_implant(&mut self, run: u32, idx: u64, key: u64, disk: DiskId) -> Result<(), ViolationKind> {
        self.check_run(run)?;
        let home = self.runs[run as usize].meta.disk_of(idx);
        if disk != home {
            return Err(ViolationKind::OffHomeDisk {
                role: "implant",
                run,
                idx,
                got: disk,
                home,
            });
        }
        self.sched.fds[disk.index()].insert(run, (key, run, idx));
        Ok(())
    }

    fn init_load(
        &mut self,
        blocks: &[(u32, DiskId)],
        last_read: Option<&[BlockAddr]>,
    ) -> Result<(), ViolationKind> {
        for &(run, disk) in blocks {
            self.check_run(run)?;
            let meta = &self.runs[run as usize].meta;
            let home = meta.disk_of(0);
            if disk != home {
                return Err(ViolationKind::OffHomeDisk {
                    role: "initial block",
                    run,
                    idx: 0,
                    got: disk,
                    home,
                });
            }
            if let Some(addrs) = last_read {
                let a = meta.addr_of(0);
                if !addrs.contains(&a) {
                    return Err(ViolationKind::ReadMismatch {
                        block: (0, run, 0),
                        disk: a.disk,
                        offset: a.offset,
                    });
                }
            }
        }
        Ok(())
    }

    /// The legality half of a scheduled read, judged in the state the
    /// engine made the decision in: staging drained and empty, rule
    /// 2a–2c flush arithmetic, §4 forecast-minimality, fetch-set
    /// completeness, and the cross-check against the logical read's
    /// addresses.  Mutates the replica only by applying the flushes.
    fn verify_plan(
        &mut self,
        event: &'static str,
        targets: &[TraceTarget],
        flushed: &[TraceFlush],
        last_read: Option<&[BlockAddr]>,
    ) -> Result<(), ViolationKind> {
        let d = self.sched.d;
        // The engine drains M_D at the top of every loop iteration; a
        // read is only attempted once staging is empty.
        self.sched.drain();
        if !self.sched.staged.is_empty() {
            return Err(ViolationKind::ReadWhileStagingOccupied {
                staged: self.sched.staged.len(),
            });
        }

        // Rules 2a–2c: how many blocks must be flushed, computed from
        // the pre-flush occupancy and the global forecasting minimum.
        let occ = self.sched.fset.len();
        let expected_flush = if occ > self.sched.r {
            let extra = occ - self.sched.r;
            let Some(s_min) = self.sched.frontier_min() else {
                return Err(ViolationKind::UnexpectedEvent {
                    event,
                    reason: "flush arithmetic needs a forecasting minimum, but FDS is empty",
                });
            };
            let out_rank = 1 + self.sched.fset.range(..s_min).count();
            if out_rank <= extra {
                extra - out_rank + 1
            } else {
                0
            }
        } else {
            0
        };
        if flushed.len() != expected_flush {
            return Err(ViolationKind::FlushCountMismatch {
                expected: expected_flush,
                got: flushed.len(),
            });
        }
        for f in flushed {
            self.check_run(f.run)?;
            let fb: BlockRef = (f.key, f.run, f.idx);
            let home = self.runs[f.run as usize].meta.disk_of(f.idx);
            if f.disk != home {
                return Err(ViolationKind::OffHomeDisk {
                    role: "flush",
                    run: f.run,
                    idx: f.idx,
                    got: f.disk,
                    home,
                });
            }
            // Each victim must be the farthest-future block remaining.
            match self.sched.fset.last().copied() {
                Some(max) if max == fb => {
                    self.sched.fset.remove(&fb);
                }
                Some(max) => {
                    if self.sched.fset.contains(&fb) {
                        return Err(ViolationKind::FlushNotFarthestFuture {
                            flushed: fb,
                            expected: max,
                        });
                    }
                    return Err(ViolationKind::FlushedBlockNotBuffered { flushed: fb });
                }
                None => return Err(ViolationKind::FlushedBlockNotBuffered { flushed: fb }),
            }
            // A virtual flush costs no I/O; it only re-arms the block's
            // forecasting entry on its home disk.
            self.sched.lower_to(home.index(), f.run, fb);
        }

        // §4: the fetch set takes exactly each disk's forecast minimum.
        check_op_disks("scheduled read", targets.iter().map(|t| t.disk), d)?;
        let mut covered = vec![false; d];
        for t in targets {
            self.check_run(t.run)?;
            let tb: BlockRef = (t.key, t.run, t.idx);
            let home = self.runs[t.run as usize].meta.disk_of(t.idx);
            if t.disk != home {
                return Err(ViolationKind::OffHomeDisk {
                    role: "target",
                    run: t.run,
                    idx: t.idx,
                    got: t.disk,
                    home,
                });
            }
            let min = self.sched.disk_min(t.disk.index());
            if min != Some(tb) {
                return Err(ViolationKind::NotForecastMinimal {
                    disk: t.disk,
                    got: tb,
                    expected: min,
                });
            }
            covered[t.disk.index()] = true;
        }
        for (disk, was_covered) in covered.iter().enumerate().take(d) {
            if !was_covered {
                if let Some(expected) = self.sched.disk_min(disk) {
                    return Err(ViolationKind::FetchSetIncomplete {
                        disk: DiskId::from_index(disk),
                        expected,
                    });
                }
            }
        }
        // The targets must be the blocks the preceding logical read
        // actually fetched.
        if let Some(addrs) = last_read {
            for t in targets {
                let a = self.runs[t.run as usize].meta.addr_of(t.idx);
                if !addrs.contains(&a) {
                    return Err(ViolationKind::ReadMismatch {
                        block: (t.key, t.run, t.idx),
                        disk: a.disk,
                        offset: a.offset,
                    });
                }
            }
        }
        Ok(())
    }

    /// Apply a read's arrivals: each target consumes its forecasting
    /// entry, implants its successor's, and routes per exchange rule 2 —
    /// judged against the replica's *current* run cursors, which for a
    /// split-phase read have advanced since submit exactly as the
    /// engine's did.
    fn apply_arrivals(&mut self, targets: &[TraceBlock]) -> Result<(), ViolationKind> {
        let d = self.sched.d;
        for t in targets {
            let tb: BlockRef = (t.key, t.run, t.idx);
            let st = &mut self.runs[t.run as usize];
            let expected_leading = st.awaiting && st.cur_idx == t.idx;
            if t.to_leading != expected_leading {
                return Err(ViolationKind::ToLeadingMismatch {
                    block: tb,
                    expected: expected_leading,
                });
            }
            let slot = t.disk.index();
            match t.implant {
                Some(k) => {
                    let next = t.idx + d as u64;
                    self.sched.fds[slot].insert(t.run, (k, t.run, next));
                }
                None => {
                    self.sched.fds[slot].remove(&t.run);
                }
            }
            if expected_leading {
                st.awaiting = false;
            } else {
                self.sched.staged.push(tb);
            }
        }
        Ok(())
    }

    /// The engine's own occupancy tags, recorded post-arrival and
    /// pre-drain, must match the replay exactly; then Definition 3's
    /// budgets.
    fn check_occupancy(&self, fset_len: usize, staged_len: usize) -> Result<(), ViolationKind> {
        let d = self.sched.d;
        if fset_len != self.sched.fset.len() {
            return Err(ViolationKind::OccupancyTagMismatch {
                pool: "M_R",
                tagged: fset_len,
                replayed: self.sched.fset.len(),
            });
        }
        if staged_len != self.sched.staged.len() {
            return Err(ViolationKind::OccupancyTagMismatch {
                pool: "M_D",
                tagged: staged_len,
                replayed: self.sched.staged.len(),
            });
        }
        if self.sched.staged.len() > d {
            return Err(ViolationKind::BufferOverCommit {
                pool: "M_D",
                len: self.sched.staged.len(),
                cap: d,
            });
        }
        if self.sched.fset.len() > self.sched.r + d {
            return Err(ViolationKind::BufferOverCommit {
                pool: "M_R",
                len: self.sched.fset.len(),
                cap: self.sched.r + d,
            });
        }
        Ok(())
    }

    /// Verify one serial scheduled read against §5.5's rules 2a–2c and
    /// §4's forecast-minimality, then apply its arrivals.
    fn sched_read(
        &mut self,
        targets: &[TraceBlock],
        flushed: &[TraceFlush],
        fset_len: usize,
        staged_len: usize,
        last_read: Option<&[BlockAddr]>,
    ) -> Result<(), ViolationKind> {
        let plan: Vec<TraceTarget> = targets
            .iter()
            .map(|t| TraceTarget {
                run: t.run,
                idx: t.idx,
                key: t.key,
                disk: t.disk,
            })
            .collect();
        self.verify_plan("SchedRead", &plan, flushed, last_read)?;
        self.apply_arrivals(targets)?;
        self.check_occupancy(fset_len, staged_len)
    }

    /// A split-phase submission: full scheduling legality now (this is
    /// the state the plan was made in), arrivals deferred to the
    /// completing `SchedRead`.  The forecasting table is left untouched
    /// until then — exactly as the engine's is.
    fn read_submit(
        &mut self,
        targets: &[TraceTarget],
        flushed: &[TraceFlush],
        last_read: Option<&[BlockAddr]>,
    ) -> Result<(), ViolationKind> {
        if self.pending_read.is_some() {
            return Err(ViolationKind::UnexpectedEvent {
                event: "ReadSubmit",
                reason: "a split-phase read is already in flight",
            });
        }
        self.verify_plan("ReadSubmit", targets, flushed, last_read)?;
        self.pending_read = Some(PendingRead {
            targets: targets.to_vec(),
            flushed: flushed.to_vec(),
        });
        Ok(())
    }

    /// Completion of a split-phase read: must repeat the submitted fetch
    /// set and flush list verbatim, then routes the arrivals against the
    /// current state.
    fn sched_read_complete(
        &mut self,
        submitted: &PendingRead,
        targets: &[TraceBlock],
        flushed: &[TraceFlush],
        fset_len: usize,
        staged_len: usize,
    ) -> Result<(), ViolationKind> {
        if targets.len() != submitted.targets.len()
            || targets
                .iter()
                .zip(&submitted.targets)
                .any(|(t, s)| t.run != s.run || t.idx != s.idx || t.key != s.key || t.disk != s.disk)
        {
            return Err(ViolationKind::UnexpectedEvent {
                event: "SchedRead",
                reason: "completion's fetch set differs from its ReadSubmit",
            });
        }
        if submitted.flushed.as_slice() != flushed {
            return Err(ViolationKind::UnexpectedEvent {
                event: "SchedRead",
                reason: "completion's flush list differs from its ReadSubmit",
            });
        }
        self.apply_arrivals(targets)?;
        self.check_occupancy(fset_len, staged_len)
    }

    fn deplete(&mut self, run: u32, idx: u64) -> Result<(), ViolationKind> {
        self.sched.drain();
        if let Some((r0, i0)) = self.last_promote.take() {
            // The replay promoted a block the trace never acknowledged.
            return Err(ViolationKind::PromoteMismatch { run: r0, idx: i0 });
        }
        self.check_run(run)?;
        let len_blocks = self.runs[run as usize].meta.len_blocks;
        let st = &mut self.runs[run as usize];
        if st.exhausted {
            return Err(ViolationKind::UnexpectedEvent {
                event: "Deplete",
                reason: "run is already exhausted",
            });
        }
        if st.awaiting {
            return Err(ViolationKind::UnexpectedEvent {
                event: "Deplete",
                reason: "run's leading buffer is empty (awaiting I/O)",
            });
        }
        if idx != st.cur_idx {
            return Err(ViolationKind::DepleteOutOfOrder {
                run,
                got: idx,
                expected: st.cur_idx,
            });
        }
        st.cur_idx += 1;
        if st.cur_idx >= len_blocks {
            st.exhausted = true;
            return Ok(());
        }
        let next = st.cur_idx;
        if self.sched.remove_buffered(run, next) {
            self.last_promote = Some((run, next));
            self.sched.drain();
        } else {
            let home = self.runs[run as usize].meta.disk_of(next);
            match self.sched.fds[home.index()].get(&run) {
                Some(e) if e.2 == next => self.runs[run as usize].awaiting = true,
                _ => return Err(ViolationKind::AwaitWithoutForecast { run, idx: next }),
            }
        }
        Ok(())
    }
}

/// Replay a whole trace, failing fast at the first violation.
///
/// On success the returned [`CheckSummary`] says what the trace
/// contained, so callers can assert the checker exercised real work
/// (e.g. `summary.sched_reads > 0`) rather than vacuously passing.
pub fn check_trace(geom: Geometry, events: &[Tagged]) -> Result<CheckSummary, Box<Violation>> {
    let mut replay = Replay::new(geom);
    for event in events {
        replay.apply(event)?;
    }
    Ok(replay.summary)
}

/// Replay a whole trace, collecting every violation (best effort: state
/// after a violation may be off, so later findings can be follow-on
/// noise — the first one is always genuine).
pub fn check_trace_collect(geom: Geometry, events: &[Tagged]) -> (CheckSummary, Vec<Violation>) {
    let mut replay = Replay::new(geom);
    let mut violations = Vec::new();
    for event in events {
        if let Err(v) = replay.apply(event) {
            violations.push(*v);
        }
    }
    (replay.summary, violations)
}

/// Cross-check a trace against the [`IoStats`] the same workload
/// reported: logical-op counts, block totals, retry counts, and the
/// parity layer's reconstruction/commit counters must all agree —
/// catching both stats drift and parity work leaking into the
/// parity-oblivious healthy-path counters.
///
/// On a healthy array every logical op is charged 1:1, so the expected
/// counters are just the trace's `Read`/`Write` totals.  In degraded
/// mode the correspondence bends in two trace-visible ways, and this
/// check replays both:
///
/// * a reconstruction with surviving siblings costs one real parallel
///   read on the inner array (a [`TraceEvent::Reconstruct`] with a
///   non-empty sibling set; a siblingless `D = 2` mirror rebuild costs
///   nothing — its parity frame lives in memory);
/// * an op whose every block sits on a dead disk never reaches the
///   backend at all, so it is charged zero despite its logical event.
///   The dead set is tracked from [`TraceEvent::DiskDeath`] /
///   [`TraceEvent::DiskRebuilt`] and permanent [`TraceEvent::Fault`]s.
///
/// The check covers sort workloads (fresh writes only).  Overwrites of
/// parity-protected blocks and mid-trace online rebuilds perform
/// additional inner I/O with no logical event, and are out of scope.
pub fn check_stats(events: &[Tagged], stats: &IoStats) -> Result<(), Box<Violation>> {
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut blocks_read = 0u64;
    let mut blocks_written = 0u64;
    let mut reconstructs = 0u64;
    let mut parity_commits = 0u64;
    let mut retries = [0u64; 3];
    let mut dead: BTreeSet<DiskId> = BTreeSet::new();
    for e in events {
        match &e.event {
            TraceEvent::Read { addrs } => {
                let live = addrs.iter().filter(|a| !dead.contains(&a.disk)).count();
                if live > 0 {
                    reads += 1;
                    blocks_read += live as u64;
                }
            }
            TraceEvent::Write { addrs } => {
                let live = addrs.iter().filter(|a| !dead.contains(&a.disk)).count();
                if live > 0 {
                    writes += 1;
                    blocks_written += live as u64;
                }
            }
            TraceEvent::Reconstruct { siblings, .. } => {
                reconstructs += 1;
                if !siblings.is_empty() {
                    reads += 1;
                    blocks_read += siblings.len() as u64;
                }
            }
            TraceEvent::ParityCommit { .. } => parity_commits += 1,
            TraceEvent::Retry { op } => match op {
                FaultOp::Read => retries[0] += 1,
                FaultOp::Write => retries[1] += 1,
                FaultOp::Alloc => retries[2] += 1,
                // Sync faults are never retryable (fsyncgate), so a
                // retried sync in a trace is itself a protocol bug;
                // it would surface as a retry-count mismatch below.
                FaultOp::Sync => {}
            },
            TraceEvent::Fault {
                kind: FaultKind::Permanent,
                disk: Some(d),
                ..
            } => {
                dead.insert(*d);
            }
            TraceEvent::DiskDeath { disk } => {
                dead.insert(*disk);
            }
            TraceEvent::DiskRebuilt { disk } => {
                dead.remove(disk);
            }
            _ => {}
        }
    }
    let seq = events.len() as u64;
    let pass = events.last().map(|e| e.pass).unwrap_or(0);
    let pairs: [(&'static str, u64, u64); 9] = [
        ("read_ops", reads, stats.read_ops),
        ("write_ops", writes, stats.write_ops),
        ("blocks_read", blocks_read, stats.blocks_read),
        ("blocks_written", blocks_written, stats.blocks_written),
        ("reconstructed_reads", reconstructs, stats.reconstructed_reads),
        ("parity_writes", parity_commits, stats.parity_writes),
        ("read_retries", retries[0], stats.read_retries),
        ("write_retries", retries[1], stats.write_retries),
        ("alloc_retries", retries[2], stats.alloc_retries),
    ];
    for (counter, from_trace, from_stats) in pairs {
        if from_trace != from_stats {
            return Err(Box::new(Violation::new(
                seq,
                pass,
                ViolationKind::StatsMismatch {
                    counter,
                    from_trace,
                    from_stats,
                },
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        match Geometry::new(3, 4, 96) {
            Ok(g) => g,
            Err(e) => panic!("geometry: {e}"),
        }
    }

    fn tag(events: Vec<TraceEvent>) -> Vec<Tagged> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| Tagged {
                seq: i as u64,
                pass: 1,
                event,
            })
            .collect()
    }

    fn meta(start: u32, len: u64) -> TraceRunMeta {
        TraceRunMeta {
            start_disk: DiskId(start),
            len_blocks: len,
            base_offsets: vec![0; 3],
        }
    }

    #[test]
    fn read_inside_the_durability_gap_is_flagged() {
        let a = BlockAddr::new(DiskId(0), 0);
        let t = tag(vec![
            TraceEvent::Write { addrs: vec![a] },
            TraceEvent::Read { addrs: vec![a] },
        ]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(s) => panic!("accepted a read of an undurable write: {s:?}"),
        };
        assert!(
            matches!(v.kind, ViolationKind::ReadBeforeDurableWrite { addr } if addr == a),
            "got {v}"
        );
    }

    #[test]
    fn durably_completed_writes_may_be_read() {
        let a = BlockAddr::new(DiskId(0), 0);
        let t = tag(vec![
            TraceEvent::Write { addrs: vec![a] },
            TraceEvent::WriteDurable { addrs: vec![a] },
            TraceEvent::Read { addrs: vec![a] },
        ]);
        let s = match check_trace(geom(), &t) {
            Ok(s) => s,
            Err(v) => panic!("rejected a durably-completed write: {v}"),
        };
        assert_eq!(s.durable_writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn duplicate_disk_in_read_is_flagged() {
        let t = tag(vec![TraceEvent::Read {
            addrs: vec![BlockAddr::new(DiskId(1), 0), BlockAddr::new(DiskId(1), 5)],
        }]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(s) => panic!("accepted duplicate-disk read: {s:?}"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::DuplicateDiskInOp { op: "read", disk: DiskId(1) }
        ));
        assert_eq!(v.seq, 0);
        assert_eq!(v.pass, 1);
    }

    #[test]
    fn out_of_range_disk_is_flagged() {
        let t = tag(vec![TraceEvent::Write {
            addrs: vec![BlockAddr::new(DiskId(7), 0)],
        }]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(s) => panic!("accepted out-of-range write: {s:?}"),
        };
        assert!(matches!(v.kind, ViolationKind::DiskOutOfRange { d: 3, .. }));
    }

    #[test]
    fn annotation_outside_merge_is_flagged() {
        let t = tag(vec![TraceEvent::Deplete { run: 0, idx: 0 }]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(_) => panic!("accepted orphan Deplete"),
        };
        assert!(matches!(v.kind, ViolationKind::UnexpectedEvent { event: "Deplete", .. }));
    }

    #[test]
    fn parity_on_data_disk_is_flagged() {
        let t = tag(vec![TraceEvent::ParityCommit {
            stripe: 4,
            parity_disk: DiskId(1),
            data_disks: vec![DiskId(0), DiskId(1)],
        }]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(_) => panic!("accepted parity on data disk"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::ParityOnDataDisk { stripe: 4, disk: DiskId(1) }
        ));
    }

    #[test]
    fn parity_rotation_is_enforced() {
        // Stripe 5 on 3 disks rotates to disk 2; claiming disk 0 fails.
        let t = tag(vec![TraceEvent::ParityCommit {
            stripe: 5,
            parity_disk: DiskId(0),
            data_disks: vec![DiskId(1)],
        }]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(_) => panic!("accepted misrotated parity"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::ParityPlacementMismatch { stripe: 5, got: DiskId(0), expected: DiskId(2) }
        ));
    }

    #[test]
    fn nonstriped_run_write_is_flagged() {
        let t = tag(vec![
            TraceEvent::RunStart { start_disk: DiskId(1) },
            // Block 0 of a run starting on disk 1 must land on disk 1.
            TraceEvent::Write { addrs: vec![BlockAddr::new(DiskId(0), 0)] },
        ]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(_) => panic!("accepted mis-striped run write"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::RunWriteNotStriped { idx: 0, got: DiskId(0), expected: DiskId(1) }
        ));
    }

    #[test]
    fn narrow_interior_stripe_is_flagged() {
        // 3 disks; write stripes of width 2, 2 — the first is interior
        // and must have been full width.
        let t = tag(vec![
            TraceEvent::RunStart { start_disk: DiskId(0) },
            TraceEvent::Write {
                addrs: vec![BlockAddr::new(DiskId(0), 0), BlockAddr::new(DiskId(1), 0)],
            },
            TraceEvent::Write {
                addrs: vec![BlockAddr::new(DiskId(2), 0), BlockAddr::new(DiskId(0), 1)],
            },
            TraceEvent::RunEnd { start_disk: DiskId(0), len_blocks: 4 },
        ]);
        let v = match check_trace(geom(), &t) {
            Err(v) => v,
            Ok(_) => panic!("accepted narrow interior stripe"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::RunStripeNotFullWidth { stripe: 0, width: 2, d: 3 }
        ));
    }

    /// A tiny hand-built merge trace that follows every rule: 2 runs of
    /// 2 blocks on 3 disks; each run's block 1 arrives straight to the
    /// leading buffer.
    fn clean_merge_events() -> Vec<TraceEvent> {
        let g = geom();
        let m0 = meta(0, 2);
        let m1 = meta(1, 2);
        vec![
            TraceEvent::MergeBegin { r: 2, geom: g, runs: vec![m0, m1] },
            TraceEvent::InitLoad { blocks: vec![(0, DiskId(0)), (1, DiskId(1))] },
            // Run 0: keys 10, 30.  Run 1: keys 20, 40.
            TraceEvent::InitImplant { run: 0, idx: 1, key: 30, disk: DiskId(1) },
            TraceEvent::InitImplant { run: 1, idx: 1, key: 40, disk: DiskId(2) },
            TraceEvent::Deplete { run: 0, idx: 0 },
            // Run 0 now awaits block 1 from disk 1; both pending blocks
            // are fetched in one parallel read.
            TraceEvent::SchedRead {
                targets: vec![
                    TraceBlock {
                        run: 0,
                        idx: 1,
                        key: 30,
                        disk: DiskId(1),
                        implant: None,
                        to_leading: true,
                    },
                    TraceBlock {
                        run: 1,
                        idx: 1,
                        key: 40,
                        disk: DiskId(2),
                        implant: None,
                        to_leading: false,
                    },
                ],
                flushed: vec![],
                fset_len: 0,
                staged_len: 1,
            },
            TraceEvent::Deplete { run: 1, idx: 0 },
            TraceEvent::Promote { run: 1, idx: 1 },
            TraceEvent::Deplete { run: 0, idx: 1 },
            TraceEvent::Deplete { run: 1, idx: 1 },
            TraceEvent::MergeEnd,
        ]
    }

    #[test]
    fn clean_hand_built_merge_passes() {
        let summary = match check_trace(geom(), &tag(clean_merge_events())) {
            Ok(s) => s,
            Err(v) => panic!("clean trace rejected: {v}"),
        };
        assert_eq!(summary.merges, 1);
        assert_eq!(summary.sched_reads, 1);
        assert_eq!(summary.depletes, 4);
        assert_eq!(summary.promotes, 1);
    }

    /// The same merge as [`clean_merge_events`], but driven by the
    /// pipelined engine: the read is split into a `ReadSubmit` at the
    /// plan point and a `SchedRead` at completion, and run 1 depletes
    /// *during the flight* — so its block arrives straight to leading
    /// (`to_leading: true`) instead of staging, with no `Promote`.
    fn clean_pipelined_merge_events() -> Vec<TraceEvent> {
        let g = geom();
        let m0 = meta(0, 2);
        let m1 = meta(1, 2);
        vec![
            TraceEvent::MergeBegin { r: 2, geom: g, runs: vec![m0, m1] },
            TraceEvent::InitLoad { blocks: vec![(0, DiskId(0)), (1, DiskId(1))] },
            TraceEvent::InitImplant { run: 0, idx: 1, key: 30, disk: DiskId(1) },
            TraceEvent::InitImplant { run: 1, idx: 1, key: 40, disk: DiskId(2) },
            TraceEvent::Deplete { run: 0, idx: 0 },
            TraceEvent::ReadSubmit {
                targets: vec![
                    TraceTarget { run: 0, idx: 1, key: 30, disk: DiskId(1) },
                    TraceTarget { run: 1, idx: 1, key: 40, disk: DiskId(2) },
                ],
                flushed: vec![],
            },
            TraceEvent::Deplete { run: 1, idx: 0 },
            TraceEvent::SchedRead {
                targets: vec![
                    TraceBlock {
                        run: 0,
                        idx: 1,
                        key: 30,
                        disk: DiskId(1),
                        implant: None,
                        to_leading: true,
                    },
                    TraceBlock {
                        run: 1,
                        idx: 1,
                        key: 40,
                        disk: DiskId(2),
                        implant: None,
                        to_leading: true,
                    },
                ],
                flushed: vec![],
                fset_len: 0,
                staged_len: 0,
            },
            TraceEvent::Deplete { run: 0, idx: 1 },
            TraceEvent::Deplete { run: 1, idx: 1 },
            TraceEvent::MergeEnd,
        ]
    }

    #[test]
    fn clean_pipelined_merge_passes() {
        let summary = match check_trace(geom(), &tag(clean_pipelined_merge_events())) {
            Ok(s) => s,
            Err(v) => panic!("clean pipelined trace rejected: {v}"),
        };
        assert_eq!(summary.merges, 1);
        assert_eq!(summary.read_submits, 1);
        assert_eq!(summary.sched_reads, 1);
        assert_eq!(summary.depletes, 4);
        // The flight absorbed run 1's arrival straight into leading, so
        // no staged block was ever promoted.
        assert_eq!(summary.promotes, 0);
    }

    #[test]
    fn double_read_submit_is_flagged() {
        let mut events = clean_pipelined_merge_events();
        let submit = events[5].clone();
        events.insert(6, submit);
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted overlapping split-phase reads"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::UnexpectedEvent { event: "ReadSubmit", .. }
        ));
    }

    #[test]
    fn completion_target_mismatch_is_flagged() {
        let mut events = clean_pipelined_merge_events();
        // The completion claims a different block than was submitted.
        if let TraceEvent::SchedRead { targets, .. } = &mut events[7] {
            targets[1].key = 99;
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted drifted completion targets"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::UnexpectedEvent { event: "SchedRead", reason }
                if reason.contains("fetch set")
        ));
    }

    #[test]
    fn completion_flush_mismatch_is_flagged() {
        let mut events = clean_pipelined_merge_events();
        if let TraceEvent::SchedRead { flushed, .. } = &mut events[7] {
            flushed.push(TraceFlush { run: 0, idx: 1, key: 30, disk: DiskId(1) });
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted drifted completion flushes"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::UnexpectedEvent { event: "SchedRead", reason }
                if reason.contains("flush list")
        ));
    }

    #[test]
    fn merge_end_with_read_in_flight_is_flagged() {
        let mut events = clean_pipelined_merge_events();
        // Cut the merge off right after the submit: the read never
        // completed.
        events.truncate(6);
        events.push(TraceEvent::MergeEnd);
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted MergeEnd with a read in flight"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::UnexpectedEvent { event: "MergeEnd", reason }
                if reason.contains("in flight")
        ));
    }

    #[test]
    fn fetching_a_non_minimal_block_is_flagged() {
        let mut events = clean_merge_events();
        // Corrupt the read: claim run 1's block 1 has key 5 (smaller
        // than its forecast entry says), i.e. fetch a different block
        // than the forecast minimum.
        if let TraceEvent::SchedRead { targets, .. } = &mut events[5] {
            targets[1].key = 5;
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted non-minimal fetch"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::NotForecastMinimal { disk: DiskId(2), .. }
        ));
    }

    #[test]
    fn skipping_a_pending_disk_is_flagged() {
        let mut events = clean_merge_events();
        if let TraceEvent::SchedRead { targets, .. } = &mut events[5] {
            targets.pop();
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted incomplete fetch set"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::FetchSetIncomplete { disk: DiskId(2), .. }
        ));
    }

    #[test]
    fn occupancy_tag_drift_is_flagged() {
        let mut events = clean_merge_events();
        if let TraceEvent::SchedRead { staged_len, .. } = &mut events[5] {
            *staged_len = 0;
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted wrong occupancy tag"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::OccupancyTagMismatch { pool: "M_D", tagged: 0, replayed: 1 }
        ));
    }

    #[test]
    fn unsanctioned_flush_is_flagged() {
        let mut events = clean_merge_events();
        // Claim a flush when rule 2c's arithmetic allows none.
        if let TraceEvent::SchedRead { flushed, .. } = &mut events[5] {
            flushed.push(TraceFlush { run: 0, idx: 1, key: 30, disk: DiskId(1) });
        }
        let v = match check_trace(geom(), &tag(events)) {
            Err(v) => v,
            Ok(_) => panic!("accepted unsanctioned flush"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::FlushCountMismatch { expected: 0, got: 1 }
        ));
    }

    #[test]
    fn stats_mismatch_is_flagged() {
        let t = tag(vec![TraceEvent::Read {
            addrs: vec![BlockAddr::new(DiskId(0), 0)],
        }]);
        let stats = IoStats { read_ops: 2, blocks_read: 1, ..IoStats::default() };
        let v = match check_stats(&t, &stats) {
            Err(v) => v,
            Ok(()) => panic!("accepted drifted stats"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::StatsMismatch { counter: "read_ops", from_trace: 1, from_stats: 2 }
        ));
    }

    #[test]
    fn collect_variant_reports_and_continues() {
        let t = tag(vec![
            TraceEvent::Read {
                addrs: vec![BlockAddr::new(DiskId(0), 0), BlockAddr::new(DiskId(0), 1)],
            },
            TraceEvent::Read {
                addrs: vec![BlockAddr::new(DiskId(1), 0)],
            },
        ]);
        let (summary, violations) = check_trace_collect(geom(), &t);
        assert_eq!(summary.events, 2);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].seq, 0);
    }
}
