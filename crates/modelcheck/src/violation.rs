//! Typed, located invariant violations.
//!
//! Every violation names the event that exposed it (sequence number and
//! pass tag) plus the disks, runs, blocks, or stripes involved, so a
//! failing check reads like a line in the paper's proof being broken:
//! "event #812 (pass 2): parallel read touches disk 3 twice".

use pdisk::{BlockAddr, DiskId};

/// Identity of a block inside one merge: `(min key, run, block idx)` —
/// the total order every rank computation uses.
pub type BlockRef = (u64, u32, u64);

/// One broken model rule, located at the event that exposed it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Violation {
    /// Sequence number of the offending trace event.
    pub seq: u64,
    /// Pass tag the event carried (0 = run formation).
    pub pass: u64,
    /// Which rule was broken, and how.
    pub kind: ViolationKind,
}

impl Violation {
    pub(crate) fn new(seq: u64, pass: u64, kind: ViolationKind) -> Self {
        Violation { seq, pass, kind }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event #{} (pass {}): {}", self.seq, self.pass, self.kind)
    }
}

impl std::error::Error for Violation {}

/// The model rules the checker enforces, each with the evidence needed
/// to reproduce the judgement by hand.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ViolationKind {
    /// A single parallel I/O moved two blocks on one disk — the defining
    /// constraint of the Vitter–Shriver model (one block per disk per
    /// operation).
    DuplicateDiskInOp {
        /// The operation kind ("read", "write", "phys-read", ...).
        op: &'static str,
        /// The disk touched more than once.
        disk: DiskId,
    },
    /// An operation named a disk outside the geometry.
    DiskOutOfRange {
        /// The operation kind.
        op: &'static str,
        /// The out-of-range disk.
        disk: DiskId,
        /// Number of disks in the geometry.
        d: usize,
    },
    /// An annotation event arrived outside the context it needs (e.g. a
    /// `SchedRead` with no merge open, or a nested `MergeBegin`).
    UnexpectedEvent {
        /// What arrived.
        event: &'static str,
        /// Why it could not be applied.
        reason: &'static str,
    },
    /// An annotation referenced a run id or block index outside the
    /// announced merge input.
    RunOutOfRange {
        /// The run id referenced.
        run: u32,
        /// Number of input runs in the merge.
        r: usize,
    },
    /// A forecasting entry was implanted on a disk other than the
    /// block's home disk under cyclic striping (§3: block `i` of a run
    /// starting on `d_r` lives on `(d_r + i) mod D`).
    OffHomeDisk {
        /// What placed the block ("implant", "target", "flush").
        role: &'static str,
        /// The run.
        run: u32,
        /// The block index.
        idx: u64,
        /// Where the event said the block is.
        got: DiskId,
        /// Where cyclic striping puts it.
        home: DiskId,
    },
    /// A parallel read was initiated while `M_D` still held staged
    /// blocks — reads require free staging buffers (§5.5).
    ReadWhileStagingOccupied {
        /// Blocks still staged.
        staged: usize,
    },
    /// A buffer pool exceeded its Definition 3 capacity
    /// (`|F| ≤ R + D`, `|M_D| ≤ D`).
    BufferOverCommit {
        /// The pool ("M_R", "M_D").
        pool: &'static str,
        /// Occupancy reached.
        len: usize,
        /// The model capacity.
        cap: usize,
    },
    /// The trace's recorded buffer occupancy disagrees with the
    /// checker's independent replay.
    OccupancyTagMismatch {
        /// The pool ("M_R", "M_D").
        pool: &'static str,
        /// What the trace recorded.
        tagged: usize,
        /// What the replay computed.
        replayed: usize,
    },
    /// Rule 2c flushed a block that was not the farthest-future
    /// (largest-keyed) block of `F` — breaking Lemma 2's guarantee that
    /// the `R + OutRank − 1` smallest blocks survive.
    FlushNotFarthestFuture {
        /// The block flushed.
        flushed: BlockRef,
        /// The block rule 2c requires (current maximum of `F`).
        expected: BlockRef,
    },
    /// A flushed block was not buffered in `M_R` at flush time.
    FlushedBlockNotBuffered {
        /// The block claimed flushed.
        flushed: BlockRef,
    },
    /// The number of blocks flushed disagrees with rule 2c's formula
    /// (`extra − OutRank + 1` when `OutRank ≤ extra`, else zero).
    FlushCountMismatch {
        /// Blocks rule 2c flushes here.
        expected: usize,
        /// Blocks the trace flushed.
        got: usize,
    },
    /// A read target was not the forecast-minimal block of its disk —
    /// the fetch must take exactly `min H_i[j]` per disk (§4).
    NotForecastMinimal {
        /// The disk read.
        disk: DiskId,
        /// The block fetched.
        got: BlockRef,
        /// The disk's actual forecast minimum, if it had one.
        expected: Option<BlockRef>,
    },
    /// A disk with pending blocks was left out of the fetch set `S_t`
    /// (the read must take the smallest block from *every* disk that
    /// has one).
    FetchSetIncomplete {
        /// A disk with a forecast entry but no target.
        disk: DiskId,
        /// That disk's forecast minimum.
        expected: BlockRef,
    },
    /// The scheduled targets disagree with the addresses the preceding
    /// logical read actually fetched.
    ReadMismatch {
        /// The target block.
        block: BlockRef,
        /// Its address under the announced run layout.
        disk: DiskId,
        /// Slot on that disk.
        offset: u64,
    },
    /// An arriving block's leading/staged routing disagrees with
    /// exchange rule 2 of §5.2 (straight to `M_L` iff its run awaits
    /// exactly this block).
    ToLeadingMismatch {
        /// The block.
        block: BlockRef,
        /// What the replay expects.
        expected: bool,
    },
    /// A `Promote` event does not match the block the replay just moved
    /// to the leading buffer.
    PromoteMismatch {
        /// The promoted run.
        run: u32,
        /// The promoted block index.
        idx: u64,
    },
    /// A leading block depleted out of order (block `i + 1` cannot
    /// deplete before block `i` of the same run).
    DepleteOutOfOrder {
        /// The run.
        run: u32,
        /// The index the trace depleted.
        got: u64,
        /// The index the replay expected.
        expected: u64,
    },
    /// A run awaits a block from disk, but the forecasting table has no
    /// (or the wrong) entry for it — the merge would wedge.
    AwaitWithoutForecast {
        /// The run.
        run: u32,
        /// The awaited block index.
        idx: u64,
    },
    /// The merge ended with blocks still buffered or unread.
    MergeIncomplete {
        /// Blocks left in `M_R`.
        fset: usize,
        /// Blocks left in `M_D`.
        staged: usize,
        /// Forecast entries (unread blocks) remaining.
        unread: usize,
    },
    /// An output-run write broke perfect `D`-striping: block `i` of a
    /// run starting on `d_r` must land on `(d_r + i) mod D`.
    RunWriteNotStriped {
        /// Block index within the output run.
        idx: u64,
        /// Disk the write targeted.
        got: DiskId,
        /// Disk the cyclic layout requires.
        expected: DiskId,
    },
    /// A non-final output stripe was written below full `D` width —
    /// output runs must use perfect write parallelism.
    RunStripeNotFullWidth {
        /// Stripe ordinal within the run.
        stripe: usize,
        /// Blocks the write moved.
        width: usize,
        /// The full width `D`.
        d: usize,
    },
    /// The run writer's announced length disagrees with the blocks the
    /// trace wrote.
    RunLengthMismatch {
        /// `len_blocks` announced at `RunEnd`.
        announced: u64,
        /// Blocks actually written between `RunStart` and `RunEnd`.
        written: u64,
    },
    /// A parity block was placed on the same disk as one of its
    /// stripe's data blocks — one dead disk would then lose both.
    ParityOnDataDisk {
        /// The stripe.
        stripe: u64,
        /// The disk holding both data and parity.
        disk: DiskId,
    },
    /// The parity disk of a stripe is not the rotating-parity disk
    /// `stripe mod D`.
    ParityPlacementMismatch {
        /// The stripe.
        stripe: u64,
        /// The disk the trace used.
        got: DiskId,
        /// The disk rotation requires.
        expected: DiskId,
    },
    /// A reconstruction read its own target as a sibling.
    ReconstructReadsTarget {
        /// The stripe.
        stripe: u64,
        /// The disk being reconstructed.
        disk: DiskId,
    },
    /// A parallel read touched a block whose logical write was never
    /// followed by a durable completion (`WriteDurable`) — after a
    /// crash, such a frame may be torn or absent, so nothing
    /// recoverable may depend on it.
    ReadBeforeDurableWrite {
        /// The address read inside the durability gap.
        addr: BlockAddr,
    },
    /// A counter in [`pdisk::IoStats`] disagrees with the events in the
    /// trace (e.g. parity work leaking into the logical-op counters).
    StatsMismatch {
        /// Which counter.
        counter: &'static str,
        /// Value implied by the trace.
        from_trace: u64,
        /// Value the stats report.
        from_stats: u64,
    },
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn block(b: &BlockRef) -> String {
            format!("block {} of run {} (key {})", b.2, b.1, b.0)
        }
        match self {
            ViolationKind::DuplicateDiskInOp { op, disk } => {
                write!(f, "parallel {op} touches {disk} twice")
            }
            ViolationKind::DiskOutOfRange { op, disk, d } => {
                write!(f, "{op} names {disk}, but the geometry has {d} disks")
            }
            ViolationKind::UnexpectedEvent { event, reason } => {
                write!(f, "unexpected {event} event: {reason}")
            }
            ViolationKind::RunOutOfRange { run, r } => {
                write!(f, "run {run} referenced, but the merge has {r} input runs")
            }
            ViolationKind::OffHomeDisk { role, run, idx, got, home } => write!(
                f,
                "{role} places block {idx} of run {run} on {got}, but cyclic striping homes it on {home}"
            ),
            ViolationKind::ReadWhileStagingOccupied { staged } => write!(
                f,
                "parallel read initiated with {staged} block(s) still staged in M_D"
            ),
            ViolationKind::BufferOverCommit { pool, len, cap } => {
                write!(f, "{pool} holds {len} blocks, capacity is {cap}")
            }
            ViolationKind::OccupancyTagMismatch { pool, tagged, replayed } => write!(
                f,
                "trace records |{pool}| = {tagged}, independent replay computes {replayed}"
            ),
            ViolationKind::FlushNotFarthestFuture { flushed, expected } => write!(
                f,
                "flushed {}, but rule 2c evicts the farthest-future block, {}",
                block(flushed),
                block(expected)
            ),
            ViolationKind::FlushedBlockNotBuffered { flushed } => {
                write!(f, "flushed {}, which is not buffered in M_R", block(flushed))
            }
            ViolationKind::FlushCountMismatch { expected, got } => write!(
                f,
                "flush evicted {got} block(s); rule 2c's formula gives {expected}"
            ),
            ViolationKind::NotForecastMinimal { disk, got, expected } => match expected {
                Some(e) => write!(
                    f,
                    "read fetched {} from {disk}, but its forecast minimum is {}",
                    block(got),
                    block(e)
                ),
                None => write!(
                    f,
                    "read fetched {} from {disk}, which has no pending blocks",
                    block(got)
                ),
            },
            ViolationKind::FetchSetIncomplete { disk, expected } => write!(
                f,
                "fetch set skips {disk}, whose forecast minimum is {}",
                block(expected)
            ),
            ViolationKind::ReadMismatch { block: b, disk, offset } => write!(
                f,
                "scheduler targeted {} at {disk} slot {offset}, absent from the preceding read",
                block(b)
            ),
            ViolationKind::ToLeadingMismatch { block: b, expected } => write!(
                f,
                "{} routed {} the leading buffer; exchange rule 2 says {}",
                block(b),
                if *expected { "past" } else { "into" },
                if *expected { "into" } else { "past" }
            ),
            ViolationKind::PromoteMismatch { run, idx } => write!(
                f,
                "promote of block {idx} of run {run} does not match the replayed exchange"
            ),
            ViolationKind::DepleteOutOfOrder { run, got, expected } => write!(
                f,
                "run {run} depleted block {got}; its leading block is {expected}"
            ),
            ViolationKind::AwaitWithoutForecast { run, idx } => write!(
                f,
                "run {run} awaits block {idx} with no matching forecast entry — the merge wedges"
            ),
            ViolationKind::MergeIncomplete { fset, staged, unread } => write!(
                f,
                "merge ended with {fset} block(s) in M_R, {staged} staged, {unread} unread"
            ),
            ViolationKind::RunWriteNotStriped { idx, got, expected } => write!(
                f,
                "output block {idx} written to {got}; cyclic striping requires {expected}"
            ),
            ViolationKind::RunStripeNotFullWidth { stripe, width, d } => write!(
                f,
                "non-final output stripe {stripe} wrote {width} block(s), not the full width {d}"
            ),
            ViolationKind::RunLengthMismatch { announced, written } => write!(
                f,
                "run closed at {announced} blocks, but {written} were written"
            ),
            ViolationKind::ParityOnDataDisk { stripe, disk } => write!(
                f,
                "stripe {stripe} holds data and parity on the same {disk}"
            ),
            ViolationKind::ParityPlacementMismatch { stripe, got, expected } => write!(
                f,
                "stripe {stripe} parity on {got}; rotation places it on {expected}"
            ),
            ViolationKind::ReconstructReadsTarget { stripe, disk } => write!(
                f,
                "reconstruction of {disk} in stripe {stripe} lists its own target as a sibling"
            ),
            ViolationKind::ReadBeforeDurableWrite { addr } => write!(
                f,
                "read of {addr:?} inside its durability gap: the write was \
                 submitted but never durably completed"
            ),
            ViolationKind::StatsMismatch { counter, from_trace, from_stats } => write!(
                f,
                "IoStats::{counter} is {from_stats}, but the trace implies {from_trace}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_location() {
        let v = Violation::new(
            812,
            2,
            ViolationKind::DuplicateDiskInOp {
                op: "read",
                disk: DiskId(3),
            },
        );
        let text = v.to_string();
        assert!(text.contains("#812"), "{text}");
        assert!(text.contains("pass 2"), "{text}");
        assert!(text.contains("d3"), "{text}");
    }

    #[test]
    fn every_kind_renders() {
        let kinds = vec![
            ViolationKind::DiskOutOfRange { op: "write", disk: DiskId(9), d: 4 },
            ViolationKind::FlushNotFarthestFuture {
                flushed: (10, 1, 2),
                expected: (90, 0, 7),
            },
            ViolationKind::NotForecastMinimal {
                disk: DiskId(1),
                got: (5, 0, 1),
                expected: None,
            },
            ViolationKind::BufferOverCommit { pool: "M_D", len: 5, cap: 4 },
            ViolationKind::ParityOnDataDisk { stripe: 12, disk: DiskId(0) },
            ViolationKind::StatsMismatch {
                counter: "read_ops",
                from_trace: 10,
                from_stats: 11,
            },
        ];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
