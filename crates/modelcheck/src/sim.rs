//! Checking the block-granularity simulator's schedule traces.
//!
//! `srm-core`'s `MergeSim` emits a compact schedule trace — initial
//! reads, parallel reads with flush victims, depletions — without ever
//! touching a disk array, so the [`pdisk::trace`] checker cannot see it.
//! This module replays that schedule against the same model rules using
//! the same scheduler replica as [`crate::replay`]: forecast-minimal
//! fetching, rule 2a–2c flush arithmetic, farthest-future eviction, and
//! the Definition 3 buffer budgets.
//!
//! The event type here deliberately mirrors the simulator's trace enum
//! structurally (`modelcheck` must not depend on `srm-core`, which would
//! cycle); tests map one to the other field-for-field.

use crate::replay::SchedReplica;
use crate::violation::{BlockRef, Violation, ViolationKind};
use pdisk::DiskId;

/// One run as the simulator laid it out: a start disk plus each block's
/// smallest key (the keys that drive forecasting and flush ranks).
#[derive(Debug, Clone)]
pub struct SimRunLayout {
    /// Disk of block 0; block `i` lives on `(start_disk + i) mod D`.
    pub start_disk: u32,
    /// Smallest key per block, strictly increasing across blocks.
    pub min_keys: Vec<u64>,
}

impl SimRunLayout {
    fn blocks(&self) -> u64 {
        self.min_keys.len() as u64
    }

    fn disk_of(&self, idx: u64, d: usize) -> DiskId {
        DiskId::from_mod(u64::from(self.start_disk) + idx, d)
    }
}

/// The merge input a simulator trace is checked against.
#[derive(Debug, Clone)]
pub struct SimCheckInput {
    /// Number of disks.
    pub d: usize,
    /// The runs being merged.
    pub runs: Vec<SimRunLayout>,
}

/// Structural mirror of the simulator's trace events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A step-1 read fetching the initial blocks of the listed runs.
    InitRead {
        /// Runs whose block 0 arrived in this operation.
        runs: Vec<u32>,
    },
    /// A main-loop parallel read, possibly preceded by a virtual flush.
    ParRead {
        /// `(disk, run, block idx)` fetched, at most one entry per disk.
        targets: Vec<(u32, u32, u64)>,
        /// `(run, block idx)` virtually flushed by rule 2c.
        flushed: Vec<(u32, u64)>,
    },
    /// Run `run`'s leading block `idx` was fully consumed.
    Depleted {
        /// The run whose block depleted.
        run: u32,
        /// Index of the depleted block.
        idx: u64,
    },
}

/// What a clean simulator trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SimCheckSummary {
    /// Events replayed.
    pub events: u64,
    /// Step-1 initial reads.
    pub init_reads: u64,
    /// Main-loop parallel reads.
    pub par_reads: u64,
    /// Blocks fetched across all reads.
    pub blocks_fetched: u64,
    /// Blocks virtually flushed by rule 2c.
    pub flushed_blocks: u64,
    /// Depletions observed.
    pub depletes: u64,
}

struct SimRunState {
    loaded: bool,
    cur_idx: u64,
    awaiting: bool,
    exhausted: bool,
}

/// Replay a simulator schedule trace against the model rules, failing
/// fast at the first violation.  `seq` in the violation is the event's
/// index in `events`; `pass` is always 0 (the simulator runs one merge).
pub fn check_sim_trace(
    input: &SimCheckInput,
    events: &[SimEvent],
) -> Result<SimCheckSummary, Box<Violation>> {
    let mut checker = SimReplay::new(input)?;
    for (i, event) in events.iter().enumerate() {
        checker
            .step(event)
            .map_err(|kind| Box::new(Violation::new(i as u64, 0, kind)))?;
    }
    checker
        .finish()
        .map_err(|kind| Box::new(Violation::new(events.len() as u64, 0, kind)))?;
    Ok(checker.summary)
}

struct SimReplay<'a> {
    input: &'a SimCheckInput,
    sched: SchedReplica,
    states: Vec<SimRunState>,
    summary: SimCheckSummary,
}

impl<'a> SimReplay<'a> {
    fn new(input: &'a SimCheckInput) -> Result<Self, Box<Violation>> {
        let bad = |reason: &'static str| {
            Box::new(Violation::new(
                0,
                0,
                ViolationKind::UnexpectedEvent { event: "input", reason },
            ))
        };
        if input.d == 0 {
            return Err(bad("zero disks"));
        }
        if input.runs.is_empty() {
            return Err(bad("merge of zero runs"));
        }
        for run in &input.runs {
            if run.min_keys.is_empty() {
                return Err(bad("run with zero blocks"));
            }
            if run.start_disk as usize >= input.d {
                return Err(bad("run start disk out of range"));
            }
        }
        Ok(SimReplay {
            input,
            sched: SchedReplica::new(input.runs.len(), input.d),
            states: input
                .runs
                .iter()
                .map(|_| SimRunState {
                    loaded: false,
                    cur_idx: 0,
                    awaiting: false,
                    exhausted: false,
                })
                .collect(),
            summary: SimCheckSummary::default(),
        })
    }

    fn check_run(&self, run: u32) -> Result<(), ViolationKind> {
        if (run as usize) < self.input.runs.len() {
            Ok(())
        } else {
            Err(ViolationKind::RunOutOfRange {
                run,
                r: self.input.runs.len(),
            })
        }
    }

    fn block_ref(&self, run: u32, idx: u64) -> BlockRef {
        (self.input.runs[run as usize].min_keys[idx as usize], run, idx)
    }

    fn step(&mut self, event: &SimEvent) -> Result<(), ViolationKind> {
        self.summary.events += 1;
        match event {
            SimEvent::InitRead { runs } => self.init_read(runs),
            SimEvent::ParRead { targets, flushed } => self.par_read(targets, flushed),
            SimEvent::Depleted { run, idx } => self.depleted(*run, *idx),
        }
    }

    /// Step 1 of §5.5: one batch of initial blocks, one per disk; each
    /// arrival seeds its run's forecasting entries for blocks `1..=D`.
    fn init_read(&mut self, runs: &[u32]) -> Result<(), ViolationKind> {
        self.summary.init_reads += 1;
        self.summary.blocks_fetched += runs.len() as u64;
        let d = self.input.d;
        let mut seen = vec![false; d];
        for &j in runs {
            self.check_run(j)?;
            let layout = &self.input.runs[j as usize];
            let disk = layout.disk_of(0, d);
            if seen[disk.index()] {
                return Err(ViolationKind::DuplicateDiskInOp {
                    op: "initial read",
                    disk,
                });
            }
            seen[disk.index()] = true;
            let st = &mut self.states[j as usize];
            if st.loaded {
                return Err(ViolationKind::UnexpectedEvent {
                    event: "InitRead",
                    reason: "run's initial block was already fetched",
                });
            }
            st.loaded = true;
            let horizon = (d as u64).min(layout.blocks().saturating_sub(1));
            for idx in 1..=horizon {
                let key = layout.min_keys[idx as usize];
                let slot = layout.disk_of(idx, d).index();
                self.sched.fds[slot].insert(j, (key, j, idx));
            }
        }
        Ok(())
    }

    /// One main-loop parallel read, judged exactly like the engine's
    /// `SchedRead` — same drain points, same rule 2a–2c arithmetic, same
    /// forecast-minimality demands.
    fn par_read(
        &mut self,
        targets: &[(u32, u32, u64)],
        flushed: &[(u32, u64)],
    ) -> Result<(), ViolationKind> {
        self.summary.par_reads += 1;
        self.summary.blocks_fetched += targets.len() as u64;
        self.summary.flushed_blocks += flushed.len() as u64;
        let d = self.input.d;
        self.sched.drain();
        if !self.sched.staged.is_empty() {
            return Err(ViolationKind::ReadWhileStagingOccupied {
                staged: self.sched.staged.len(),
            });
        }

        // Rules 2a–2c: flush count from pre-flush occupancy.
        let occ = self.sched.fset.len();
        let expected_flush = if occ > self.sched.r {
            let extra = occ - self.sched.r;
            let Some(s_min) = self.sched.frontier_min() else {
                return Err(ViolationKind::UnexpectedEvent {
                    event: "ParRead",
                    reason: "flush arithmetic needs a forecasting minimum, but FDS is empty",
                });
            };
            let out_rank = 1 + self.sched.fset.range(..s_min).count();
            if out_rank <= extra {
                extra - out_rank + 1
            } else {
                0
            }
        } else {
            0
        };
        if flushed.len() != expected_flush {
            return Err(ViolationKind::FlushCountMismatch {
                expected: expected_flush,
                got: flushed.len(),
            });
        }
        for &(run, idx) in flushed {
            self.check_run(run)?;
            if idx >= self.input.runs[run as usize].blocks() {
                return Err(ViolationKind::UnexpectedEvent {
                    event: "ParRead",
                    reason: "flushed block index beyond its run",
                });
            }
            let fb = self.block_ref(run, idx);
            match self.sched.fset.last().copied() {
                Some(max) if max == fb => {
                    self.sched.fset.remove(&fb);
                }
                Some(max) => {
                    if self.sched.fset.contains(&fb) {
                        return Err(ViolationKind::FlushNotFarthestFuture {
                            flushed: fb,
                            expected: max,
                        });
                    }
                    return Err(ViolationKind::FlushedBlockNotBuffered { flushed: fb });
                }
                None => return Err(ViolationKind::FlushedBlockNotBuffered { flushed: fb }),
            }
            let home = self.input.runs[run as usize].disk_of(idx, d);
            self.sched.lower_to(home.index(), run, fb);
        }

        // §4: exactly each pending disk's forecast minimum.
        let mut covered = vec![false; d];
        for &(disk, run, idx) in targets {
            let disk = DiskId(disk);
            if disk.index() >= d {
                return Err(ViolationKind::DiskOutOfRange {
                    op: "parallel read",
                    disk,
                    d,
                });
            }
            if covered[disk.index()] {
                return Err(ViolationKind::DuplicateDiskInOp {
                    op: "parallel read",
                    disk,
                });
            }
            self.check_run(run)?;
            if idx >= self.input.runs[run as usize].blocks() {
                return Err(ViolationKind::UnexpectedEvent {
                    event: "ParRead",
                    reason: "target block index beyond its run",
                });
            }
            let home = self.input.runs[run as usize].disk_of(idx, d);
            if disk != home {
                return Err(ViolationKind::OffHomeDisk {
                    role: "target",
                    run,
                    idx,
                    got: disk,
                    home,
                });
            }
            let tb = self.block_ref(run, idx);
            let min = self.sched.disk_min(disk.index());
            if min != Some(tb) {
                return Err(ViolationKind::NotForecastMinimal {
                    disk,
                    got: tb,
                    expected: min,
                });
            }
            covered[disk.index()] = true;
        }
        for (disk, was_covered) in covered.iter().enumerate().take(d) {
            if !was_covered {
                if let Some(expected) = self.sched.disk_min(disk) {
                    return Err(ViolationKind::FetchSetIncomplete {
                        disk: DiskId::from_index(disk),
                        expected,
                    });
                }
            }
        }

        // Arrivals: consume the forecasting entry, implant the
        // successor's, route per exchange rule 2 (derived — the sim
        // trace carries no routing flag).
        for &(disk, run, idx) in targets {
            let layout = &self.input.runs[run as usize];
            let slot = DiskId(disk).index();
            let next = idx + d as u64;
            if next < layout.blocks() {
                let key = layout.min_keys[next as usize];
                self.sched.fds[slot].insert(run, (key, run, next));
            } else {
                self.sched.fds[slot].remove(&run);
            }
            let tb = (layout.min_keys[idx as usize], run, idx);
            let st = &mut self.states[run as usize];
            if st.awaiting && st.cur_idx == idx {
                st.awaiting = false;
            } else {
                self.sched.staged.push(tb);
            }
        }

        // Definition 3's budgets.
        if self.sched.staged.len() > d {
            return Err(ViolationKind::BufferOverCommit {
                pool: "M_D",
                len: self.sched.staged.len(),
                cap: d,
            });
        }
        if self.sched.fset.len() > self.sched.r + d {
            return Err(ViolationKind::BufferOverCommit {
                pool: "M_R",
                len: self.sched.fset.len(),
                cap: self.sched.r + d,
            });
        }
        Ok(())
    }

    fn depleted(&mut self, run: u32, idx: u64) -> Result<(), ViolationKind> {
        self.summary.depletes += 1;
        self.sched.drain();
        self.check_run(run)?;
        let blocks = self.input.runs[run as usize].blocks();
        let st = &mut self.states[run as usize];
        if !st.loaded {
            return Err(ViolationKind::UnexpectedEvent {
                event: "Depleted",
                reason: "run's initial block was never fetched",
            });
        }
        if st.exhausted {
            return Err(ViolationKind::UnexpectedEvent {
                event: "Depleted",
                reason: "run is already exhausted",
            });
        }
        if st.awaiting {
            return Err(ViolationKind::UnexpectedEvent {
                event: "Depleted",
                reason: "run's leading buffer is empty (awaiting I/O)",
            });
        }
        if idx != st.cur_idx {
            return Err(ViolationKind::DepleteOutOfOrder {
                run,
                got: idx,
                expected: st.cur_idx,
            });
        }
        st.cur_idx += 1;
        if st.cur_idx >= blocks {
            st.exhausted = true;
            return Ok(());
        }
        let next = st.cur_idx;
        if self.sched.remove_buffered(run, next) {
            // The simulator promotes silently; mirror it and drain.
            self.sched.drain();
        } else {
            let home = self.input.runs[run as usize].disk_of(next, self.input.d);
            match self.sched.fds[home.index()].get(&run) {
                Some(e) if e.2 == next => self.states[run as usize].awaiting = true,
                _ => return Err(ViolationKind::AwaitWithoutForecast { run, idx: next }),
            }
        }
        Ok(())
    }

    /// After the last event: every run exhausted, every buffer empty.
    fn finish(&mut self) -> Result<(), ViolationKind> {
        if let Some(j) = self.states.iter().position(|st| !st.exhausted) {
            return Err(ViolationKind::UnexpectedEvent {
                event: "end of trace",
                reason: if self.states[j].loaded {
                    "a run was never fully depleted"
                } else {
                    "a run's initial block was never fetched"
                },
            });
        }
        let fset = self.sched.fset.len();
        let staged = self.sched.staged.len();
        let unread = self.sched.unread();
        if fset > 0 || staged > 0 || unread > 0 {
            return Err(ViolationKind::MergeIncomplete { fset, staged, unread });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 runs of 2 blocks on 3 disks; run 0 = keys 10, 30 starting on
    /// disk 0; run 1 = keys 20, 40 starting on disk 1.
    fn input() -> SimCheckInput {
        SimCheckInput {
            d: 3,
            runs: vec![
                SimRunLayout { start_disk: 0, min_keys: vec![10, 30] },
                SimRunLayout { start_disk: 1, min_keys: vec![20, 40] },
            ],
        }
    }

    fn clean_events() -> Vec<SimEvent> {
        vec![
            SimEvent::InitRead { runs: vec![0, 1] },
            SimEvent::Depleted { run: 0, idx: 0 },
            SimEvent::ParRead {
                targets: vec![(1, 0, 1), (2, 1, 1)],
                flushed: vec![],
            },
            SimEvent::Depleted { run: 1, idx: 0 },
            SimEvent::Depleted { run: 0, idx: 1 },
            SimEvent::Depleted { run: 1, idx: 1 },
        ]
    }

    #[test]
    fn clean_schedule_passes() {
        let summary = match check_sim_trace(&input(), &clean_events()) {
            Ok(s) => s,
            Err(v) => panic!("clean sim trace rejected: {v}"),
        };
        assert_eq!(summary.init_reads, 1);
        assert_eq!(summary.par_reads, 1);
        assert_eq!(summary.depletes, 4);
        assert_eq!(summary.blocks_fetched, 4);
    }

    #[test]
    fn two_initial_blocks_on_one_disk_is_flagged() {
        // Both runs starting on disk 0 cannot arrive in one batch.
        let input = SimCheckInput {
            d: 3,
            runs: vec![
                SimRunLayout { start_disk: 0, min_keys: vec![10] },
                SimRunLayout { start_disk: 0, min_keys: vec![20] },
            ],
        };
        let events = vec![SimEvent::InitRead { runs: vec![0, 1] }];
        let v = match check_sim_trace(&input, &events) {
            Err(v) => v,
            Ok(_) => panic!("accepted duplicate-disk initial read"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::DuplicateDiskInOp { op: "initial read", disk: DiskId(0) }
        ));
    }

    #[test]
    fn non_minimal_fetch_is_flagged() {
        let mut events = clean_events();
        // Fetch run 1's block 1 from the wrong disk claim — swap its
        // target to a block that is not the forecast minimum of disk 1.
        if let SimEvent::ParRead { targets, .. } = &mut events[2] {
            *targets = vec![(1, 0, 1), (2, 1, 1), (0, 0, 0)];
        }
        let v = match check_sim_trace(&input(), &events) {
            Err(v) => v,
            Ok(_) => panic!("accepted stale re-fetch"),
        };
        // Block (0, run 0) has no forecasting entry anymore — disk 0's
        // minimum is absent.
        assert!(matches!(
            v.kind,
            ViolationKind::NotForecastMinimal { disk: DiskId(0), .. }
        ));
    }

    #[test]
    fn incomplete_fetch_set_is_flagged() {
        let mut events = clean_events();
        if let SimEvent::ParRead { targets, .. } = &mut events[2] {
            targets.pop();
        }
        let v = match check_sim_trace(&input(), &events) {
            Err(v) => v,
            Ok(_) => panic!("accepted incomplete fetch set"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::FetchSetIncomplete { disk: DiskId(2), .. }
        ));
    }

    #[test]
    fn truncated_trace_is_flagged() {
        let mut events = clean_events();
        events.pop();
        let v = match check_sim_trace(&input(), &events) {
            Err(v) => v,
            Ok(_) => panic!("accepted truncated trace"),
        };
        assert!(matches!(v.kind, ViolationKind::UnexpectedEvent { event: "end of trace", .. }));
        assert_eq!(v.seq, 5, "finish violations locate at one past the last event");
    }

    #[test]
    fn unsanctioned_flush_is_flagged() {
        let mut events = clean_events();
        if let SimEvent::ParRead { flushed, .. } = &mut events[2] {
            flushed.push((0, 1));
        }
        let v = match check_sim_trace(&input(), &events) {
            Err(v) => v,
            Ok(_) => panic!("accepted unsanctioned flush"),
        };
        assert!(matches!(
            v.kind,
            ViolationKind::FlushCountMismatch { expected: 0, got: 1 }
        ));
    }
}
