//! Trace-level invariant checker for the Vitter–Shriver parallel disk
//! model.
//!
//! The sorters in this workspace claim to follow the model rules of the
//! paper exactly — at most one block per disk per parallel I/O, buffer
//! residency within `M/B`, forecast-minimal fetching, farthest-future
//! virtual flushes, perfectly striped output runs, and rotating parity
//! that never colocates data with its parity.  Those claims back every
//! number the repo reports against the paper's tables; this crate makes
//! them *checkable*.
//!
//! `pdisk` records a structured [`pdisk::trace`] event stream (off by
//! default, zero-cost when absent).  This crate replays such a stream
//! through an independent replica of the scheduler's data structures and
//! judges every event against the formal rules; any divergence is a
//! typed, located [`Violation`] naming the pass, disk, run, and block
//! involved.
//!
//! Two entry points:
//!
//! * [`check_trace`] / [`check_trace_collect`] / [`check_stats`] — judge
//!   an engine trace recorded by `pdisk::trace::TraceSink` (used by both
//!   sorters and the CLI's `--check-model`);
//! * [`sim::check_sim_trace`] — judge the block-granularity simulator's
//!   schedule trace against the same scheduling rules.
//!
//! ```
//! use pdisk::trace::{Tagged, TraceEvent};
//! use pdisk::{BlockAddr, DiskId, Geometry};
//!
//! let geom = Geometry::new(2, 4, 64).unwrap();
//! // A parallel read touching one disk twice breaks the model's
//! // defining constraint and is flagged at its event.
//! let trace = vec![Tagged {
//!     seq: 0,
//!     pass: 1,
//!     event: TraceEvent::Read {
//!         addrs: vec![BlockAddr::new(DiskId(0), 0), BlockAddr::new(DiskId(0), 1)],
//!     },
//! }];
//! let violation = modelcheck::check_trace(geom, &trace).unwrap_err();
//! assert!(violation.to_string().contains("d0 twice"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod sim;
pub mod violation;

pub use replay::{check_stats, check_trace, check_trace_collect, CheckSummary, Replay};
pub use violation::{BlockRef, Violation, ViolationKind};
