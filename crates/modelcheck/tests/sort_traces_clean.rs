//! End-to-end guarantee: full SRM and DSM sorts — healthy, transiently
//! faulty, parity-protected, degraded by a permanent disk death, and
//! resumed from a checkpoint — produce traces with **zero** model-rule
//! violations, and their [`pdisk::IoStats`] agree with the trace.
//!
//! These are the repo's "race detector is quiet" tests: every scheduler
//! decision, buffer move, output stripe, and parity placement of a real
//! sort is replayed against the paper's rules.

use modelcheck::{check_stats, check_trace, CheckSummary};
use pdisk::trace::TracingDiskArray;
use pdisk::{
    DiskArray, FaultModel, FaultOp, FaultyDiskArray, Geometry, MemDiskArray,
    ParityDiskArray, RetryPolicy, RetryingDiskArray, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{SrmError, SrmSorter};
use std::path::PathBuf;
use std::time::Duration;

fn random_records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-modelcheck-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run an SRM sort on `array` (already wrapped for tracing), check the
/// trace and the stats, and return the summary.
fn sort_and_check<A: DiskArray<U64Record>>(
    array: &mut TracingDiskArray<U64Record, A>,
    data: &[U64Record],
) -> CheckSummary {
    let geom = array.geometry();
    let input = write_unsorted_input(array, data).unwrap();
    let (_, report) = SrmSorter::default().sort(array, &input).unwrap();
    assert!(report.merge_passes >= 1, "need a real multi-pass sort");
    let trace = array.take_trace();
    let summary = check_trace(geom, &trace).unwrap_or_else(|v| panic!("violation: {v}"));
    check_stats(&trace, &array.stats()).unwrap_or_else(|v| panic!("stats drift: {v}"));
    summary
}

#[test]
fn srm_healthy_sort_is_checker_clean() {
    let geom = Geometry::new(2, 4, 96).unwrap();
    let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
    let summary = sort_and_check(&mut a, &random_records(3000, 0xA1));
    // The checker must have judged real work, not vacuously passed.
    assert!(summary.merges >= 10, "{summary:?}");
    assert!(summary.sched_reads > 100, "{summary:?}");
    assert!(summary.depletes > 500, "{summary:?}");
    assert!(summary.runs_written > 10, "{summary:?}");
    assert_eq!(summary.parity_commits, 0);
}

/// The pipelined engine emits the two-event `ReadSubmit`/`SchedRead`
/// protocol; its trace must replay clean, every submit must pair with a
/// completion, and its stats must match the trace — on both the plain
/// and the flush-heavy geometry.
#[test]
fn srm_pipelined_sort_is_checker_clean() {
    for (geom, n, seed) in [
        (Geometry::new(2, 4, 96).unwrap(), 3000u64, 0xB1u64),
        (Geometry::new(4, 8, 256).unwrap(), 12_000, 0xB2),
    ] {
        let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
        let input = write_unsorted_input(&mut a, &random_records(n, seed)).unwrap();
        let (_, report) = SrmSorter::default()
            .with_pipeline(true)
            .sort(&mut a, &input)
            .unwrap();
        assert!(report.merge_passes >= 1, "need a real multi-pass sort");
        let trace = a.take_trace();
        let summary = check_trace(geom, &trace).unwrap_or_else(|v| panic!("violation: {v}"));
        check_stats(&trace, &a.stats()).unwrap_or_else(|v| panic!("stats drift: {v}"));
        assert!(summary.read_submits > 100, "{summary:?}");
        assert_eq!(
            summary.read_submits, summary.sched_reads,
            "every split-phase submit must complete: {summary:?}"
        );
    }
}

/// A wider array at low `k = R/D` pushes occupancy over `R` and forces
/// rule 2c virtual flushes; those must verify too.
#[test]
fn srm_flush_heavy_sort_is_checker_clean() {
    let geom = Geometry::new(4, 8, 256).unwrap();
    let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
    let summary = sort_and_check(&mut a, &random_records(12_000, 0xA2));
    assert!(summary.sched_reads > 100, "{summary:?}");
}

#[test]
fn srm_transient_faults_with_retry_are_checker_clean() {
    let geom = Geometry::new(2, 4, 96).unwrap();
    let faulty = FaultyDiskArray::new(
        MemDiskArray::<U64Record>::new(geom),
        FaultModel::random(7).with_rate(0.01),
    );
    let retrying = RetryingDiskArray::new(faulty, RetryPolicy::new(8, Duration::ZERO));
    let mut a = TracingDiskArray::new(retrying);
    let summary = sort_and_check(&mut a, &random_records(3000, 0xA3));
    assert!(summary.retries > 0, "fault rate 1% must actually retry: {summary:?}");
    assert!(summary.faults > 0, "{summary:?}");
}

#[test]
fn srm_parity_sort_is_checker_clean() {
    let geom = Geometry::new(3, 4, 120).unwrap();
    let parity = ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap();
    let mut a = TracingDiskArray::new(parity);
    let summary = sort_and_check(&mut a, &random_records(3000, 0xA4));
    assert!(summary.parity_commits > 100, "{summary:?}");
    assert_eq!(summary.reconstructs, 0, "healthy parity never reconstructs");
}

#[test]
fn srm_degraded_sort_is_checker_clean() {
    let geom = Geometry::new(3, 4, 120).unwrap();
    // First run a healthy sort to learn a read ordinal to kill at.
    let reads = {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut a, &random_records(3000, 0xA5)).unwrap();
        a.reset_stats();
        SrmSorter::default().sort(&mut a, &input).unwrap();
        a.stats().read_ops
    };
    let faulty = FaultyDiskArray::new(
        MemDiskArray::<U64Record>::new(geom),
        FaultModel::none().kill_at(FaultOp::Read, reads / 2),
    );
    let parity = ParityDiskArray::new(faulty).unwrap();
    let mut a = TracingDiskArray::new(parity);
    let summary = sort_and_check(&mut a, &random_records(3000, 0xA5));
    assert!(
        summary.reconstructs > 0,
        "the dead disk's blocks must be served by reconstruction: {summary:?}"
    );
}

/// A sort crashed at a pass boundary and resumed from its checkpoint
/// yields two traces (one per session), each checker-clean, whose
/// concatenation accounts for the array's total I/O.
#[test]
fn srm_checkpoint_resume_is_checker_clean() {
    let geom = Geometry::new(2, 4, 96).unwrap();
    let dir = unique_dir("resume");
    let manifest = dir.join("sort.manifest");
    let data = random_records(3000, 0xA6);
    let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
    let input = write_unsorted_input(&mut a, &data).unwrap();

    // Session 1: crash after merge pass 1 completes.
    let result = SrmSorter::default().sort_observed(&mut a, &input, Some(&manifest), |pass, _| {
        if pass == 1 {
            return Err(SrmError::Internal("simulated crash".into()));
        }
        Ok(())
    });
    assert!(result.is_err(), "session 1 must crash");
    let first = a.take_trace();
    check_trace(geom, &first).unwrap_or_else(|v| panic!("session 1 violation: {v}"));

    // Session 2: resume from the manifest and finish.
    let (_, report) = SrmSorter::default()
        .sort_checkpointed(&mut a, &input, &manifest)
        .unwrap();
    assert_eq!(report.merge_passes, 3, "whole-sort pass count");
    let second = a.take_trace();
    let summary = check_trace(geom, &second).unwrap_or_else(|v| panic!("session 2 violation: {v}"));
    assert!(summary.merges > 0, "{summary:?}");

    // Stats cover both sessions; so does the concatenated trace.
    let mut all = first;
    all.extend(second);
    check_stats(&all, &a.stats()).unwrap_or_else(|v| panic!("stats drift: {v}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dsm_healthy_and_parity_sorts_are_checker_clean() {
    use dsm::{write_unsorted_stripes, DsmSorter};
    let geom = Geometry::new(3, 4, 120).unwrap();
    let data = random_records(3000, 0xA7);

    let mut plain = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
    let input = write_unsorted_stripes(&mut plain, &data).unwrap();
    DsmSorter::default().sort(&mut plain, &input).unwrap();
    let trace = plain.take_trace();
    let summary = check_trace(geom, &trace).unwrap_or_else(|v| panic!("dsm violation: {v}"));
    assert!(summary.reads > 100, "{summary:?}");
    check_stats(&trace, &plain.stats()).unwrap_or_else(|v| panic!("dsm stats drift: {v}"));

    let parity = ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap();
    let mut under_parity = TracingDiskArray::new(parity);
    let input = write_unsorted_stripes(&mut under_parity, &data).unwrap();
    DsmSorter::default().sort(&mut under_parity, &input).unwrap();
    let trace = under_parity.take_trace();
    let summary =
        check_trace(geom, &trace).unwrap_or_else(|v| panic!("dsm parity violation: {v}"));
    assert!(summary.parity_commits > 0, "{summary:?}");
    check_stats(&trace, &under_parity.stats())
        .unwrap_or_else(|v| panic!("dsm parity stats drift: {v}"));
}

/// The block-granularity simulator's schedule obeys the same rules: its
/// trace maps structurally onto [`modelcheck::sim`]'s events.
#[test]
fn simulator_schedule_is_checker_clean() {
    use modelcheck::sim::{check_sim_trace, SimCheckInput, SimEvent, SimRunLayout};
    use srm_core::simulator::{MergeSim, SimInput, SimPlacement, TraceEvent as SimTrace};

    let mut rng = SmallRng::seed_from_u64(0xFEED);
    let input = SimInput::average_case(20, 100, 64, 5, SimPlacement::Random, &mut rng);
    let (stats, trace) = MergeSim::run_traced(&input).unwrap();
    assert!(stats.schedule.blocks_flushed > 0, "seed must exercise rule 2c");

    let check_input = SimCheckInput {
        d: input.d,
        runs: input
            .runs
            .iter()
            .map(|r| SimRunLayout {
                start_disk: r.start_disk,
                min_keys: r.min_keys.clone(),
            })
            .collect(),
    };
    let events: Vec<SimEvent> = trace
        .iter()
        .map(|e| match e {
            SimTrace::InitRead { runs } => SimEvent::InitRead { runs: runs.clone() },
            SimTrace::ParRead { targets, flushed } => SimEvent::ParRead {
                targets: targets.clone(),
                flushed: flushed.clone(),
            },
            SimTrace::Depleted { run, idx } => SimEvent::Depleted { run: *run, idx: *idx },
        })
        .collect();
    let summary = check_sim_trace(&check_input, &events).unwrap_or_else(|v| panic!("sim: {v}"));
    assert_eq!(summary.init_reads, stats.schedule.init_reads);
    assert_eq!(summary.par_reads, stats.schedule.par_reads);
    assert_eq!(summary.flushed_blocks, stats.schedule.blocks_flushed);
    assert_eq!(summary.blocks_fetched, stats.schedule.blocks_read);
}
