//! The dist chaos target: one in-process `srm-dist` distributed sort
//! per trial, with the schedule folded into the coordinator's fault
//! configuration — network drop/dup/delay rates and partitions on the
//! shared transport, one node kill with fence-and-respawn recovery,
//! and per-disk I/O service delay.
//!
//! Every generated event is *survivable by specification*: the
//! detector fences and respawns killed or partitioned nodes, the RPC
//! layer re-sends dropped frames, the dedupe layer absorbs duplicates.
//! The oracle is therefore strict: the sort must complete with
//! `oracle_ok`, a checker-clean trace on every shard, and the digest
//! of the failure-free run.  (The unsurvivable injections — ENOSPC on
//! a shard via `DistConfig::fill_write` — are deliberately excluded
//! from generated schedules; their typed-failure contract is covered
//! by directed tests instead.)

use crate::schedule::ChaosEvent;
use crate::{CampaignConfig, ChaosError, TrialOutcome, Violation};
use pdisk::NetFaultModel;
use srm_dist::{distsort, DistConfig, KillPlan, KillPoint};
use srm_server::expected_digest;
use std::path::Path;

/// Fold a schedule into a [`DistConfig`].  Event order is irrelevant
/// (each event arms an independent knob), which keeps subsets of a
/// schedule meaningful for the minimizer.
fn dist_config(cfg: &CampaignConfig, events: &[ChaosEvent], seed: u64) -> DistConfig {
    let mut dc = DistConfig::new(cfg.shards);
    let mut net = NetFaultModel::seeded(seed);
    let mut net_armed = false;
    for ev in events {
        match ev {
            ChaosEvent::NetDrop { per_mille } => {
                net = net.with_drop_rate(f64::from(*per_mille) / 1000.0);
                net_armed = true;
            }
            ChaosEvent::NetDup { per_mille } => {
                net = net.with_dup_rate(f64::from(*per_mille) / 1000.0);
                net_armed = true;
            }
            ChaosEvent::NetDelay {
                per_mille,
                max_ticks,
            } => {
                net = net
                    .with_delay_rate(f64::from(*per_mille) / 1000.0)
                    .with_max_delay(*max_ticks);
                net_armed = true;
            }
            ChaosEvent::Partition { node, from, until } => {
                net = net.partition(*node, *from, *until);
                net_armed = true;
            }
            ChaosEvent::KillNode { shard, pass } => {
                dc.kill = Some(KillPlan {
                    shard: *shard,
                    point: KillPoint::Pass(*pass),
                });
            }
            ChaosEvent::IoDelayUs { micros } => {
                dc.io_delay = std::time::Duration::from_micros(*micros);
            }
            // Local- and server-target events in a dist schedule are
            // inert (only reachable via a hand-edited artifact).
            _ => {}
        }
    }
    if net_armed {
        dc.net = net;
    }
    dc
}

/// Run one dist trial: fold the schedule into the coordinator config,
/// sort, and hold the report to the standing oracle.
pub fn run_trial(
    cfg: &CampaignConfig,
    events: &[ChaosEvent],
    dir: &Path,
) -> Result<TrialOutcome, ChaosError> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| ChaosError::Io(format!("create {}: {e}", dir.display())))?;
    let spec = cfg.job_spec();
    // Derive the transport seed from the campaign seed and the events
    // so distinct schedules explore distinct delivery interleavings,
    // deterministically.
    let net_seed = cfg.seed ^ (events.len() as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let dc = dist_config(cfg, events, net_seed);

    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        distsort(&spec, &dc, dir)
    }));
    let mut outcome = TrialOutcome {
        attempts: 1,
        ..TrialOutcome::default()
    };
    match run {
        Ok(Ok(report)) => {
            outcome.resumed = report.recoveries as u32;
            outcome.attempts += report.recoveries as u32;
            let want = expected_digest(&spec);
            if !report.oracle_ok {
                outcome.violation = Some(Violation::ModelViolation(
                    "dist report: oracle_ok = false (merged output out of order or wrong length)"
                        .into(),
                ));
            } else if let Some((i, _)) = report
                .per_shard
                .iter()
                .enumerate()
                .find(|(_, s)| !s.trace_clean)
            {
                outcome.violation = Some(Violation::ModelViolation(format!(
                    "shard {i}: recovery trace rejected by the model checker"
                )));
            } else if report.digest != want {
                outcome.violation = Some(Violation::DigestMismatch {
                    got: report.digest,
                    want,
                });
            }
        }
        Ok(Err(e)) => {
            outcome.violation = Some(Violation::UnexpectedError(format!(
                "distsort failed under a survivable schedule: {e}"
            )));
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            outcome.violation = Some(Violation::Panicked(msg));
        }
    }
    let _ = std::fs::remove_dir_all(dir);
    Ok(outcome)
}
