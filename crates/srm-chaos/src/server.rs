//! The server chaos target: a real `srm serve` subprocess driven over
//! its line protocol, with `kill -9` restarts and injected job-store
//! ENOSPC.
//!
//! Unlike the in-process targets, this one exercises the whole durable
//! path: jobs are persisted to a real directory, the process is killed
//! without warning (`SIGKILL`, no drain), a fresh process is started
//! on the same store, and the oracle demands every submitted job still
//! settle as `done` with the digest the spec predicts.  A scheduled
//! [`ChaosEvent::StoreFull`] starts the first incarnation with the
//! store's ENOSPC injection armed; the overflowing SUBMIT must be
//! refused with the typed `no-space` admission error (anything else —
//! a hang, a wedged queue slot, an untyped error — is a violation),
//! after which a restart without the injection plays the operator
//! freeing space.
//!
//! Requires [`crate::CampaignConfig::server_bin`] — the `srm` binary
//! to spawn.  The campaign and replay paths thread it through from
//! `std::env::current_exe()` in the CLI.

use crate::schedule::ChaosEvent;
use crate::{CampaignConfig, ChaosError, TrialOutcome, Violation};
use srm_server::expected_digest;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServerProc {
    child: Child,
    port: u16,
}

fn io(e: impl std::fmt::Display) -> ChaosError {
    ChaosError::Io(e.to_string())
}

fn spawn_server(
    bin: &Path,
    dir: &Path,
    nospace_after: Option<u64>,
) -> Result<ServerProc, ChaosError> {
    let mut cmd = Command::new(bin);
    cmd.arg("serve")
        .arg("--dir")
        .arg(dir)
        .args(["--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .stdin(Stdio::null());
    if let Some(n) = nospace_after {
        cmd.args(["--store-nospace-after", &n.to_string()]);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| ChaosError::Io(format!("spawn {} serve: {e}", bin.display())))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut lines = BufReader::new(stdout).lines();
    // The server prints "listening on 127.0.0.1:<port>" once bound.
    let port = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("listening on ") {
                    let port = addr
                        .rsplit(':')
                        .next()
                        .and_then(|p| p.parse::<u16>().ok())
                        .ok_or_else(|| {
                            ChaosError::Io(format!("unparseable listen line: {line}"))
                        })?;
                    break port;
                }
            }
            Some(Err(e)) => return Err(io(format!("read server stdout: {e}"))),
            None => {
                let status = child.wait().map_err(io)?;
                return Err(ChaosError::Io(format!(
                    "server exited before listening ({status})"
                )));
            }
        }
    };
    // Drain the rest of stdout in the background so the server never
    // blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Ok(ServerProc { child, port })
}

/// One request line, one (or more, for WATCH) response lines; returns
/// the final `OK`/`ERR` line.
fn request(port: u16, line: &str) -> Result<String, ChaosError> {
    let mut last = None;
    // The server may still be binding after a restart; retry refused
    // connections briefly (mirrors the CLI client's reconnect loop).
    for attempt in 0..50u32 {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(mut stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(io)?;
                writeln!(stream, "{line}").map_err(io)?;
                stream.flush().map_err(io)?;
                let reader = BufReader::new(stream);
                let mut final_line = String::new();
                for resp in reader.lines() {
                    let resp = resp.map_err(io)?;
                    if resp.starts_with("OK") || resp.starts_with("ERR") || resp.starts_with("BYE")
                    {
                        final_line = resp;
                        break;
                    }
                    // EVENT/JOB rows stream past until the final line.
                }
                if final_line.is_empty() {
                    return Err(ChaosError::Io(format!(
                        "connection closed before a final response to `{line}`"
                    )));
                }
                return Ok(final_line);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(20 + 10 * u64::from(attempt)));
            }
        }
    }
    Err(ChaosError::Io(format!(
        "cannot reach server on port {port}: {}",
        last.map_or_else(|| "no error recorded".into(), |e| e.to_string())
    )))
}

fn kill9(proc: &mut ServerProc) -> Result<(), ChaosError> {
    proc.child.kill().map_err(io)?; // SIGKILL on unix
    proc.child.wait().map_err(io)?;
    Ok(())
}

/// Run one server trial.  See the module docs for the drill's shape.
pub fn run_trial(
    cfg: &CampaignConfig,
    events: &[ChaosEvent],
    dir: &Path,
) -> Result<TrialOutcome, ChaosError> {
    let bin: &PathBuf = cfg.server_bin.as_ref().ok_or_else(|| {
        ChaosError::Config("server target needs CampaignConfig::server_bin (the srm binary)".into())
    })?;
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| ChaosError::Io(format!("create {}: {e}", dir.display())))?;
    let store = dir.join("store");

    let nospace_after = events.iter().find_map(|e| match e {
        ChaosEvent::StoreFull { after_writes } => Some(*after_writes),
        _ => None,
    });
    let kills: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            ChaosEvent::KillServer { after_submit } => Some(*after_submit),
            _ => None,
        })
        .collect();

    let mut outcome = TrialOutcome {
        attempts: 1,
        ..TrialOutcome::default()
    };
    let result = run_drill(
        cfg,
        bin,
        &store,
        nospace_after,
        &kills,
        &mut outcome,
    );
    match result {
        Ok(violation) => outcome.violation = violation,
        Err(e) => return Err(e),
    }
    let _ = std::fs::remove_dir_all(dir);
    Ok(outcome)
}

fn run_drill(
    cfg: &CampaignConfig,
    bin: &Path,
    store: &Path,
    nospace_after: Option<u64>,
    kills: &[u32],
    outcome: &mut TrialOutcome,
) -> Result<Option<Violation>, ChaosError> {
    let spec = cfg.job_spec();
    let submit_line = format!(
        "SUBMIT records={} seed={} d={} b={} m={}",
        spec.records, spec.seed, spec.d, spec.b, spec.m
    );
    let want = expected_digest(&spec);

    let mut server = spawn_server(bin, store, nospace_after)?;
    let mut nospace_refusals = 0u32;
    let mut ids: Vec<u64> = Vec::new();
    let mut accepted = 0u32;

    while (ids.len() as u32) < cfg.server_jobs {
        let resp = request(server.port, &submit_line)?;
        if let Some(rest) = resp.strip_prefix("OK id=") {
            let id: u64 = rest
                .split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ChaosError::Io(format!("unparseable submit reply: {resp}")))?;
            ids.push(id);
            accepted += 1;
            if kills.contains(&accepted) {
                kill9(&mut server)?;
                // Restart on the same store; the injection does not
                // survive the restart (the "disk" has been swapped).
                server = spawn_server(bin, store, None)?;
                outcome.attempts += 1;
                outcome.resumed += 1;
            }
        } else if resp.starts_with("ERR code=no-space") {
            if nospace_after.is_none() {
                return Ok(Some(Violation::UnexpectedError(format!(
                    "no-space refusal without a store-full event: {resp}"
                ))));
            }
            nospace_refusals += 1;
            if nospace_refusals > cfg.server_jobs + 2 {
                return Ok(Some(Violation::Wedged {
                    attempts: nospace_refusals,
                }));
            }
            // The operator frees space: restart without the injection
            // and resubmit the refused job.
            kill9(&mut server)?;
            server = spawn_server(bin, store, None)?;
            outcome.attempts += 1;
            outcome.resumed += 1;
        } else {
            return Ok(Some(Violation::UnexpectedError(format!(
                "submit refused: {resp}"
            ))));
        }
    }
    if nospace_after.is_some() && nospace_refusals == 0 {
        // The injection was armed but never tripped: the threshold sits
        // beyond this trial's writes.  Not a violation — the event was
        // a no-op, exactly like an out-of-range ordinal.
    }

    // Every job must settle as done with the spec's digest; WATCH
    // streams until it settles.
    let mut violation = None;
    for id in &ids {
        // WATCH settles on Suspended as well (that is its drain
        // contract); after a kill-9 restart a job can be observed
        // suspended for a moment before a worker re-adopts it, so
        // re-watch until it reaches a terminal state.
        let mut resp = request(server.port, &format!("WATCH {id}"))?;
        for _ in 0..100 {
            if !resp.contains("state=suspended") {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
            resp = request(server.port, &format!("WATCH {id}"))?;
        }
        if resp.starts_with("BYE") {
            violation = Some(Violation::UnexpectedError(format!(
                "server began draining uninstructed: {resp}"
            )));
            break;
        }
        if !resp.contains("state=done") {
            violation = Some(Violation::Wedged {
                attempts: outcome.attempts,
            });
            break;
        }
        let got = resp
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("digest="))
            .and_then(|d| d.parse::<u64>().ok());
        if got != Some(want) {
            violation = Some(Violation::DigestMismatch {
                got: got.unwrap_or(0),
                want,
            });
            break;
        }
    }

    let _ = request(server.port, "DRAIN");
    let status = server.child.wait().map_err(io)?;
    if violation.is_none() && !status.success() {
        violation = Some(Violation::UnexpectedError(format!(
            "server exited uncleanly after drain: {status}"
        )));
    }
    Ok(violation)
}
