//! Chaos campaign engine for the SRM stack.
//!
//! Property-based crash testing found each fault class in isolation;
//! this crate hunts the bugs that only *composed* faults expose.  One
//! campaign is a seeded sequence of trials.  Each trial:
//!
//! 1. draws a small randomized fault schedule ([`schedule`]) composing
//!    the workspace's injectors — transient/permanent/corruption disk
//!    faults, crash points, network drop/dup/delay/partition, node and
//!    server kills, interrupts, and the disk-full (`ENOSPC`) and
//!    fsync-failure kinds this crate added to the taxonomy;
//! 2. executes it against one of three targets: a local checkpointed
//!    sort ([`local`]), the distributed sort ([`dist`]), or an
//!    out-of-process `srm serve` with `kill -9` restarts ([`server`]);
//! 3. checks a standing oracle: output identical to the failure-free
//!    run, model-checker-clean trace, no panic, no unexpected error,
//!    no wedged recovery loop, no leaked temp or journal files.
//!
//! On a violation, a delta-debugging minimizer ([`minimize`]) shrinks
//! the schedule to a minimal failing subset and a deterministic replay
//! artifact ([`repro`], `chaos-repro-*.json`) is written; `srm chaos
//! --replay FILE` re-executes it exactly.
//!
//! The campaign itself is deterministic: `(target, seed, trial)` fixes
//! the schedule, every injector draws from seeded streams, and the
//! oracle compares against values derived from the job spec — so a
//! violation found on one machine replays on another.

#![forbid(unsafe_code)]

pub mod dist;
pub mod local;
pub mod minimize;
pub mod repro;
pub mod schedule;
pub mod server;

pub use repro::ReproArtifact;
pub use schedule::{ChaosEvent, Envelope};

use srm_server::{EngineKind, JobSpec};
use std::path::PathBuf;

/// Which system a trial drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// In-process checkpointed `srm` sort behind the full protection
    /// stack (tracing / crash / retry / parity / fault injection).
    Local,
    /// In-process `srm-dist` distributed sort: sharded clusters, the
    /// faultable transport, failure detection and respawn.
    Dist,
    /// Out-of-process `srm serve` driven over its line protocol, with
    /// real `kill -9` and restart-on-the-same-store.
    Server,
}

impl Target {
    /// Stable slug for artifacts and CLI flags.
    pub fn slug(&self) -> &'static str {
        match self {
            Target::Local => "local",
            Target::Dist => "distsort",
            Target::Server => "server",
        }
    }

    /// Parse a CLI/artifact slug.
    pub fn from_slug(s: &str) -> Option<Target> {
        match s {
            "local" => Some(Target::Local),
            "distsort" | "dist" => Some(Target::Dist),
            "server" => Some(Target::Server),
            _ => None,
        }
    }
}

/// A broken standing invariant — what a trial is hunting.
///
/// The discriminant (not the payload) identifies a failure mode: the
/// minimizer shrinks a schedule as long as the subset still produces a
/// violation with the same [`Violation::code`].
#[derive(Debug, Clone, PartialEq)]
#[srmlint::protocol]
pub enum Violation {
    /// Output differs from the failure-free run.
    DigestMismatch { got: u64, want: u64 },
    /// The model checker rejected the recovery's I/O trace.
    ModelViolation(String),
    /// An error the schedule cannot explain (anything other than the
    /// typed crash / interrupt / no-space / sync-failure outcomes the
    /// injected events are specified to produce).
    UnexpectedError(String),
    /// Recovery made no progress: the trial was still failing after
    /// every scheduled fault had either fired or been repaired.
    Wedged { attempts: u32 },
    /// Temp or journal files survived a completed trial.
    LeakedFiles(String),
    /// The target panicked.
    Panicked(String),
}

impl Violation {
    /// Stable slug identifying the failure mode.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::DigestMismatch { .. } => "digest-mismatch",
            Violation::ModelViolation(_) => "model-violation",
            Violation::UnexpectedError(_) => "unexpected-error",
            Violation::Wedged { .. } => "wedged",
            Violation::LeakedFiles(_) => "leaked-files",
            Violation::Panicked(_) => "panic",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DigestMismatch { got, want } => {
                write!(f, "digest mismatch: got {got:#x}, want {want:#x}")
            }
            Violation::ModelViolation(m) => write!(f, "model violation: {m}"),
            Violation::UnexpectedError(m) => write!(f, "unexpected error: {m}"),
            Violation::Wedged { attempts } => {
                write!(f, "wedged: no progress after {attempts} recovery attempts")
            }
            Violation::LeakedFiles(names) => write!(f, "leaked files after cleanup: {names}"),
            Violation::Panicked(m) => write!(f, "panicked: {m}"),
        }
    }
}

/// Campaign-engine failure — infrastructure problems, not oracle
/// violations (those are data, carried in [`TrialOutcome`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChaosError {
    /// Filesystem or process-spawning failure in the harness itself.
    Io(String),
    /// A reproducer artifact could not be parsed.
    Parse(String),
    /// A parsed artifact is structurally valid but unusable (wrong
    /// version, unknown target, missing server binary, ...).
    BadArtifact(String),
    /// The campaign configuration is unusable.
    Config(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Io(m) => write!(f, "chaos harness I/O error: {m}"),
            ChaosError::Parse(m) => write!(f, "cannot parse reproducer artifact: {m}"),
            ChaosError::BadArtifact(m) => write!(f, "unusable reproducer artifact: {m}"),
            ChaosError::Config(m) => write!(f, "chaos config error: {m}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// One trial's verdict.
#[derive(Debug, Clone, Default)]
pub struct TrialOutcome {
    /// The broken invariant, if any.
    pub violation: Option<Violation>,
    /// Incarnations the target ran (1 = no recovery needed).
    pub attempts: u32,
    /// Incarnations that resumed from a checkpoint manifest.
    pub resumed: u32,
}

/// One campaign's parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Target system.
    pub target: Target,
    /// Campaign seed: fixes every trial's schedule.
    pub seed: u64,
    /// Trials to run.
    pub trials: u32,
    /// Records per sort.
    pub records: u64,
    /// Disks (local) per machine.
    pub d: usize,
    /// Block size, records.
    pub b: usize,
    /// Memory, records.
    pub m: usize,
    /// Drive merges through the pipelined engine.
    pub pipeline: bool,
    /// Forecast read-ahead depth for the pipelined engine.
    pub read_ahead: usize,
    /// Sorter placement seed (distinct from the campaign seed so the
    /// same schedule can be replayed against a different placement).
    pub sort_seed: u64,
    /// Shards for the dist target.
    pub shards: u32,
    /// Arm the deliberately-planted retry-classification bug (the
    /// minimizer's regression fixture): the local stack misclassifies
    /// ENOSPC as transient, so the retry layer spins on a full disk
    /// and recovery wedges.
    pub plant_bug: bool,
    /// Scratch directory for trial worlds and reproducer artifacts.
    pub scratch: PathBuf,
    /// `srm` binary for the server target (`None` elsewhere).
    pub server_bin: Option<PathBuf>,
    /// Jobs per server trial.
    pub server_jobs: u32,
    /// Shrink failing schedules with the delta-debugging minimizer.
    pub minimize: bool,
}

impl CampaignConfig {
    /// Small-world defaults: a sort big enough to take several merge
    /// passes and checkpoints, small enough that a 50-trial campaign
    /// finishes in CI time.
    pub fn new(target: Target, seed: u64, scratch: impl Into<PathBuf>) -> Self {
        CampaignConfig {
            target,
            seed,
            trials: 20,
            records: 6_000,
            d: 4,
            b: 16,
            m: 512,
            pipeline: false,
            read_ahead: 0,
            sort_seed: 0xC4A0_5EED,
            shards: 3,
            plant_bug: false,
            scratch: scratch.into(),
            server_bin: None,
            server_jobs: 3,
            minimize: true,
        }
    }

    /// The engine parameters as a server job spec — the same single
    /// construction point the CLI, server, and dist stack use.
    pub fn job_spec(&self) -> JobSpec {
        JobSpec {
            engine: EngineKind::Srm,
            records: self.records,
            seed: self.sort_seed,
            d: self.d,
            b: self.b,
            m: self.m,
            pipeline: self.pipeline,
            read_ahead: self.read_ahead,
            ..JobSpec::default()
        }
    }
}

/// One violating trial in a campaign report.
#[derive(Debug, Clone)]
pub struct ViolationRecord {
    /// Trial index within the campaign.
    pub trial: u32,
    /// The broken invariant.
    pub violation: Violation,
    /// Events in the generated schedule.
    pub events_total: usize,
    /// Events after minimization (== `events_total` when minimization
    /// is off or the schedule was already minimal).
    pub events_min: usize,
    /// The minimized failing schedule.
    pub schedule: Vec<ChaosEvent>,
    /// Replay artifact path, when one was written.
    pub artifact: Option<PathBuf>,
}

/// A whole campaign's outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Trials executed.
    pub trials: u32,
    /// Total incarnations across all trials.
    pub attempts: u64,
    /// Incarnations that resumed from a checkpoint.
    pub resumed: u64,
    /// Every oracle violation, in trial order.
    pub violations: Vec<ViolationRecord>,
}

/// Execute one schedule against the configured target.  This is the
/// single entry point the campaign loop, the minimizer, and `--replay`
/// all share — which is what makes a reproducer authoritative.
pub fn run_trial(
    cfg: &CampaignConfig,
    events: &[ChaosEvent],
    trial_dir: &std::path::Path,
) -> Result<TrialOutcome, ChaosError> {
    match cfg.target {
        Target::Local => local::run_trial(cfg, events, trial_dir),
        Target::Dist => dist::run_trial(cfg, events, trial_dir),
        Target::Server => server::run_trial(cfg, events, trial_dir),
    }
}

/// Run a full campaign: generate, execute, and (on violation) minimize
/// and persist a reproducer per failing trial.  `progress(trial,
/// trials)` is called before each trial.
pub fn run_campaign(
    cfg: &CampaignConfig,
    mut progress: impl FnMut(u32, u32),
) -> Result<CampaignReport, ChaosError> {
    std::fs::create_dir_all(&cfg.scratch)
        .map_err(|e| ChaosError::Io(format!("create scratch {}: {e}", cfg.scratch.display())))?;
    let env = envelope_for(cfg)?;
    let mut report = CampaignReport::default();
    for trial in 0..cfg.trials {
        progress(trial, cfg.trials);
        let events = schedule::generate(cfg.target, cfg.seed, trial, &env);
        let dir = cfg.scratch.join(format!("trial-{trial}"));
        let outcome = run_trial(cfg, &events, &dir)?;
        report.trials += 1;
        report.attempts += u64::from(outcome.attempts);
        report.resumed += u64::from(outcome.resumed);
        let Some(violation) = outcome.violation else {
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        let minimized = if cfg.minimize {
            minimize::ddmin(&events, &violation, |subset| {
                let mdir = cfg.scratch.join(format!("trial-{trial}-min"));
                let out = run_trial(cfg, subset, &mdir);
                let _ = std::fs::remove_dir_all(&mdir);
                match out {
                    Ok(o) => o.violation.is_some_and(|v| v.code() == violation.code()),
                    Err(_) => false,
                }
            })
        } else {
            events.clone()
        };
        let artifact = ReproArtifact::from_campaign(cfg, trial, &violation, &minimized);
        let path = cfg.scratch.join(format!("chaos-repro-{trial}.json"));
        std::fs::write(&path, artifact.encode())
            .map_err(|e| ChaosError::Io(format!("write {}: {e}", path.display())))?;
        report.violations.push(ViolationRecord {
            trial,
            violation,
            events_total: events.len(),
            events_min: minimized.len(),
            schedule: minimized,
            artifact: Some(path),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(report)
}

/// Replay a reproducer artifact exactly: rebuild the trial config it
/// records and execute its event list once.
pub fn replay(
    artifact: &ReproArtifact,
    scratch: &std::path::Path,
    server_bin: Option<PathBuf>,
) -> Result<TrialOutcome, ChaosError> {
    let cfg = artifact.campaign_config(scratch, server_bin)?;
    std::fs::create_dir_all(&cfg.scratch)
        .map_err(|e| ChaosError::Io(format!("create scratch {}: {e}", cfg.scratch.display())))?;
    let dir = cfg.scratch.join(format!("replay-{}", artifact.trial));
    let outcome = run_trial(&cfg, &artifact.events, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// Learn the ordinal envelope for schedule generation.  The local
/// target measures it with a fault-free dry run; the other targets
/// only need coarse bounds.
fn envelope_for(cfg: &CampaignConfig) -> Result<Envelope, ChaosError> {
    match cfg.target {
        Target::Local => local::dry_run(cfg),
        Target::Dist => Ok(Envelope {
            passes: 2,
            disks: cfg.shards,
            ..Envelope::default()
        }),
        Target::Server => Ok(Envelope::default()),
    }
}
