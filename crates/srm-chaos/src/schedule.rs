//! Fault schedules: the unit a chaos trial executes and the minimizer
//! shrinks.
//!
//! A schedule is a flat `Vec<ChaosEvent>`.  Every event names one
//! injection the workspace already knows how to perform — a scripted
//! fault in a [`pdisk::FaultModel`], a crash point on a
//! [`pdisk::CrashClock`], a network fault in a
//! [`pdisk::NetFaultModel`], a node kill, a `kill -9` of the job
//! server — plus the two taxonomy members this crate introduced to the
//! stack: disk-full ([`pdisk::FaultKind::NoSpace`]) and fsync failure
//! ([`pdisk::FaultOp::Sync`]).
//!
//! Schedules are *generated*, never hand-ordered: [`generate`] draws a
//! small composed schedule from a seeded RNG, with every ordinal
//! bounded by an [`Envelope`] learned from a fault-free dry run so the
//! events actually land inside the sort instead of past its last I/O.
//! The draw is a pure function of `(target, seed, trial, envelope)`,
//! which is what makes a reproducer artifact replayable: re-running
//! the recorded event list *is* re-running the trial.

use crate::Target;
use pdisk::FaultOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One injected fault in a schedule.
///
/// Local-target events speak in per-op ordinals (the N-th read /
/// write / alloc / sync of a sort incarnation) and crash-clock
/// boundary numbers; dist-target events configure the shared
/// [`pdisk::NetFaultModel`] or kill a node; server-target events drive
/// the out-of-process `kill -9` / disk-full drills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Scripted transient fault on the given op's `ordinal`-th issue.
    /// The retry layer must absorb it invisibly.
    Transient { op: FaultOp, ordinal: u64 },
    /// Scripted checksum mismatch on the `ordinal`-th read.  Corruption
    /// is retryable (the mirror half of a torn transfer), so one retry
    /// heals it.
    CorruptRead { ordinal: u64 },
    /// The disk serving the `ordinal`-th write reports ENOSPC and stays
    /// full until an operator frees space.  Never retried.
    DiskFull { ordinal: u64 },
    /// The `ordinal`-th durability barrier fails (fsyncgate).  Never
    /// retried; the checkpoint generation it was protecting must not
    /// be trusted.
    SyncFail { ordinal: u64 },
    /// Process crash at crash-clock boundary `point` (counted from the
    /// start of the incarnation this event fires in).
    CrashAt { point: u64 },
    /// Permanently fail one disk at a merge-pass boundary; rotating
    /// parity must keep the sort alive in degraded mode.
    KillDisk { disk: u32, pass: u64 },
    /// SIGINT-style interrupt at a pass boundary: the sort must stop at
    /// the checkpoint and a rerun must resume byte-identically.
    Interrupt { pass: u64 },
    /// Message drop rate, per mille, on the dist transport.
    NetDrop { per_mille: u32 },
    /// Message duplication rate, per mille.
    NetDup { per_mille: u32 },
    /// Message delay rate, per mille, with a bounded reorder window.
    NetDelay { per_mille: u32, max_ticks: u64 },
    /// One node unreachable for the message-ordinal window
    /// `[from, until)`; the failure detector may fence and respawn it.
    Partition { node: u32, from: u64, until: u64 },
    /// Kill one shard's node at a local pass boundary; the coordinator
    /// must fence, respawn, and resume it from its journal.
    KillNode { shard: u32, pass: u64 },
    /// Uniform per-disk I/O service delay on every shard, microseconds.
    IoDelayUs { micros: u64 },
    /// `kill -9` the job server after its `after_submit`-th accepted
    /// job; a restart on the same store must resume every job.
    KillServer { after_submit: u32 },
    /// The server's job store hits ENOSPC after `after_writes` spec
    /// writes: the overflowing SUBMIT must be refused with the typed
    /// `no-space` admission error, not wedge a queue slot.
    StoreFull { after_writes: u64 },
}

impl ChaosEvent {
    /// Stable slug naming the event kind — the JSON discriminator in a
    /// reproducer artifact.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosEvent::Transient { .. } => "transient",
            ChaosEvent::CorruptRead { .. } => "corrupt-read",
            ChaosEvent::DiskFull { .. } => "disk-full",
            ChaosEvent::SyncFail { .. } => "sync-fail",
            ChaosEvent::CrashAt { .. } => "crash-at",
            ChaosEvent::KillDisk { .. } => "kill-disk",
            ChaosEvent::Interrupt { .. } => "interrupt",
            ChaosEvent::NetDrop { .. } => "net-drop",
            ChaosEvent::NetDup { .. } => "net-dup",
            ChaosEvent::NetDelay { .. } => "net-delay",
            ChaosEvent::Partition { .. } => "partition",
            ChaosEvent::KillNode { .. } => "kill-node",
            ChaosEvent::IoDelayUs { .. } => "io-delay",
            ChaosEvent::KillServer { .. } => "kill-server",
            ChaosEvent::StoreFull { .. } => "store-full",
        }
    }
}

impl std::fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosEvent::Transient { op, ordinal } => write!(f, "transient {op}#{ordinal}"),
            ChaosEvent::CorruptRead { ordinal } => write!(f, "corrupt-read #{ordinal}"),
            ChaosEvent::DiskFull { ordinal } => write!(f, "disk-full write#{ordinal}"),
            ChaosEvent::SyncFail { ordinal } => write!(f, "sync-fail #{ordinal}"),
            ChaosEvent::CrashAt { point } => write!(f, "crash-at boundary {point}"),
            ChaosEvent::KillDisk { disk, pass } => write!(f, "kill-disk {disk}@pass{pass}"),
            ChaosEvent::Interrupt { pass } => write!(f, "interrupt @pass{pass}"),
            ChaosEvent::NetDrop { per_mille } => write!(f, "net-drop {per_mille}‰"),
            ChaosEvent::NetDup { per_mille } => write!(f, "net-dup {per_mille}‰"),
            ChaosEvent::NetDelay {
                per_mille,
                max_ticks,
            } => write!(f, "net-delay {per_mille}‰ window {max_ticks}"),
            ChaosEvent::Partition { node, from, until } => {
                write!(f, "partition node{node} [{from},{until})")
            }
            ChaosEvent::KillNode { shard, pass } => write!(f, "kill-node {shard}@pass{pass}"),
            ChaosEvent::IoDelayUs { micros } => write!(f, "io-delay {micros}us"),
            ChaosEvent::KillServer { after_submit } => {
                write!(f, "kill-server after submit {after_submit}")
            }
            ChaosEvent::StoreFull { after_writes } => {
                write!(f, "store-full after {after_writes} writes")
            }
        }
    }
}

/// Bounds learned from a fault-free dry run of the local target: how
/// many of each op the sort issues, how many crash-clock boundaries it
/// ticks, and how many merge passes it runs.  Generated ordinals are
/// drawn inside these ranges so every event has a chance to land.
#[derive(Debug, Clone, Copy, Default)]
pub struct Envelope {
    /// Parallel reads issued.
    pub reads: u64,
    /// Parallel writes issued.
    pub writes: u64,
    /// Contiguous allocations issued.
    pub allocs: u64,
    /// Durability barriers issued.
    pub syncs: u64,
    /// Crash-clock boundaries ticked.
    pub points: u64,
    /// Merge passes (run formation is pass 0's boundary).
    pub passes: u64,
    /// Disks in the array.
    pub disks: u32,
}

fn below(rng: &mut SmallRng, n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        rng.random_range(0..n)
    }
}

/// Draw the schedule for `(target, seed, trial)` — a pure function of
/// its arguments, so a replayed campaign regenerates the identical
/// event list.
pub fn generate(target: Target, seed: u64, trial: u32, env: &Envelope) -> Vec<ChaosEvent> {
    // Distinct stream per trial; the multiplier spreads small trial
    // indices across the whole seed space.
    let mut rng = SmallRng::seed_from_u64(seed ^ (u64::from(trial) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match target {
        Target::Local => generate_local(&mut rng, env),
        Target::Dist => generate_dist(&mut rng, env),
        Target::Server => generate_server(&mut rng),
    }
}

fn generate_local(rng: &mut SmallRng, env: &Envelope) -> Vec<ChaosEvent> {
    let n = rng.random_range(1..=4u32);
    let mut events = Vec::new();
    let mut crashes = 0u32;
    let mut kills = 0u32;
    for _ in 0..n {
        let roll = rng.random_range(0..100u32);
        let ev = match roll {
            // Retryable noise the stack must absorb invisibly.
            0..=29 => {
                let (op, bound) = match rng.random_range(0..3u32) {
                    0 => (FaultOp::Read, env.reads),
                    1 => (FaultOp::Write, env.writes),
                    _ => (FaultOp::Alloc, env.allocs),
                };
                ChaosEvent::Transient {
                    op,
                    ordinal: below(rng, bound),
                }
            }
            30..=43 => ChaosEvent::CorruptRead {
                ordinal: below(rng, env.reads),
            },
            44..=57 => ChaosEvent::DiskFull {
                ordinal: below(rng, env.writes),
            },
            58..=67 => ChaosEvent::SyncFail {
                ordinal: below(rng, env.syncs),
            },
            // At most two crashes per schedule keeps a trial's
            // incarnation count (and wall clock) bounded.
            68..=82 if crashes < 2 => {
                crashes += 1;
                ChaosEvent::CrashAt {
                    point: below(rng, env.points),
                }
            }
            // Rotating parity survives exactly one dead disk.
            83..=92 if kills == 0 && env.disks > 1 => {
                kills += 1;
                ChaosEvent::KillDisk {
                    disk: rng.random_range(0..env.disks),
                    pass: below(rng, env.passes + 1),
                }
            }
            _ => ChaosEvent::Interrupt {
                pass: below(rng, env.passes + 1),
            },
        };
        events.push(ev);
    }
    events
}

fn generate_dist(rng: &mut SmallRng, env: &Envelope) -> Vec<ChaosEvent> {
    let n = rng.random_range(1..=3u32);
    let mut events = Vec::new();
    let mut kills = 0u32;
    let shards = env.disks.max(1); // dist reuses `disks` as the shard count
    for _ in 0..n {
        let roll = rng.random_range(0..100u32);
        let ev = match roll {
            0..=24 => ChaosEvent::NetDrop {
                per_mille: rng.random_range(1..=80u32),
            },
            25..=39 => ChaosEvent::NetDup {
                per_mille: rng.random_range(1..=100u32),
            },
            40..=54 => ChaosEvent::NetDelay {
                per_mille: rng.random_range(1..=150u32),
                max_ticks: rng.random_range(1..=3u64),
            },
            55..=69 => {
                let from = rng.random_range(0..40u64);
                ChaosEvent::Partition {
                    node: rng.random_range(0..shards),
                    from,
                    until: from + rng.random_range(1..=12u64),
                }
            }
            // One kill per schedule: the coordinator's circuit breaker
            // caps respawns, and stacking kills with partitions is how
            // an unsurvivable (and thus oracle-ambiguous) trial forms.
            70..=89 if kills == 0 => {
                kills += 1;
                ChaosEvent::KillNode {
                    shard: rng.random_range(0..shards),
                    pass: rng.random_range(0..=2u64),
                }
            }
            _ => ChaosEvent::IoDelayUs {
                micros: rng.random_range(1..=200u64),
            },
        };
        events.push(ev);
    }
    events
}

fn generate_server(rng: &mut SmallRng) -> Vec<ChaosEvent> {
    let n = rng.random_range(1..=2u32);
    let mut events = Vec::new();
    let mut store_full = 0u32;
    for _ in 0..n {
        let roll = rng.random_range(0..100u32);
        let ev = match roll {
            0..=39 if store_full == 0 => {
                store_full += 1;
                ChaosEvent::StoreFull {
                    after_writes: rng.random_range(0..3u64),
                }
            }
            _ => ChaosEvent::KillServer {
                after_submit: rng.random_range(1..=3u32),
            },
        };
        events.push(ev);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Envelope {
        Envelope {
            reads: 100,
            writes: 100,
            allocs: 20,
            syncs: 10,
            points: 400,
            passes: 3,
            disks: 4,
        }
    }

    #[test]
    fn generation_is_deterministic_per_trial() {
        for target in [Target::Local, Target::Dist, Target::Server] {
            let a = generate(target, 7, 3, &env());
            let b = generate(target, 7, 3, &env());
            assert_eq!(a, b, "{target:?} schedule must be a pure function of (seed, trial)");
            let c = generate(target, 7, 4, &env());
            // Not a hard guarantee for any single pair, but with these
            // seeds the streams differ; a regression to a trial-blind
            // seed would make every trial identical.
            assert_ne!(a, c, "{target:?} trials should explore different schedules");
        }
    }

    #[test]
    fn local_schedules_respect_caps_and_envelope() {
        for trial in 0..200 {
            let events = generate(Target::Local, 11, trial, &env());
            assert!(!events.is_empty() && events.len() <= 4);
            let crashes = events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::CrashAt { .. }))
                .count();
            let kills = events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::KillDisk { .. }))
                .count();
            assert!(crashes <= 2, "trial {trial}: {crashes} crashes");
            assert!(kills <= 1, "trial {trial}: {kills} disk kills");
            for e in &events {
                match e {
                    ChaosEvent::CrashAt { point } => assert!(*point < 400),
                    ChaosEvent::KillDisk { disk, .. } => assert!(*disk < 4),
                    ChaosEvent::DiskFull { ordinal } => assert!(*ordinal < 100),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn dist_schedules_cap_node_kills() {
        for trial in 0..200 {
            let events = generate(Target::Dist, 13, trial, &env());
            let kills = events
                .iter()
                .filter(|e| matches!(e, ChaosEvent::KillNode { .. }))
                .count();
            assert!(kills <= 1, "trial {trial}: {kills} node kills");
        }
    }
}
