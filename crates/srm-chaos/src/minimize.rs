//! Delta-debugging schedule minimization (ddmin).
//!
//! Given a failing schedule and a predicate "does this subset still
//! produce a violation with the same code?", shrink to a *1-minimal*
//! subset: removing any single remaining event makes the failure
//! disappear.  This is Zeller's classic ddmin over event lists; it
//! terminates because every step either shrinks the schedule or
//! increases granularity, and it is deterministic because trials are.
//!
//! Minimality is per-event, not global: a 1-minimal subset is not
//! guaranteed to be the smallest failing subset, but in practice (and
//! in this crate's fixtures) composed-fault reproducers shrink to the
//! one or two events that actually interact.

use crate::schedule::ChaosEvent;
use crate::Violation;

/// Shrink `events` to a 1-minimal subset for which `still_fails`
/// holds.  `violation` is only used for logging context by callers;
/// the predicate owns the "same failure" definition.
pub fn ddmin(
    events: &[ChaosEvent],
    _violation: &Violation,
    mut still_fails: impl FnMut(&[ChaosEvent]) -> bool,
) -> Vec<ChaosEvent> {
    let mut current: Vec<ChaosEvent> = events.to_vec();
    if current.len() <= 1 {
        return current;
    }
    let mut granularity = 2usize;
    loop {
        let chunk = current.len().div_ceil(granularity);
        let chunks: Vec<&[ChaosEvent]> = current.chunks(chunk).collect();

        // Try each chunk alone (reduce to subset)...
        let mut reduced = None;
        for c in &chunks {
            if c.len() < current.len() && still_fails(c) {
                reduced = Some((c.to_vec(), 2));
                break;
            }
        }
        // ...then each chunk's complement (reduce to complement).
        if reduced.is_none() && chunks.len() > 2 {
            for i in 0..chunks.len() {
                let complement: Vec<ChaosEvent> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .flat_map(|(_, c)| c.iter().cloned())
                    .collect();
                if complement.len() < current.len() && still_fails(&complement) {
                    reduced = Some((complement, granularity.saturating_sub(1).max(2)));
                    break;
                }
            }
        }

        match reduced {
            Some((next, gran)) => {
                current = next;
                granularity = gran.min(current.len().max(2));
                if current.len() <= 1 {
                    return current;
                }
            }
            None => {
                if granularity >= current.len() {
                    return current;
                }
                granularity = (granularity * 2).min(current.len());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> ChaosEvent {
        ChaosEvent::CrashAt { point: n }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let events: Vec<ChaosEvent> = (0..8).map(ev).collect();
        let min = ddmin(&events, &Violation::Wedged { attempts: 9 }, |subset| {
            subset.contains(&ev(5))
        });
        assert_eq!(min, vec![ev(5)]);
    }

    #[test]
    fn keeps_an_interacting_pair() {
        let events: Vec<ChaosEvent> = (0..8).map(ev).collect();
        let min = ddmin(&events, &Violation::Wedged { attempts: 9 }, |subset| {
            subset.contains(&ev(2)) && subset.contains(&ev(6))
        });
        assert_eq!(min.len(), 2);
        assert!(min.contains(&ev(2)) && min.contains(&ev(6)));
    }

    #[test]
    fn single_event_schedules_are_already_minimal() {
        let events = vec![ev(3)];
        let min = ddmin(&events, &Violation::Wedged { attempts: 1 }, |_| true);
        assert_eq!(min, events);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure needs at least 3 of the 4 "load" events: the result
        // must be a 3-subset from which nothing can be dropped.
        let events: Vec<ChaosEvent> = (0..6).map(ev).collect();
        let min = ddmin(&events, &Violation::Wedged { attempts: 9 }, |subset| {
            subset.iter().filter(|e| matches!(e, ChaosEvent::CrashAt { point } if *point < 4)).count() >= 3
        });
        assert_eq!(min.len(), 3);
        for i in 0..min.len() {
            let mut without: Vec<ChaosEvent> = min.clone();
            without.remove(i);
            let still = without
                .iter()
                .filter(|e| matches!(e, ChaosEvent::CrashAt { point } if *point < 4))
                .count()
                >= 3;
            assert!(!still, "dropping event {i} should break the failure");
        }
    }
}
