//! Deterministic replay artifacts (`chaos-repro-*.json`).
//!
//! An artifact records everything a trial's outcome depended on: the
//! target, the engine parameters, whether the planted bug was armed,
//! the violation's code, and the exact (minimized) event list.
//! Because [`crate::run_trial`] is a pure function of those inputs,
//! `srm chaos --replay FILE` re-executes the failure identically — on
//! any machine, any number of times.
//!
//! The JSON is hand-rolled (this workspace's `serde` is an offline
//! stub): a flat object with one `events` array of flat objects, and
//! a recursive-descent reader that accepts exactly the subset the
//! writer emits (strings, unsigned integers, booleans, arrays,
//! objects).  Unknown keys are rejected loudly rather than skipped —
//! an artifact that doesn't round-trip is not a reproducer.

use crate::schedule::ChaosEvent;
use crate::{CampaignConfig, ChaosError, Target};
use pdisk::FaultOp;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Artifact format version; bumped on incompatible schema changes.
pub const VERSION: u64 = 1;

/// One reproducer: the full input of a single failing trial.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproArtifact {
    /// Schema version ([`VERSION`]).
    pub version: u64,
    /// Target the trial ran against.
    pub target: Target,
    /// Campaign seed (for provenance; replay does not re-draw).
    pub seed: u64,
    /// Trial index within the campaign.
    pub trial: u32,
    /// Records sorted.
    pub records: u64,
    /// Disks per machine.
    pub d: usize,
    /// Block size, records.
    pub b: usize,
    /// Memory, records.
    pub m: usize,
    /// Pipelined engine?
    pub pipeline: bool,
    /// Forecast read-ahead depth.
    pub read_ahead: usize,
    /// Sorter placement seed.
    pub sort_seed: u64,
    /// Shards (dist target).
    pub shards: u32,
    /// Planted retry-classification bug armed?
    pub plant_bug: bool,
    /// Jobs per server trial.
    pub server_jobs: u32,
    /// The violation's stable code (`digest-mismatch`, `wedged`, ...).
    pub violation: String,
    /// The minimized failing schedule.
    pub events: Vec<ChaosEvent>,
}

impl ReproArtifact {
    /// Capture a failing trial from a running campaign.
    pub fn from_campaign(
        cfg: &CampaignConfig,
        trial: u32,
        violation: &crate::Violation,
        events: &[ChaosEvent],
    ) -> ReproArtifact {
        ReproArtifact {
            version: VERSION,
            target: cfg.target,
            seed: cfg.seed,
            trial,
            records: cfg.records,
            d: cfg.d,
            b: cfg.b,
            m: cfg.m,
            pipeline: cfg.pipeline,
            read_ahead: cfg.read_ahead,
            sort_seed: cfg.sort_seed,
            shards: cfg.shards,
            plant_bug: cfg.plant_bug,
            server_jobs: cfg.server_jobs,
            violation: violation.code().to_string(),
            events: events.to_vec(),
        }
    }

    /// Rebuild the campaign configuration a replay needs.
    pub fn campaign_config(
        &self,
        scratch: &Path,
        server_bin: Option<PathBuf>,
    ) -> Result<CampaignConfig, ChaosError> {
        if self.version != VERSION {
            return Err(ChaosError::BadArtifact(format!(
                "artifact version {} (this build replays version {VERSION})",
                self.version
            )));
        }
        if self.target == Target::Server && server_bin.is_none() {
            return Err(ChaosError::BadArtifact(
                "server-target artifact needs the srm binary to spawn".into(),
            ));
        }
        let mut cfg = CampaignConfig::new(self.target, self.seed, scratch);
        cfg.trials = 1;
        cfg.records = self.records;
        cfg.d = self.d;
        cfg.b = self.b;
        cfg.m = self.m;
        cfg.pipeline = self.pipeline;
        cfg.read_ahead = self.read_ahead;
        cfg.sort_seed = self.sort_seed;
        cfg.shards = self.shards;
        cfg.plant_bug = self.plant_bug;
        cfg.server_jobs = self.server_jobs;
        cfg.server_bin = server_bin;
        cfg.minimize = false;
        Ok(cfg)
    }

    /// Serialize to the artifact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::from("{\n");
        let mut field = |k: &str, v: String| {
            out.push_str(&format!("  \"{k}\": {v},\n"));
        };
        field("version", self.version.to_string());
        field("target", format!("\"{}\"", self.target.slug()));
        field("seed", self.seed.to_string());
        field("trial", self.trial.to_string());
        field("records", self.records.to_string());
        field("d", self.d.to_string());
        field("b", self.b.to_string());
        field("m", self.m.to_string());
        field("pipeline", self.pipeline.to_string());
        field("read_ahead", self.read_ahead.to_string());
        field("sort_seed", self.sort_seed.to_string());
        field("shards", self.shards.to_string());
        field("plant_bug", self.plant_bug.to_string());
        field("server_jobs", self.server_jobs.to_string());
        field("violation", format!("\"{}\"", self.violation));
        let events: Vec<String> = self.events.iter().map(encode_event).collect();
        out.push_str(&format!("  \"events\": [{}]\n", events.join(", ")));
        out.push_str("}\n");
        out
    }

    /// Parse an artifact.
    pub fn decode(text: &str) -> Result<ReproArtifact, ChaosError> {
        let value = Json::parse(text)?;
        let obj = value.object("artifact")?;
        let target_slug = get(obj, "target")?.string("target")?;
        let target = Target::from_slug(&target_slug)
            .ok_or_else(|| ChaosError::Parse(format!("unknown target `{target_slug}`")))?;
        let events = get(obj, "events")?
            .array("events")?
            .iter()
            .map(decode_event)
            .collect::<Result<Vec<ChaosEvent>, ChaosError>>()?;
        Ok(ReproArtifact {
            version: get(obj, "version")?.number("version")?,
            target,
            seed: get(obj, "seed")?.number("seed")?,
            trial: get(obj, "trial")?.number("trial")? as u32,
            records: get(obj, "records")?.number("records")?,
            d: get(obj, "d")?.number("d")? as usize,
            b: get(obj, "b")?.number("b")? as usize,
            m: get(obj, "m")?.number("m")? as usize,
            pipeline: get(obj, "pipeline")?.boolean("pipeline")?,
            read_ahead: get(obj, "read_ahead")?.number("read_ahead")? as usize,
            sort_seed: get(obj, "sort_seed")?.number("sort_seed")?,
            shards: get(obj, "shards")?.number("shards")? as u32,
            plant_bug: get(obj, "plant_bug")?.boolean("plant_bug")?,
            server_jobs: get(obj, "server_jobs")?.number("server_jobs")? as u32,
            violation: get(obj, "violation")?.string("violation")?,
            events,
        })
    }

    /// Read and parse an artifact file.
    pub fn load(path: &Path) -> Result<ReproArtifact, ChaosError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ChaosError::Io(format!("read {}: {e}", path.display())))?;
        ReproArtifact::decode(&text)
    }
}

fn op_slug(op: FaultOp) -> &'static str {
    match op {
        FaultOp::Read => "read",
        FaultOp::Write => "write",
        FaultOp::Alloc => "alloc",
        FaultOp::Sync => "sync",
    }
}

fn op_from_slug(s: &str) -> Result<FaultOp, ChaosError> {
    match s {
        "read" => Ok(FaultOp::Read),
        "write" => Ok(FaultOp::Write),
        "alloc" => Ok(FaultOp::Alloc),
        "sync" => Ok(FaultOp::Sync),
        other => Err(ChaosError::Parse(format!("unknown fault op `{other}`"))),
    }
}

fn encode_event(ev: &ChaosEvent) -> String {
    let kind = ev.kind();
    match ev {
        ChaosEvent::Transient { op, ordinal } => format!(
            "{{\"kind\": \"{kind}\", \"op\": \"{}\", \"ordinal\": {ordinal}}}",
            op_slug(*op)
        ),
        ChaosEvent::CorruptRead { ordinal }
        | ChaosEvent::DiskFull { ordinal }
        | ChaosEvent::SyncFail { ordinal } => {
            format!("{{\"kind\": \"{kind}\", \"ordinal\": {ordinal}}}")
        }
        ChaosEvent::CrashAt { point } => format!("{{\"kind\": \"{kind}\", \"point\": {point}}}"),
        ChaosEvent::KillDisk { disk, pass } => {
            format!("{{\"kind\": \"{kind}\", \"disk\": {disk}, \"pass\": {pass}}}")
        }
        ChaosEvent::Interrupt { pass } => format!("{{\"kind\": \"{kind}\", \"pass\": {pass}}}"),
        ChaosEvent::NetDrop { per_mille } | ChaosEvent::NetDup { per_mille } => {
            format!("{{\"kind\": \"{kind}\", \"per_mille\": {per_mille}}}")
        }
        ChaosEvent::NetDelay {
            per_mille,
            max_ticks,
        } => format!(
            "{{\"kind\": \"{kind}\", \"per_mille\": {per_mille}, \"max_ticks\": {max_ticks}}}"
        ),
        ChaosEvent::Partition { node, from, until } => format!(
            "{{\"kind\": \"{kind}\", \"node\": {node}, \"from\": {from}, \"until\": {until}}}"
        ),
        ChaosEvent::KillNode { shard, pass } => {
            format!("{{\"kind\": \"{kind}\", \"shard\": {shard}, \"pass\": {pass}}}")
        }
        ChaosEvent::IoDelayUs { micros } => {
            format!("{{\"kind\": \"{kind}\", \"micros\": {micros}}}")
        }
        ChaosEvent::KillServer { after_submit } => {
            format!("{{\"kind\": \"{kind}\", \"after_submit\": {after_submit}}}")
        }
        ChaosEvent::StoreFull { after_writes } => {
            format!("{{\"kind\": \"{kind}\", \"after_writes\": {after_writes}}}")
        }
    }
}

fn decode_event(v: &Json) -> Result<ChaosEvent, ChaosError> {
    let obj = v.object("event")?;
    let kind = get(obj, "kind")?.string("kind")?;
    let num = |k: &str| -> Result<u64, ChaosError> { get(obj, k)?.number(k) };
    Ok(match kind.as_str() {
        "transient" => ChaosEvent::Transient {
            op: op_from_slug(&get(obj, "op")?.string("op")?)?,
            ordinal: num("ordinal")?,
        },
        "corrupt-read" => ChaosEvent::CorruptRead {
            ordinal: num("ordinal")?,
        },
        "disk-full" => ChaosEvent::DiskFull {
            ordinal: num("ordinal")?,
        },
        "sync-fail" => ChaosEvent::SyncFail {
            ordinal: num("ordinal")?,
        },
        "crash-at" => ChaosEvent::CrashAt {
            point: num("point")?,
        },
        "kill-disk" => ChaosEvent::KillDisk {
            disk: num("disk")? as u32,
            pass: num("pass")?,
        },
        "interrupt" => ChaosEvent::Interrupt { pass: num("pass")? },
        "net-drop" => ChaosEvent::NetDrop {
            per_mille: num("per_mille")? as u32,
        },
        "net-dup" => ChaosEvent::NetDup {
            per_mille: num("per_mille")? as u32,
        },
        "net-delay" => ChaosEvent::NetDelay {
            per_mille: num("per_mille")? as u32,
            max_ticks: num("max_ticks")?,
        },
        "partition" => ChaosEvent::Partition {
            node: num("node")? as u32,
            from: num("from")?,
            until: num("until")?,
        },
        "kill-node" => ChaosEvent::KillNode {
            shard: num("shard")? as u32,
            pass: num("pass")?,
        },
        "io-delay" => ChaosEvent::IoDelayUs {
            micros: num("micros")?,
        },
        "kill-server" => ChaosEvent::KillServer {
            after_submit: num("after_submit")? as u32,
        },
        "store-full" => ChaosEvent::StoreFull {
            after_writes: num("after_writes")?,
        },
        other => return Err(ChaosError::Parse(format!("unknown event kind `{other}`"))),
    })
}

/// The JSON subset the artifact format uses.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Number(u64),
    Bool(bool),
    Str(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, ChaosError> {
    obj.get(key)
        .ok_or_else(|| ChaosError::Parse(format!("missing key `{key}`")))
}

impl Json {
    fn object(&self, what: &str) -> Result<&BTreeMap<String, Json>, ChaosError> {
        match self {
            Json::Object(m) => Ok(m),
            _ => Err(ChaosError::Parse(format!("{what}: expected an object"))),
        }
    }

    fn array(&self, what: &str) -> Result<&[Json], ChaosError> {
        match self {
            Json::Array(v) => Ok(v),
            _ => Err(ChaosError::Parse(format!("{what}: expected an array"))),
        }
    }

    fn number(&self, what: &str) -> Result<u64, ChaosError> {
        match self {
            Json::Number(n) => Ok(*n),
            _ => Err(ChaosError::Parse(format!("{what}: expected a number"))),
        }
    }

    fn boolean(&self, what: &str) -> Result<bool, ChaosError> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(ChaosError::Parse(format!("{what}: expected a boolean"))),
        }
    }

    fn string(&self, what: &str) -> Result<String, ChaosError> {
        match self {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(ChaosError::Parse(format!("{what}: expected a string"))),
        }
    }

    fn parse(text: &str) -> Result<Json, ChaosError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ChaosError::Parse(format!(
                "trailing garbage at byte {pos}"
            )));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ChaosError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ChaosError::Parse(format!(
            "expected `{}` at byte {pos}",
            c as char
        )))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ChaosError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') | Some(b'f') => parse_bool(b, pos),
        Some(c) if c.is_ascii_digit() => parse_number(b, pos),
        _ => Err(ChaosError::Parse(format!("unexpected input at byte {pos}"))),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, ChaosError> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(ChaosError::Parse(format!("expected `,` or `}}` at byte {pos}"))),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, ChaosError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(ChaosError::Parse(format!("expected `,` or `]` at byte {pos}"))),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ChaosError> {
    expect(b, pos, b'"')?;
    let start = *pos;
    while *pos < b.len() && b[*pos] != b'"' {
        if b[*pos] == b'\\' {
            return Err(ChaosError::Parse(format!(
                "escape sequences are not part of the artifact format (byte {pos})"
            )));
        }
        *pos += 1;
    }
    if *pos >= b.len() {
        return Err(ChaosError::Parse("unterminated string".into()));
    }
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|_| ChaosError::Parse("non-UTF-8 string".into()))?
        .to_string();
    *pos += 1;
    Ok(s)
}

fn parse_bool(b: &[u8], pos: &mut usize) -> Result<Json, ChaosError> {
    if b[*pos..].starts_with(b"true") {
        *pos += 4;
        Ok(Json::Bool(true))
    } else if b[*pos..].starts_with(b"false") {
        *pos += 5;
        Ok(Json::Bool(false))
    } else {
        Err(ChaosError::Parse(format!("bad literal at byte {pos}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, ChaosError> {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    text.parse::<u64>()
        .map(Json::Number)
        .map_err(|e| ChaosError::Parse(format!("bad number `{text}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn sample() -> ReproArtifact {
        let cfg = CampaignConfig::new(Target::Local, 7, "/tmp/x");
        let events = vec![
            ChaosEvent::Transient {
                op: FaultOp::Write,
                ordinal: 12,
            },
            ChaosEvent::DiskFull { ordinal: 30 },
            ChaosEvent::SyncFail { ordinal: 2 },
            ChaosEvent::CrashAt { point: 99 },
            ChaosEvent::KillDisk { disk: 1, pass: 1 },
            ChaosEvent::Interrupt { pass: 2 },
            ChaosEvent::NetDelay {
                per_mille: 80,
                max_ticks: 2,
            },
            ChaosEvent::Partition {
                node: 1,
                from: 5,
                until: 11,
            },
            ChaosEvent::KillServer { after_submit: 2 },
            ChaosEvent::StoreFull { after_writes: 1 },
        ];
        ReproArtifact::from_campaign(&cfg, 3, &Violation::Wedged { attempts: 6 }, &events)
    }

    #[test]
    fn round_trips_every_event_kind() {
        let artifact = sample();
        let decoded = ReproArtifact::decode(&artifact.encode()).expect("round trip");
        assert_eq!(decoded, artifact);
    }

    #[test]
    fn rejects_unknown_kinds_and_truncation() {
        let artifact = sample();
        let json = artifact.encode();
        let bad = json.replace("\"disk-full\"", "\"disk-melted\"");
        assert!(matches!(
            ReproArtifact::decode(&bad),
            Err(ChaosError::Parse(_))
        ));
        let truncated = &json[..json.len() / 2];
        assert!(ReproArtifact::decode(truncated).is_err());
    }

    #[test]
    fn version_gate_is_enforced() {
        let mut artifact = sample();
        artifact.version = 999;
        let err = artifact
            .campaign_config(Path::new("/tmp/x"), None)
            .unwrap_err();
        assert!(matches!(err, ChaosError::BadArtifact(_)));
    }

    #[test]
    fn replay_config_mirrors_the_artifact() {
        let artifact = sample();
        let cfg = artifact
            .campaign_config(Path::new("/tmp/replay"), None)
            .expect("config");
        assert_eq!(cfg.target, Target::Local);
        assert_eq!(cfg.records, artifact.records);
        assert_eq!(cfg.sort_seed, artifact.sort_seed);
        assert!(!cfg.minimize);
        assert_eq!(cfg.trials, 1);
    }
}
