//! The local chaos target: a checkpointed `srm` sort behind the full
//! protection stack, driven through composed fault schedules with a
//! crash/repair/recover loop around it.
//!
//! The stack mirrors the CLI's protected stack with the chaos layers
//! added:
//!
//! ```text
//! Tracing( Crashing( Retrying( Misclassify( Parity( Faulty( Mem ))))))
//! ```
//!
//! `Misclassify` is normally the identity; with
//! [`crate::CampaignConfig::plant_bug`] it deliberately relabels
//! ENOSPC as transient — the retry-classification bug this harness
//! exists to catch, kept as a fixture so the campaign, minimizer, and
//! replay path are themselves regression-tested end to end.
//!
//! A trial stages the input once, then loops incarnations: each builds
//! fresh wrappers over the surviving backend (exactly what a process
//! restart discards and keeps), re-marks sticky state (dead disks,
//! full disks), arms at most one crash point, and re-runs
//! `sort_checkpointed` against the same manifest.  Typed outcomes the
//! schedule explains (crash, interrupt, ENOSPC, sync failure,
//! exhausted retries) trigger the scripted repair for that fault and
//! another incarnation; anything else is an oracle violation.  The
//! completing incarnation's trace goes through the model checker, the
//! output must equal the failure-free result, and the trial directory
//! must be empty after cleanup.

use crate::schedule::{ChaosEvent, Envelope};
use crate::{CampaignConfig, ChaosError, TrialOutcome, Violation};
use pdisk::trace::TracingDiskArray;
use pdisk::{
    Block, BlockAddr, CrashClock, CrashingDiskArray, DiskArray, DiskId, FaultKind, FaultModel,
    FaultOp, Geometry, InterruptFlag, IoStats, MemDiskArray, ParityDiskArray, PdiskError,
    Record, RetryPolicy, RetryingDiskArray, ScriptedFault, StripedRun, U64Record,
};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SortManifest, SrmError};
use std::path::Path;
use std::time::Duration;

/// A wrapper that (when armed) misclassifies ENOSPC write/alloc
/// failures as transient before the retry layer sees them — the
/// planted retry-classification bug.  Disarmed it is a transparent
/// pass-through, so the one concrete stack type serves both modes.
///
/// With the bug armed, a full disk turns into an infinite "transient"
/// that the retry layer dutifully spins on until its budget exhausts;
/// because the trial runner never learns the disk is full, it never
/// frees space, and recovery wedges — which the campaign's oracle
/// reports and the minimizer shrinks to the single `disk-full` event.
#[derive(Debug)]
pub struct MisclassifyingDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    armed: bool,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record, A: DiskArray<R>> MisclassifyingDiskArray<R, A> {
    /// Wrap `inner`; `armed` plants the bug.
    pub fn new(inner: A, armed: bool) -> Self {
        MisclassifyingDiskArray {
            inner,
            armed,
            _marker: std::marker::PhantomData,
        }
    }

    /// Unwrap.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// Mutable access to the wrapped array.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    fn remap(&self, e: PdiskError) -> PdiskError {
        match e {
            PdiskError::Fault {
                kind: FaultKind::NoSpace,
                op,
                disk,
            } if self.armed && op != FaultOp::Sync => PdiskError::Fault {
                kind: FaultKind::Transient,
                op,
                disk,
            },
            other => other,
        }
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for MisclassifyingDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> pdisk::Result<Vec<Block<R>>> {
        self.inner.read(addrs)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> pdisk::Result<()> {
        self.inner.write(writes).map_err(|e| self.remap(e))
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> pdisk::Result<u64> {
        self.inner
            .alloc_contiguous(disk, count)
            .map_err(|e| self.remap(e))
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn redundancy(&self) -> Option<pdisk::RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: pdisk::TraceSink) {
        self.inner.install_trace(sink);
    }

    fn trace_sink(&self) -> Option<&pdisk::TraceSink> {
        self.inner.trace_sink()
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> pdisk::Result<pdisk::ReadTicket<R>> {
        self.inner.submit_read(addrs)
    }

    fn complete_read(&mut self, ticket: pdisk::ReadTicket<R>) -> pdisk::Result<Vec<Block<R>>> {
        self.inner.complete_read(ticket)
    }

    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> pdisk::Result<pdisk::WriteTicket> {
        self.inner.submit_write(writes).map_err(|e| self.remap(e))
    }

    fn complete_write(&mut self, ticket: pdisk::WriteTicket) -> pdisk::Result<()> {
        self.inner.complete_write(ticket).map_err(|e| self.remap(e))
    }

    fn prefetch(&mut self, addrs: &[BlockAddr]) {
        self.inner.prefetch(addrs);
    }

    fn sync(&mut self) -> pdisk::Result<()> {
        // Sync failures pass through unmapped: fsyncgate semantics must
        // hold even with the planted bug armed.
        self.inner.sync()
    }

    fn scrub_block(&mut self, addr: BlockAddr) -> pdisk::Result<pdisk::ScrubOutcome> {
        self.inner.scrub_block(addr)
    }

    fn install_pool(&mut self, pool: pdisk::BufferPool<R>) {
        self.inner.install_pool(pool);
    }

    fn buffer_pool(&self) -> Option<&pdisk::BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

type Base = FaultyDiskArrayT;
type FaultyDiskArrayT = pdisk::FaultyDiskArray<U64Record, MemDiskArray<U64Record>>;
type Prot = MisclassifyingDiskArray<U64Record, ParityDiskArray<U64Record, Base>>;
type Stack =
    TracingDiskArray<U64Record, CrashingDiskArray<U64Record, RetryingDiskArray<U64Record, Prot>>>;

fn perr(e: PdiskError) -> ChaosError {
    ChaosError::Io(format!("chaos world setup failed: {e}"))
}

fn build_stack(
    mem: MemDiskArray<U64Record>,
    model: FaultModel,
    clock: &CrashClock,
    plant: bool,
    pstore: &Path,
    dead: &[DiskId],
) -> Result<Stack, ChaosError> {
    let fa = pdisk::FaultyDiskArray::new(mem, model);
    let mut pa = ParityDiskArray::new(fa)
        .map_err(perr)?
        .with_store(pstore)
        .map_err(perr)?;
    for d in dead {
        pa.fail_disk(*d).map_err(perr)?;
    }
    pa.set_crash_clock(clock.clone());
    let mc = MisclassifyingDiskArray::new(pa, plant);
    // A generous budget so scripted transient storms are absorbed, but
    // finite so a misclassified permanent condition exhausts visibly.
    let ra = RetryingDiskArray::new(mc, RetryPolicy::new(6, Duration::from_millis(1)));
    let ca = CrashingDiskArray::new(ra, clock.clone());
    Ok(TracingDiskArray::new(ca))
}

struct Teardown {
    mem: MemDiskArray<U64Record>,
    dead: Vec<DiskId>,
    full: Vec<DiskId>,
    /// (reads, writes, allocs, syncs) the incarnation issued.
    ops: (u64, u64, u64, u64),
}

fn teardown(stack: Stack) -> Teardown {
    let pa = stack.into_inner().into_inner().into_inner().into_inner();
    let dead = pa.dead_disks().collect();
    let fa = pa.into_inner();
    let full = fa.model().full_disks().collect();
    let ops = fa.observed_ops();
    Teardown {
        mem: fa.into_inner(),
        dead,
        full,
        ops,
    }
}

/// Cumulative per-op issue counts across incarnations, used to decide
/// which scripted events have already fired.  `FaultModel::check`
/// consumes a scripted event exactly when the op counter passes its
/// ordinal, so "counter advanced past the ordinal" is precise.
#[derive(Default, Clone, Copy)]
struct Fired {
    reads: u64,
    writes: u64,
    allocs: u64,
    syncs: u64,
}

impl Fired {
    fn absorb(&mut self, ops: (u64, u64, u64, u64)) {
        // Ordinals are per-incarnation, so "fired" means *some*
        // incarnation's counter passed the ordinal; the high-water mark
        // over incarnations captures that.
        self.reads = self.reads.max(ops.0);
        self.writes = self.writes.max(ops.1);
        self.allocs = self.allocs.max(ops.2);
        self.syncs = self.syncs.max(ops.3);
    }

    fn covers(&self, ev: &ChaosEvent) -> bool {
        match ev {
            ChaosEvent::Transient { op, ordinal } => match op {
                FaultOp::Read => *ordinal < self.reads,
                FaultOp::Write => *ordinal < self.writes,
                FaultOp::Alloc => *ordinal < self.allocs,
                FaultOp::Sync => *ordinal < self.syncs,
            },
            ChaosEvent::CorruptRead { ordinal } => *ordinal < self.reads,
            ChaosEvent::DiskFull { ordinal } => *ordinal < self.writes,
            ChaosEvent::SyncFail { ordinal } => *ordinal < self.syncs,
            _ => false,
        }
    }
}

/// Build the fault model for one incarnation: every scripted event
/// from the schedule that has not yet fired, re-based on the fresh
/// incarnation's op counters.
fn incarnation_model(events: &[ChaosEvent], fired: &Fired) -> FaultModel {
    let mut model = FaultModel::none();
    for ev in events {
        if fired.covers(ev) {
            continue;
        }
        model = match ev {
            // A transient sync is exactly SyncFail, and the generator
            // never draws FaultOp::Sync here; skip it if an artifact does.
            ChaosEvent::Transient {
                op: FaultOp::Sync, ..
            } => continue,
            ChaosEvent::Transient { op, ordinal } => model.with_scripted(ScriptedFault {
                op: *op,
                ordinal: *ordinal,
                kind: FaultKind::Transient,
            }),
            ChaosEvent::CorruptRead { ordinal } => model.corrupt_at(*ordinal),
            ChaosEvent::DiskFull { ordinal } => model.fill_at(FaultOp::Write, *ordinal),
            ChaosEvent::SyncFail { ordinal } => model.fail_sync_at(*ordinal),
            _ => model,
        };
    }
    model
}

/// Fault-free dry run: learn the ordinal envelope for the generator.
pub fn dry_run(cfg: &CampaignConfig) -> Result<Envelope, ChaosError> {
    let dir = cfg.scratch.join("dry-run");
    std::fs::create_dir_all(&dir)
        .map_err(|e| ChaosError::Io(format!("create {}: {e}", dir.display())))?;
    let result = dry_run_in(cfg, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn dry_run_in(cfg: &CampaignConfig, dir: &Path) -> Result<Envelope, ChaosError> {
    let spec = cfg.job_spec();
    let geom = spec
        .geometry()
        .map_err(|e| ChaosError::Config(e.to_string()))?;
    let data = spec.input_records();
    let pstore = dir.join("parity");
    let manifest = dir.join("manifest");

    let (mem, input) = stage(geom, &data, &pstore)?;
    let clock = CrashClock::counting();
    let mut stack = build_stack(mem, FaultModel::none(), &clock, false, &pstore, &[])?;
    let sorter = spec.srm_sorter().with_crash_clock(clock.clone());
    let (_, report) = sorter
        .sort_checkpointed(&mut stack, &input, &manifest)
        .map_err(|e| ChaosError::Io(format!("dry run failed: {e}")))?;
    let t = teardown(stack);
    Ok(Envelope {
        reads: t.ops.0,
        writes: t.ops.1,
        allocs: t.ops.2,
        syncs: t.ops.3,
        points: clock.points(),
        passes: report.merge_passes,
        disks: geom.d as u32,
    })
}

/// Stage the unsorted input through the parity layer (so the sidecar
/// covers it) and hand back the bare backend plus the input's run
/// descriptor.  The staging wrappers are throwaways: fault ordinals
/// count from the start of each *sort* incarnation, not from staging.
fn stage(
    geom: Geometry,
    data: &[U64Record],
    pstore: &Path,
) -> Result<(MemDiskArray<U64Record>, StripedRun), ChaosError> {
    let mem: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let mut pa = ParityDiskArray::new(mem)
        .map_err(perr)?
        .with_store(pstore)
        .map_err(perr)?;
    let input = write_unsorted_input(&mut pa, data)
        .map_err(|e| ChaosError::Io(format!("staging input failed: {e}")))?;
    Ok((pa.into_inner(), input))
}

/// Run one composed-fault trial.  See the module docs for the loop's
/// shape; the returned outcome carries the oracle verdict.
pub fn run_trial(
    cfg: &CampaignConfig,
    events: &[ChaosEvent],
    dir: &Path,
) -> Result<TrialOutcome, ChaosError> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| ChaosError::Io(format!("create {}: {e}", dir.display())))?;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_trial_in(cfg, events, dir)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Ok(TrialOutcome {
                violation: Some(Violation::Panicked(msg)),
                ..TrialOutcome::default()
            })
        }
    }
}

fn run_trial_in(
    cfg: &CampaignConfig,
    events: &[ChaosEvent],
    dir: &Path,
) -> Result<TrialOutcome, ChaosError> {
    let spec = cfg.job_spec();
    let geom = spec
        .geometry()
        .map_err(|e| ChaosError::Config(e.to_string()))?;
    let data = spec.input_records();
    let mut expected: Vec<u64> = data.iter().map(|r| r.0).collect();
    expected.sort_unstable();
    let pstore = dir.join("parity");
    let manifest = dir.join("manifest");

    // Observer-driven events get one fired-flag each; crash points are
    // armed one per incarnation in schedule order.
    let mut kill_fired = vec![false; events.len()];
    let mut interrupt_fired = vec![false; events.len()];
    let mut crash_armed = vec![false; events.len()];

    let mut fired = Fired::default();
    let (staged, input) = stage(geom, &data, &pstore)?;
    let mut mem = Some(staged);
    let mut dead: Vec<DiskId> = Vec::new();
    let mut carry_full: Vec<DiskId> = Vec::new();
    let mut outcome = TrialOutcome::default();
    // Every scheduled event fires (or is repaired) at most once, so a
    // healthy trial needs at most one incarnation per event plus the
    // completing one; the slack absorbs compounded repairs.
    let max_attempts = events.len() as u32 + 5;

    loop {
        outcome.attempts += 1;
        if outcome.attempts > max_attempts {
            outcome.violation = Some(Violation::Wedged {
                attempts: outcome.attempts - 1,
            });
            return Ok(outcome);
        }

        let mut model = incarnation_model(events, &fired);
        for d in &carry_full {
            model.fill_disk(*d);
        }
        let clock = match events.iter().enumerate().find_map(|(i, e)| match e {
            ChaosEvent::CrashAt { point } if !crash_armed[i] => Some((i, *point)),
            _ => None,
        }) {
            Some((i, point)) => {
                crash_armed[i] = true;
                CrashClock::crash_at(point)
            }
            None => CrashClock::counting(),
        };

        let backend = mem.take().expect("backend always restored between incarnations");
        let mut stack = build_stack(backend, model, &clock, cfg.plant_bug, &pstore, &dead)?;
        if SortManifest::load_latest(&manifest)
            .map_err(|e| ChaosError::Io(format!("manifest unreadable: {e}")))?
            .is_some()
        {
            outcome.resumed += 1;
        }

        let flag = InterruptFlag::new();
        let sorter = spec
            .srm_sorter()
            .with_crash_clock(clock.clone())
            .with_interrupt(flag.clone());
        let result = {
            let flag = &flag;
            let kill_fired = &mut kill_fired;
            let interrupt_fired = &mut interrupt_fired;
            sorter.sort_observed(&mut stack, &input, Some(&manifest), move |pass, a| {
                for (i, ev) in events.iter().enumerate() {
                    match ev {
                        ChaosEvent::KillDisk { disk, pass: at } if !kill_fired[i] && pass == *at => {
                            kill_fired[i] = true;
                            // Tracing -> Crashing -> Retrying -> Misclassify -> Parity.
                            a.inner_mut()
                                .inner_mut()
                                .inner_mut()
                                .inner_mut()
                                .fail_disk(DiskId(*disk))?;
                        }
                        ChaosEvent::Interrupt { pass: at }
                            if !interrupt_fired[i] && pass == *at =>
                        {
                            interrupt_fired[i] = true;
                            flag.trigger();
                        }
                        _ => {}
                    }
                }
                Ok(())
            })
        };

        match result {
            Ok((run, _report)) => {
                let keys = read_run(&mut stack, &run)
                    .map_err(|e| ChaosError::Io(format!("cannot read sorted output: {e}")))?
                    .iter()
                    .map(|r| r.0)
                    .collect::<Vec<u64>>();
                let trace = stack.take_trace();
                if let Err(v) = modelcheck::check_trace(geom, &trace) {
                    outcome.violation = Some(Violation::ModelViolation(v.to_string()));
                    return Ok(outcome);
                }
                if keys != expected {
                    outcome.violation = Some(Violation::DigestMismatch {
                        got: srm_server::digest_keys(keys),
                        want: srm_server::digest_keys(expected),
                    });
                    return Ok(outcome);
                }
                drop(stack);
                outcome.violation = leaked_files(dir, &manifest, &pstore)?;
                return Ok(outcome);
            }
            Err(e) => {
                let t = teardown(stack);
                mem = Some(t.mem);
                dead = t.dead;
                fired.absorb(t.ops);
                match classify(&e) {
                    Repair::Reboot => {
                        carry_full = t.full;
                    }
                    Repair::FreeSpace => {
                        // The operator frees space: sticky full-disk
                        // state does not carry into the next run.
                        carry_full = Vec::new();
                    }
                    Repair::Resume => {
                        carry_full = t.full;
                    }
                    Repair::Unexpected => {
                        outcome.violation = Some(Violation::UnexpectedError(e.to_string()));
                        return Ok(outcome);
                    }
                }
            }
        }
    }
}

enum Repair {
    /// Process death at an armed boundary; rebuild and recover.
    Reboot,
    /// ENOSPC surfaced with its true type; free space, then rerun.
    FreeSpace,
    /// A typed, expected stop (interrupt, failed sync, exhausted
    /// retries); rerun without any state repair.
    Resume,
    /// Nothing in the schedule explains this error.
    Unexpected,
}

/// Map a sort failure to the scripted repair the schedule prescribes.
/// This classifier is deliberately strict: only outcomes the injected
/// events are *specified* to produce are expected, so any drift in the
/// error taxonomy (e.g. ENOSPC surfacing as a retry storm) turns into
/// an oracle violation instead of being absorbed.
fn classify(e: &SrmError) -> Repair {
    match e {
        SrmError::Disk(PdiskError::Crashed { .. }) => Repair::Reboot,
        SrmError::Interrupted => Repair::Resume,
        SrmError::Disk(PdiskError::Fault {
            kind: FaultKind::NoSpace,
            ..
        }) => Repair::FreeSpace,
        SrmError::Disk(PdiskError::Fault {
            op: FaultOp::Sync, ..
        }) => Repair::Resume,
        SrmError::Disk(PdiskError::RetriesExhausted { .. }) => Repair::Resume,
        _ => Repair::Unexpected,
    }
}

/// The leak oracle: after removing the journal and the parity sidecar,
/// the trial directory must be empty — anything left is a temp file or
/// stray generation some layer failed to clean up.
fn leaked_files(
    dir: &Path,
    manifest: &Path,
    pstore: &Path,
) -> Result<Option<Violation>, ChaosError> {
    SortManifest::remove(manifest)
        .map_err(|e| ChaosError::Io(format!("manifest cleanup failed: {e}")))?;
    let _ = std::fs::remove_file(pstore);
    let mut leaked = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| ChaosError::Io(format!("read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ChaosError::Io(e.to_string()))?;
        leaked.push(entry.file_name().to_string_lossy().into_owned());
    }
    if leaked.is_empty() {
        Ok(None)
    } else {
        leaked.sort();
        Ok(Some(Violation::LeakedFiles(leaked.join(", "))))
    }
}
