//! The DSM sorter: memory-load run formation plus striped merge passes.

use crate::checkpoint::DsmManifest;
use crate::logical::{
    alloc_stripe, complete_stripe_read, read_stripe, submit_stripe_read, submit_stripe_write,
    write_stripe, LogicalRun,
};
use pdisk::{DiskArray, InterruptFlag, IoStats, PdiskError, ReadTicket, Record, WriteTicket};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;

/// DSM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DsmConfig {
    /// Fraction of `M` sorted per formation run (the paper's convention is
    /// 1/2, matching SRM's default so comparisons share a formation pass).
    pub load_fraction: f64,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig { load_fraction: 0.5 }
    }
}

/// Accounting for a DSM sort.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DsmReport {
    /// Records sorted.
    pub records: u64,
    /// Merge order `R_DSM = (M/B − 2D)/2D`.
    pub merge_order: usize,
    /// Runs after formation.
    pub runs_formed: usize,
    /// Merge passes (excluding formation).
    pub merge_passes: u64,
    /// Backend I/O delta for the whole sort.
    pub io: IoStats,
}

/// Disk-striped mergesort.
///
/// # Examples
///
/// ```
/// use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
/// use pdisk::{Geometry, MemDiskArray, U64Record};
///
/// let geom = Geometry::new(2, 8, 512)?;
/// let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
/// let records: Vec<U64Record> = (0..1000).rev().map(U64Record).collect();
/// let input = write_unsorted_stripes(&mut disks, &records)?;
///
/// let (sorted, report) = DsmSorter::default().sort(&mut disks, &input)?;
/// assert_eq!(report.records, 1000);
/// let output = read_logical_run(&mut disks, &sorted)?;
/// assert!(output.windows(2).all(|w| w[0].0 <= w[1].0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DsmSorter {
    config: DsmConfig,
    /// Overlap disk I/O with merging via split-phase stripe reads and
    /// writes (double buffering).  Off the engine blocks on every
    /// stripe; either way the operation sequence, stats, and output are
    /// identical, so this lives outside [`DsmConfig`] and checkpoint
    /// manifests — a sort may even be resumed under the other engine.
    pipeline: bool,
    /// Cooperative stop request; polled at pass boundaries.  See
    /// [`DsmSorter::with_interrupt`].
    interrupt: Option<InterruptFlag>,
}

/// Pass-boundary callback threaded through `sort_inner`; see
/// [`DsmSorter::sort_observed`].
type PassObserver<'a, A> = &'a mut dyn FnMut(u64, &mut A) -> Result<(), DsmError>;

/// Errors are plain [`PdiskError`]s plus configuration strings.
#[derive(Debug)]
#[non_exhaustive]
pub enum DsmError {
    /// Disk layer failure.
    Disk(PdiskError),
    /// Unusable configuration.
    Config(String),
    /// A checkpoint manifest could not be read, written, or trusted.
    Checkpoint(String),
    /// The sort stopped at a pass boundary because its
    /// [`InterruptFlag`] was triggered.  If a manifest path was given,
    /// the boundary's checkpoint was journaled first, so a rerun
    /// resumes byte-identically.
    Interrupted,
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsmError::Disk(e) => write!(f, "disk error: {e}"),
            DsmError::Config(m) => write!(f, "configuration error: {m}"),
            DsmError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            DsmError::Interrupted => {
                write!(f, "sort interrupted at a pass boundary (checkpoint journaled)")
            }
        }
    }
}

impl std::error::Error for DsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsmError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdiskError> for DsmError {
    fn from(e: PdiskError) -> Self {
        DsmError::Disk(e)
    }
}

impl DsmSorter {
    /// Sorter with the given configuration.
    pub fn new(config: DsmConfig) -> Self {
        DsmSorter {
            config,
            pipeline: false,
            interrupt: None,
        }
    }

    /// Install a cooperative stop request (the *drain hook*), mirroring
    /// srm-core's `SrmSorter::with_interrupt`: when
    /// `flag` is triggered the sort stops at the next pass boundary,
    /// after that boundary's checkpoint (if a manifest path is in use)
    /// is durable, returning [`DsmError::Interrupted`].  With one run
    /// left there is no boundary, so the sort completes.
    pub fn with_interrupt(mut self, flag: InterruptFlag) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// `Err(Interrupted)` if a stop has been requested and merging work
    /// remains; called only after the boundary's snapshot is durable —
    /// which srmlint's interrupt pass enforces.
    #[srmlint::interrupt_observer]
    fn check_interrupt(&self, runs_left: usize) -> Result<(), DsmError> {
        match &self.interrupt {
            Some(flag) if flag.is_set() && runs_left > 1 => Err(DsmError::Interrupted),
            _ => Ok(()),
        }
    }

    /// Toggle the pipelined (read-ahead / write-behind) engine.
    pub fn with_pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Whether the pipelined engine is enabled.
    pub fn pipeline(&self) -> bool {
        self.pipeline
    }

    /// Sort a logical-striped input file; returns the sorted run and the
    /// accounting.
    pub fn sort<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &LogicalRun,
    ) -> Result<(LogicalRun, DsmReport), DsmError> {
        self.sort_inner(array, input, None, None)
    }

    /// Like [`DsmSorter::sort`], but checkpointing to `manifest` after
    /// formation and after each merge pass, and resuming from it when the
    /// file exists (geometry and record count are validated first).  The
    /// manifest is deleted on completion.  DSM is deterministic, so a
    /// resumed sort redoes only the interrupted pass and produces exactly
    /// the output an uninterrupted sort would.
    pub fn sort_checkpointed<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &LogicalRun,
        manifest: &Path,
    ) -> Result<(LogicalRun, DsmReport), DsmError> {
        self.sort_inner(array, input, Some(manifest), None)
    }

    /// Like [`DsmSorter::sort_checkpointed`] (pass `manifest: None` for an
    /// unsnapshotted sort), but calling `observer` after run formation
    /// (`pass` = 0) and after each merge pass completed by this call,
    /// before the snapshot is taken.  The observer may mutate the array —
    /// the CLI's `--kill-disk` drill injects a permanent disk failure
    /// here.  Pass boundaries completed before a resume are not replayed.
    pub fn sort_observed<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &LogicalRun,
        manifest: Option<&Path>,
        mut observer: impl FnMut(u64, &mut A) -> Result<(), DsmError>,
    ) -> Result<(LogicalRun, DsmReport), DsmError> {
        self.sort_inner(array, input, manifest, Some(&mut observer))
    }

    fn sort_inner<R: Record, A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &LogicalRun,
        manifest: Option<&Path>,
        mut observer: Option<PassObserver<'_, A>>,
    ) -> Result<(LogicalRun, DsmReport), DsmError> {
        let geom = array.geometry();
        if input.records == 0 {
            return Err(DsmError::Config("cannot sort an empty input".into()));
        }
        if !(self.config.load_fraction > 0.0 && self.config.load_fraction <= 1.0) {
            return Err(DsmError::Config(format!(
                "load fraction {} outside (0, 1]",
                self.config.load_fraction
            )));
        }
        let r_dsm = geom
            .dsm_merge_order()
            .map_err(|e| DsmError::Config(e.to_string()))?;
        let io_before = array.stats();

        // Recovery rule: newest valid manifest generation wins; a torn
        // current manifest falls back to its journaled predecessor.
        let resume = match manifest {
            Some(path) => DsmManifest::load_latest(path)?,
            None => None,
        };
        let (mut queue, mut pass, runs_formed) = match resume {
            Some(m) => {
                m.validate(geom, input.records)?;
                m.validate_redundancy(array.redundancy().as_ref())?;
                (m.runs, m.pass, m.runs_formed as usize)
            }
            None => {
                if let Some(sink) = array.trace_sink() {
                    // Run formation is pass 0; merge passes count from 1.
                    sink.begin_pass(0);
                }
                // Run formation: sort `load_fraction · M` records at a time.
                let capacity =
                    ((geom.m as f64 * self.config.load_fraction) as usize).max(geom.b * geom.d);
                let mut queue: Vec<LogicalRun> = Vec::new();
                let mut next_in = 0u64; // stripes of the input consumed
                let mut consumed = 0u64; // records consumed
                // Pipelined formation keeps one input stripe in flight —
                // it even spans load boundaries, so the next load's
                // first stripe is read while this load sorts and writes.
                let mut prefetch: Option<ReadTicket<R>> = None;
                while consumed < input.records {
                    let mut load: Vec<R> = Vec::with_capacity(capacity);
                    // Consume whole stripes to keep every input read
                    // full-width; when load_fraction·M is not
                    // stripe-aligned the load runs slightly over, never
                    // under.
                    while load.len() < capacity && consumed < input.records {
                        let n = input.records_in_stripe(next_in, geom.d, geom.b);
                        if self.pipeline {
                            let ticket = match prefetch.take() {
                                Some(t) => t,
                                None => submit_stripe_read(array, input.start_stripe + next_in, n)?,
                            };
                            if consumed + n < input.records {
                                let after = next_in + 1;
                                let n2 = input.records_in_stripe(after, geom.d, geom.b);
                                prefetch =
                                    Some(submit_stripe_read(array, input.start_stripe + after, n2)?);
                            }
                            load.extend(complete_stripe_read(array, ticket)?);
                        } else {
                            load.extend(read_stripe(array, input.start_stripe + next_in, n)?);
                        }
                        next_in += 1;
                        consumed += n;
                    }
                    load.sort_unstable_by_key(|r| r.key());
                    queue.push(write_run_inner(array, &load, self.pipeline)?);
                }
                let runs_formed = queue.len();
                if let Some(obs) = observer.as_deref_mut() {
                    obs(0, array)?;
                }
                if let Some(path) = manifest {
                    snapshot(path, input, runs_formed, 0, array, &queue)?;
                }
                (queue, 0, runs_formed)
            }
        };
        // Drain hook, boundary 0: the formation snapshot above (or the
        // resumed manifest already on disk) is durable.
        self.check_interrupt(queue.len())?;

        // Merge passes.
        while queue.len() > 1 {
            pass += 1;
            if let Some(sink) = array.trace_sink() {
                sink.begin_pass(pass);
            }
            let mut next: Vec<LogicalRun> = Vec::with_capacity(queue.len().div_ceil(r_dsm));
            for group in queue.chunks(r_dsm) {
                if group.len() == 1 {
                    next.push(group[0].clone());
                    continue;
                }
                next.push(merge_group(array, group, self.pipeline)?);
            }
            queue = next;
            if let Some(obs) = observer.as_deref_mut() {
                obs(pass, array)?;
            }
            if let Some(path) = manifest {
                if queue.len() > 1 {
                    snapshot(path, input, runs_formed, pass, array, &queue)?;
                }
            }
            // Drain hook: the boundary's snapshot is durable, so a rerun
            // resumes from exactly this pass.
            self.check_interrupt(queue.len())?;
        }
        let sorted = queue
            .pop()
            .ok_or_else(|| DsmError::Config("merge queue drained to empty".into()))?;
        debug_assert_eq!(sorted.records, input.records);
        if let Some(path) = manifest {
            DsmManifest::remove(path)?;
        }
        Ok((
            sorted,
            DsmReport {
                records: input.records,
                merge_order: r_dsm,
                runs_formed,
                merge_passes: pass,
                io: array.stats().since(&io_before),
            },
        ))
    }
}

#[srmlint::checkpoint]
fn snapshot<R: Record, A: DiskArray<R>>(
    path: &Path,
    input: &LogicalRun,
    runs_formed: usize,
    pass: u64,
    array: &mut A,
    queue: &[LogicalRun],
) -> Result<(), DsmError> {
    // Durability barrier: every block the manifest is about to reference
    // must be on stable storage before the manifest claims the pass
    // completed.
    array.sync()?;
    DsmManifest {
        geometry: array.geometry(),
        records: input.records,
        runs_formed: runs_formed as u64,
        pass,
        redundancy: array.redundancy(),
        generation: 0,
        runs: queue.to_vec(),
    }
    .save(path)
}

/// Write sorted records as a fresh logical run.
fn write_run<R: Record, A: DiskArray<R>>(
    array: &mut A,
    records: &[R],
) -> Result<LogicalRun, DsmError> {
    write_run_inner(array, records, false)
}

/// [`write_run`], optionally keeping one stripe write in flight so the
/// next stripe's submission overlaps the previous one's disk time.
fn write_run_inner<R: Record, A: DiskArray<R>>(
    array: &mut A,
    records: &[R],
    pipeline: bool,
) -> Result<LogicalRun, DsmError> {
    let geom = array.geometry();
    let per = LogicalRun::stripe_records(geom.d, geom.b) as usize;
    let mut start = None;
    let mut len = 0u64;
    let mut ticket: Option<WriteTicket> = None;
    for chunk in records.chunks(per) {
        let s = alloc_stripe(array)?;
        if start.is_none() {
            start = Some(s);
        }
        if pipeline {
            if let Some(t) = ticket.take() {
                array.complete_write(t)?;
            }
            ticket = Some(submit_stripe_write(array, s, chunk)?);
        } else {
            write_stripe(array, s, chunk)?;
        }
        len += 1;
    }
    if let Some(t) = ticket.take() {
        array.complete_write(t)?;
    }
    let start_stripe = start.ok_or_else(|| DsmError::Config("cannot write an empty run".into()))?;
    Ok(LogicalRun {
        start_stripe,
        len_stripes: len,
        records: records.len() as u64,
    })
}

/// Merge one group of runs with a heap over the runs' current records,
/// reading each run one stripe at a time and writing the output one
/// stripe at a time — every operation full-width.
///
/// With `pipeline` on, each cursor keeps its *next* stripe in flight
/// while the heap drains the current one, and the output keeps one
/// stripe write outstanding — classic double buffering.  The stripes
/// read and written, their order, and the merged output are identical
/// either way; only the waiting moves.
fn merge_group<R: Record, A: DiskArray<R>>(
    array: &mut A,
    group: &[LogicalRun],
    pipeline: bool,
) -> Result<LogicalRun, DsmError> {
    let geom = array.geometry();
    let per = LogicalRun::stripe_records(geom.d, geom.b) as usize;
    struct Cursor<R: Record> {
        buf: Vec<R>,
        pos: usize,
        next_stripe: u64,
        /// In-flight read of stripe `next_stripe` (pipelined only).
        pending: Option<ReadTicket<R>>,
    }
    let mut cursors: Vec<Cursor<R>> = Vec::with_capacity(group.len());
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, run) in group.iter().enumerate() {
        let n = run.records_in_stripe(0, geom.d, geom.b);
        let buf = read_stripe(array, run.start_stripe, n)?;
        heap.push(Reverse((buf[0].key(), i)));
        let mut cur = Cursor {
            buf,
            pos: 0,
            next_stripe: 1,
            pending: None,
        };
        if pipeline && cur.next_stripe < run.len_stripes {
            let n = run.records_in_stripe(cur.next_stripe, geom.d, geom.b);
            cur.pending = Some(submit_stripe_read(array, run.start_stripe + cur.next_stripe, n)?);
        }
        cursors.push(cur);
    }
    let total: u64 = group.iter().map(|r| r.records).sum();
    let mut out: Vec<R> = Vec::with_capacity(per);
    let mut out_run: Option<LogicalRun> = None;
    let mut out_ticket: Option<WriteTicket> = None;
    let flush = |array: &mut A,
                 out: &mut Vec<R>,
                 run: &mut Option<LogicalRun>,
                 ticket: &mut Option<WriteTicket>|
     -> Result<(), DsmError> {
        let s = alloc_stripe(array)?;
        if pipeline {
            if let Some(t) = ticket.take() {
                array.complete_write(t)?;
            }
            *ticket = Some(submit_stripe_write(array, s, out)?);
        } else {
            write_stripe(array, s, out)?;
        }
        match run {
            None => {
                *run = Some(LogicalRun {
                    start_stripe: s,
                    len_stripes: 1,
                    records: out.len() as u64,
                })
            }
            Some(r) => {
                debug_assert_eq!(s, r.start_stripe + r.len_stripes);
                r.len_stripes += 1;
                r.records += out.len() as u64;
            }
        }
        out.clear();
        Ok(())
    };

    while let Some(Reverse((key, i))) = heap.pop() {
        let cur = &mut cursors[i];
        let rec = cur.buf[cur.pos];
        debug_assert_eq!(rec.key(), key);
        cur.pos += 1;
        out.push(rec);
        if out.len() == per {
            flush(array, &mut out, &mut out_run, &mut out_ticket)?;
        }
        if cur.pos == cur.buf.len() {
            // Refill from the run's next stripe, if any.
            let run = &group[i];
            if let Some(ticket) = cur.pending.take() {
                cur.buf = complete_stripe_read(array, ticket)?;
                cur.pos = 0;
                cur.next_stripe += 1;
                if cur.next_stripe < run.len_stripes {
                    let n = run.records_in_stripe(cur.next_stripe, geom.d, geom.b);
                    cur.pending =
                        Some(submit_stripe_read(array, run.start_stripe + cur.next_stripe, n)?);
                }
            } else if cur.next_stripe < run.len_stripes {
                let n = run.records_in_stripe(cur.next_stripe, geom.d, geom.b);
                cur.buf = read_stripe(array, run.start_stripe + cur.next_stripe, n)?;
                cur.pos = 0;
                cur.next_stripe += 1;
            } else {
                cur.buf = Vec::new();
            }
        }
        if !cur.buf.is_empty() {
            heap.push(Reverse((cur.buf[cur.pos].key(), i)));
        }
    }
    if !out.is_empty() {
        flush(array, &mut out, &mut out_run, &mut out_ticket)?;
    }
    if let Some(t) = out_ticket.take() {
        array.complete_write(t)?;
    }
    let out_run =
        out_run.ok_or_else(|| DsmError::Config("merge produced no output stripes".into()))?;
    debug_assert_eq!(out_run.records, total);
    Ok(out_run)
}

/// Stage unsorted records as a logical-striped input file for
/// [`DsmSorter::sort`].
pub fn write_unsorted_stripes<R: Record, A: DiskArray<R>>(
    array: &mut A,
    records: &[R],
) -> Result<LogicalRun, DsmError> {
    if records.is_empty() {
        return Err(DsmError::Config("empty input".into()));
    }
    write_run(array, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::read_logical_run;
    use pdisk::{Geometry, MemDiskArray, U64Record};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sort_and_verify(geom: Geometry, keys: &[u64], config: DsmConfig) -> DsmReport {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let input = write_unsorted_stripes(&mut a, &recs).unwrap();
        let (sorted, report) = DsmSorter::new(config).sort(&mut a, &input).unwrap();
        let got: Vec<u64> = read_logical_run(&mut a, &sorted)
            .unwrap()
            .iter()
            .map(|r| r.0)
            .collect();
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(got, expected);
        report
    }

    fn random_keys(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.random_range(0..1_000_000)).collect()
    }

    #[test]
    fn interrupt_checkpoints_then_resume_completes_identically() {
        let dir = std::env::temp_dir().join(format!("dsm-interrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("manifest");
        let _ = std::fs::remove_file(&manifest);

        let mut rng = SmallRng::seed_from_u64(77);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 3000);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_stripes(&mut a, &recs).unwrap();

        let flag = pdisk::InterruptFlag::new();
        flag.trigger();
        let interrupted = DsmSorter::default()
            .with_interrupt(flag)
            .sort_checkpointed(&mut a, &input, &manifest);
        assert!(matches!(interrupted, Err(DsmError::Interrupted)));
        assert!(manifest.exists(), "checkpoint must be durable before Interrupted");

        let (sorted, _) = DsmSorter::default()
            .sort_checkpointed(&mut a, &input, &manifest)
            .unwrap();
        let got: Vec<u64> = read_logical_run(&mut a, &sorted)
            .unwrap()
            .iter()
            .map(|r| r.0)
            .collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!manifest.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sorts_multi_pass() {
        let mut rng = SmallRng::seed_from_u64(31);
        // M/B = 24, D = 2 -> R_DSM = (24 - 4)/4 = 5.
        let geom = Geometry::new(2, 4, 96).unwrap();
        let keys = random_keys(&mut rng, 3000);
        let report = sort_and_verify(geom, &keys, DsmConfig::default());
        assert_eq!(report.merge_order, 5);
        assert!(report.merge_passes >= 2);
        assert_eq!(report.records, 3000);
    }

    #[test]
    fn single_load_no_merge() {
        let geom = Geometry::new(2, 4, 128).unwrap();
        let keys: Vec<u64> = (0..50).rev().collect();
        let report = sort_and_verify(geom, &keys, DsmConfig { load_fraction: 1.0 });
        assert_eq!(report.runs_formed, 1);
        assert_eq!(report.merge_passes, 0);
    }

    #[test]
    fn perfect_parallelism_on_full_stripes() {
        let mut rng = SmallRng::seed_from_u64(32);
        let geom = Geometry::new(4, 4, 256).unwrap();
        // 64 records per load; input of 1024 = 64 stripes exactly.
        let keys = random_keys(&mut rng, 1024);
        let report = sort_and_verify(geom, &keys, DsmConfig::default());
        // All ops (except possibly run-tail writes) move D blocks.
        assert!(
            report.io.read_parallelism() > 3.9,
            "read parallelism {}",
            report.io.read_parallelism()
        );
        assert!(
            report.io.write_parallelism() > 3.9,
            "write parallelism {}",
            report.io.write_parallelism()
        );
    }

    #[test]
    fn io_count_matches_formula_shape() {
        // Per pass, DSM moves every record once in and once out:
        // reads/pass ≈ writes/pass ≈ stripes of the file.
        let mut rng = SmallRng::seed_from_u64(33);
        let geom = Geometry::new(2, 4, 96).unwrap();
        let n = 4096u64;
        let keys = random_keys(&mut rng, n as usize);
        let report = sort_and_verify(geom, &keys, DsmConfig::default());
        let stripes = n / 8;
        let passes = 1 + report.merge_passes; // formation + merges
        let ideal = passes * stripes;
        assert!(
            (report.io.read_ops as i64 - ideal as i64).unsigned_abs() < ideal / 5,
            "reads {} vs ideal {ideal}",
            report.io.read_ops
        );
        assert!(
            (report.io.write_ops as i64 - ideal as i64).unsigned_abs() < ideal / 5,
            "writes {} vs ideal {ideal}",
            report.io.write_ops
        );
    }

    #[test]
    fn duplicate_and_degenerate_inputs() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        sort_and_verify(geom, &vec![9u64; 500], DsmConfig::default());
        sort_and_verify(geom, &(0..700).collect::<Vec<u64>>(), DsmConfig::default());
        sort_and_verify(geom, &(0..700).rev().collect::<Vec<u64>>(), DsmConfig::default());
    }

    /// The pipelined engine must produce byte-identical output and the
    /// same I/O totals as the serial engine — double buffering moves
    /// the waiting, not the work.
    #[test]
    fn pipelined_sort_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(34);
        for (geom, n) in [
            (Geometry::new(2, 4, 96).unwrap(), 3000usize),
            (Geometry::new(4, 4, 256).unwrap(), 5000),
        ] {
            let keys = random_keys(&mut rng, n);
            let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
            let run = |pipeline: bool| {
                let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
                let input = write_unsorted_stripes(&mut a, &recs).unwrap();
                a.reset_stats();
                let (sorted, report) = DsmSorter::default()
                    .with_pipeline(pipeline)
                    .sort(&mut a, &input)
                    .unwrap();
                (read_logical_run(&mut a, &sorted).unwrap(), report)
            };
            let (serial_out, serial_rep) = run(false);
            let (pipe_out, pipe_rep) = run(true);
            assert_eq!(serial_out, pipe_out);
            assert_eq!(serial_rep, pipe_rep, "reports (incl. IoStats) must match");
        }
    }

    #[test]
    fn empty_input_rejected() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        assert!(write_unsorted_stripes::<U64Record, _>(&mut a, &[]).is_err());
    }

    #[test]
    fn bad_fraction_rejected() {
        let geom = Geometry::new(2, 4, 96).unwrap();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_stripes(&mut a, &[U64Record(1)]).unwrap();
        let sorter = DsmSorter::new(DsmConfig { load_fraction: 0.0 });
        assert!(matches!(
            sorter.sort(&mut a, &input),
            Err(DsmError::Config(_))
        ));
    }
}
