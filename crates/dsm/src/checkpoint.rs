//! Checkpoint manifests for multi-pass DSM sorts.
//!
//! Same recovery idea as `srm-core::checkpoint`, for the striped
//! baseline: after formation and after each merge pass the whole dataset
//! exists as a set of sorted logical runs, so that set (plus the pass
//! number) is all a resume needs.  DSM is deterministic — there is no
//! placement RNG to fast-forward — which makes its manifest even
//! simpler:
//!
//! ```text
//! dsm-sort-manifest v1
//! algo dsm
//! geometry <D> <B> <M>
//! records <u64>
//! runs-formed <u64>
//! pass <completed merge passes>
//! runs <count>
//! run <start_stripe> <len_stripes> <records>
//! ...
//! checksum <fnv1a64 of all preceding bytes, hex>
//! ```
//!
//! Written atomically (temp file + rename) with an FNV-1a checksum line,
//! so a torn manifest is detected, never trusted.
//!
//! One DSM-specific caveat: resuming requires the array's per-disk bump
//! allocators to still be in lockstep (see [`crate::logical::alloc_stripe`]).
//! A sort interrupted *between* the per-disk allocations of one stripe
//! violates that; the lockstep assertion reports it loudly on resume.

use crate::logical::LogicalRun;
use crate::sort::DsmError;
use pdisk::Geometry;
use std::io::Write;
use std::path::Path;

/// Manifest format version understood by this build.
pub const MANIFEST_VERSION: u32 = 1;

const HEADER: &str = "dsm-sort-manifest v1";

/// Snapshot of a DSM sort between passes.
#[derive(Debug, Clone, PartialEq)]
pub struct DsmManifest {
    /// Geometry the sort ran under; resume refuses a mismatch.
    pub geometry: Geometry,
    /// Total records being sorted.
    pub records: u64,
    /// Runs produced by the formation pass.
    pub runs_formed: u64,
    /// Completed merge passes (0 = formation finished).
    pub pass: u64,
    /// Surviving runs, in merge-queue order.
    pub runs: Vec<LogicalRun>,
}

impl DsmManifest {
    /// Refuse to resume against a different array or input.
    pub fn validate(&self, geometry: Geometry, records: u64) -> Result<(), DsmError> {
        if self.geometry != geometry {
            return Err(DsmError::Checkpoint(format!(
                "manifest geometry (D={} B={} M={}) does not match array (D={} B={} M={})",
                self.geometry.d, self.geometry.b, self.geometry.m, geometry.d, geometry.b, geometry.m
            )));
        }
        if self.records != records {
            return Err(DsmError::Checkpoint(format!(
                "manifest records {} does not match input records {records}",
                self.records
            )));
        }
        if self.runs.is_empty() {
            return Err(DsmError::Checkpoint("manifest holds no runs".into()));
        }
        Ok(())
    }

    /// Serialize to the manifest text format, checksum line included.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str(HEADER);
        s.push('\n');
        s.push_str("algo dsm\n");
        s.push_str(&format!(
            "geometry {} {} {}\n",
            self.geometry.d, self.geometry.b, self.geometry.m
        ));
        s.push_str(&format!("records {}\n", self.records));
        s.push_str(&format!("runs-formed {}\n", self.runs_formed));
        s.push_str(&format!("pass {}\n", self.pass));
        s.push_str(&format!("runs {}\n", self.runs.len()));
        for run in &self.runs {
            s.push_str(&format!(
                "run {} {} {}\n",
                run.start_stripe, run.len_stripes, run.records
            ));
        }
        s.push_str(&format!("checksum {:016x}\n", fnv1a64(s.as_bytes())));
        s
    }

    /// Parse manifest text, verifying the trailing checksum.
    pub fn parse(text: &str) -> Result<Self, DsmError> {
        let bad = |msg: &str| DsmError::Checkpoint(format!("malformed manifest: {msg}"));
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| bad("missing checksum line"))?;
        let stored = text[body_end..]
            .trim()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("unreadable checksum"))?;
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if stored != computed {
            return Err(DsmError::Checkpoint(format!(
                "manifest checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (torn or corrupted manifest)"
            )));
        }

        let mut lines = text[..body_end].lines();
        if lines.next() != Some(HEADER) {
            return Err(bad("unknown header or version"));
        }
        let mut field = |name: &str| -> Result<String, DsmError> {
            let line = lines.next().ok_or_else(|| bad("truncated"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("expected `{name}` line, got `{line}`")))
        };
        if field("algo")? != "dsm" {
            return Err(bad("not a dsm manifest"));
        }
        let geo: Vec<usize> = parse_ints(&field("geometry")?).map_err(|e| bad(&e))?;
        if geo.len() != 3 {
            return Err(bad("geometry needs three fields"));
        }
        let geometry = Geometry::new(geo[0], geo[1], geo[2])
            .map_err(|e| DsmError::Checkpoint(format!("manifest geometry invalid: {e}")))?;
        let records: u64 = field("records")?.parse().map_err(|_| bad("records"))?;
        let runs_formed: u64 = field("runs-formed")?.parse().map_err(|_| bad("runs-formed"))?;
        let pass: u64 = field("pass")?.parse().map_err(|_| bad("pass"))?;
        let count: usize = field("runs")?.parse().map_err(|_| bad("runs count"))?;
        let mut runs = Vec::with_capacity(count);
        for _ in 0..count {
            let nums: Vec<u64> = parse_ints(&field("run")?).map_err(|e| bad(&e))?;
            if nums.len() != 3 {
                return Err(bad("run line needs three fields"));
            }
            runs.push(LogicalRun {
                start_stripe: nums[0],
                len_stripes: nums[1],
                records: nums[2],
            });
        }
        if lines.next().is_some() {
            return Err(bad("trailing data after runs"));
        }
        Ok(DsmManifest {
            geometry,
            records,
            runs_formed,
            pass,
            runs,
        })
    }

    /// Write atomically: temp file, fsync, rename.
    pub fn save(&self, path: &Path) -> Result<(), DsmError> {
        let ckpt = |e: std::io::Error| {
            DsmError::Checkpoint(format!("cannot write manifest {}: {e}", path.display()))
        };
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp).map_err(ckpt)?;
        f.write_all(self.encode().as_bytes()).map_err(ckpt)?;
        f.sync_all().map_err(ckpt)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(ckpt)?;
        Ok(())
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Self, DsmError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            DsmError::Checkpoint(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        Self::parse(&text)
    }

    /// Delete a completed sort's manifest; a missing file is fine.
    pub fn remove(path: &Path) -> Result<(), DsmError> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(DsmError::Checkpoint(format!(
                "cannot remove manifest {}: {e}",
                path.display()
            ))),
        }
    }
}

fn parse_ints<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    s.split_whitespace()
        .map(|w| w.parse::<T>().map_err(|_| format!("bad integer `{w}`")))
        .collect()
}

/// FNV-1a 64-bit, matching the block-level framing check in `pdisk::file`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DsmManifest {
        DsmManifest {
            geometry: Geometry::new(2, 4, 96).unwrap(),
            records: 3000,
            runs_formed: 63,
            pass: 1,
            runs: vec![
                LogicalRun {
                    start_stripe: 400,
                    len_stripes: 30,
                    records: 240,
                },
                LogicalRun {
                    start_stripe: 430,
                    len_stripes: 20,
                    records: 160,
                },
            ],
        }
    }

    #[test]
    fn encode_parse_roundtrips() {
        let m = sample();
        assert_eq!(DsmManifest::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let text = sample().encode();
        let broken = text.replace("run 400 30 240", "run 401 30 240");
        assert!(DsmManifest::parse(&broken).is_err());
        assert!(DsmManifest::parse(&text[..text.len() - 20]).is_err());
    }

    #[test]
    fn validate_refuses_mismatches() {
        let m = sample();
        m.validate(m.geometry, 3000).unwrap();
        assert!(m.validate(Geometry::new(4, 4, 96).unwrap(), 3000).is_err());
        assert!(m.validate(m.geometry, 2999).is_err());
    }
}
