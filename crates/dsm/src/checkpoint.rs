//! Checkpoint manifests for multi-pass DSM sorts.
//!
//! Same recovery idea as `srm-core::checkpoint`, for the striped
//! baseline: after formation and after each merge pass the whole dataset
//! exists as a set of sorted logical runs, so that set (plus the pass
//! number) is all a resume needs.  DSM is deterministic — there is no
//! placement RNG to fast-forward — which makes its manifest even
//! simpler:
//!
//! ```text
//! dsm-sort-manifest v1
//! algo dsm
//! geometry <D> <B> <M>
//! records <u64>
//! runs-formed <u64>
//! pass <completed merge passes>
//! parity <stripe_disks>            (optional: array ran under parity)
//! dead <disk_id> ...               (optional: disks dead at snapshot time)
//! generation <u64>                 (optional: monotonic save counter, absent = 0)
//! runs <count>
//! run <start_stripe> <len_stripes> <records>
//! ...
//! checksum <fnv1a64 of all preceding bytes, hex>
//! ```
//!
//! The optional `parity` / `dead` lines mirror the SRM manifest: they pin
//! the redundancy geometry the snapshot was taken under, so a degraded
//! array can only be resumed by an array that knows the same disks are
//! dead (see [`DsmManifest::validate_redundancy`]).
//!
//! Saves are journaled exactly like `srm-core::checkpoint`: the previous
//! valid manifest is rotated to `<path>.prev`, the new one is written to
//! `<path>.tmp`, fsynced, and renamed into place with a monotonic
//! **generation number** one past the newest valid generation on disk.
//! Recovery ([`DsmManifest::load_latest`]) picks the newest *valid*
//! candidate, so a crash torn mid-save falls back to the journaled
//! predecessor instead of trusting a half-written file.
//!
//! One DSM-specific caveat: resuming requires the array's per-disk bump
//! allocators to still be in lockstep (see [`crate::logical::alloc_stripe`]).
//! A sort interrupted *between* the per-disk allocations of one stripe
//! violates that; the lockstep assertion reports it loudly on resume.

use crate::logical::LogicalRun;
use crate::sort::DsmError;
use pdisk::{DiskId, Geometry, RedundancyInfo};
use std::io::Write;
use std::path::Path;

/// Manifest format version understood by this build.
pub const MANIFEST_VERSION: u32 = 1;

const HEADER: &str = "dsm-sort-manifest v1";

/// Snapshot of a DSM sort between passes.
#[derive(Debug, Clone, PartialEq)]
pub struct DsmManifest {
    /// Geometry the sort ran under; resume refuses a mismatch.
    pub geometry: Geometry,
    /// Total records being sorted.
    pub records: u64,
    /// Runs produced by the formation pass.
    pub runs_formed: u64,
    /// Completed merge passes (0 = formation finished).
    pub pass: u64,
    /// Redundancy geometry at snapshot time (`None` for a plain array).
    pub redundancy: Option<RedundancyInfo>,
    /// Monotonic save counter (0 until first saved).  Each journaled
    /// save writes one past the newest valid generation on disk, and
    /// [`Self::load_latest`] resumes from the largest valid one.
    pub generation: u64,
    /// Surviving runs, in merge-queue order.
    pub runs: Vec<LogicalRun>,
}

impl DsmManifest {
    /// Refuse to resume against a different array or input.
    pub fn validate(&self, geometry: Geometry, records: u64) -> Result<(), DsmError> {
        if self.geometry != geometry {
            return Err(DsmError::Checkpoint(format!(
                "manifest geometry (D={} B={} M={}) does not match array (D={} B={} M={})",
                self.geometry.d, self.geometry.b, self.geometry.m, geometry.d, geometry.b, geometry.m
            )));
        }
        if self.records != records {
            return Err(DsmError::Checkpoint(format!(
                "manifest records {} does not match input records {records}",
                self.records
            )));
        }
        if self.runs.is_empty() {
            return Err(DsmError::Checkpoint("manifest holds no runs".into()));
        }
        Ok(())
    }

    /// Refuse to resume on an array whose redundancy state doesn't cover
    /// the manifest's — same contract as the SRM manifest: stripe widths
    /// must match and every manifest-dead disk must already be dead on
    /// the array (its degraded-mode writes exist only as parity).
    pub fn validate_redundancy(&self, current: Option<&RedundancyInfo>) -> Result<(), DsmError> {
        match (&self.redundancy, current) {
            (None, None) => Ok(()),
            (Some(_), None) => Err(DsmError::Checkpoint(
                "manifest was written under parity redundancy but the array has none".into(),
            )),
            (None, Some(_)) => Err(DsmError::Checkpoint(
                "manifest was written on a plain array but the array has parity redundancy"
                    .into(),
            )),
            (Some(want), Some(have)) => {
                if want.stripe_disks != have.stripe_disks {
                    return Err(DsmError::Checkpoint(format!(
                        "manifest parity stripe width {} does not match array stripe width {}",
                        want.stripe_disks, have.stripe_disks
                    )));
                }
                if let Some(d) = want.dead.iter().find(|d| !have.dead.contains(d)) {
                    return Err(DsmError::Checkpoint(format!(
                        "manifest records disk {} dead but the array treats it as live",
                        d.0
                    )));
                }
                Ok(())
            }
        }
    }

    /// Serialize to the manifest text format, checksum line included.
    pub fn encode(&self) -> String {
        let mut s = String::new();
        s.push_str(HEADER);
        s.push('\n');
        s.push_str("algo dsm\n");
        s.push_str(&format!(
            "geometry {} {} {}\n",
            self.geometry.d, self.geometry.b, self.geometry.m
        ));
        s.push_str(&format!("records {}\n", self.records));
        s.push_str(&format!("runs-formed {}\n", self.runs_formed));
        s.push_str(&format!("pass {}\n", self.pass));
        if let Some(red) = &self.redundancy {
            s.push_str(&format!("parity {}\n", red.stripe_disks));
            if !red.dead.is_empty() {
                s.push_str("dead");
                for d in &red.dead {
                    s.push_str(&format!(" {}", d.0));
                }
                s.push('\n');
            }
        }
        if self.generation > 0 {
            s.push_str(&format!("generation {}\n", self.generation));
        }
        s.push_str(&format!("runs {}\n", self.runs.len()));
        for run in &self.runs {
            s.push_str(&format!(
                "run {} {} {}\n",
                run.start_stripe, run.len_stripes, run.records
            ));
        }
        s.push_str(&format!("checksum {:016x}\n", fnv1a64(s.as_bytes())));
        s
    }

    /// Parse manifest text, verifying the trailing checksum.
    pub fn parse(text: &str) -> Result<Self, DsmError> {
        let bad = |msg: &str| DsmError::Checkpoint(format!("malformed manifest: {msg}"));
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| bad("missing checksum line"))?;
        let stored = text[body_end..]
            .trim()
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("unreadable checksum"))?;
        let computed = fnv1a64(&text.as_bytes()[..body_end]);
        if stored != computed {
            return Err(DsmError::Checkpoint(format!(
                "manifest checksum mismatch: stored {stored:016x}, computed {computed:016x} \
                 (torn or corrupted manifest)"
            )));
        }

        let mut lines = text[..body_end].lines().peekable();
        if lines.next() != Some(HEADER) {
            return Err(bad("unknown header or version"));
        }
        if take_field(&mut lines, "algo")? != "dsm" {
            return Err(bad("not a dsm manifest"));
        }
        let geo: Vec<usize> = parse_ints(&take_field(&mut lines, "geometry")?).map_err(|e| bad(&e))?;
        if geo.len() != 3 {
            return Err(bad("geometry needs three fields"));
        }
        let geometry = Geometry::new(geo[0], geo[1], geo[2])
            .map_err(|e| DsmError::Checkpoint(format!("manifest geometry invalid: {e}")))?;
        let records: u64 = take_field(&mut lines, "records")?
            .parse()
            .map_err(|_| bad("records"))?;
        let runs_formed: u64 = take_field(&mut lines, "runs-formed")?
            .parse()
            .map_err(|_| bad("runs-formed"))?;
        let pass: u64 = take_field(&mut lines, "pass")?.parse().map_err(|_| bad("pass"))?;
        let mut redundancy = None;
        if lines.peek().is_some_and(|l| l.starts_with("parity ")) {
            let stripe_disks: usize = take_field(&mut lines, "parity")?
                .parse()
                .map_err(|_| bad("parity stripe width"))?;
            if stripe_disks != geometry.d {
                return Err(bad("parity stripe width does not match geometry"));
            }
            let mut dead = Vec::new();
            if lines.peek().is_some_and(|l| l.starts_with("dead ")) {
                let ids: Vec<u32> = parse_ints(&take_field(&mut lines, "dead")?).map_err(|e| bad(&e))?;
                if ids.iter().any(|&i| i as usize >= geometry.d) {
                    return Err(bad("dead disk id out of range for geometry"));
                }
                dead = ids.into_iter().map(DiskId).collect();
            }
            redundancy = Some(RedundancyInfo { stripe_disks, dead });
        }
        // Optional generation line; manifests from before journaled saves
        // carry none and read as generation 0.
        let mut generation = 0u64;
        if lines.peek().is_some_and(|l| l.starts_with("generation ")) {
            generation = take_field(&mut lines, "generation")?
                .parse()
                .map_err(|_| bad("generation"))?;
        }
        let count: usize = take_field(&mut lines, "runs")?
            .parse()
            .map_err(|_| bad("runs count"))?;
        // `count` comes from an untrusted file; cap the reserve.
        let mut runs = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let nums: Vec<u64> = parse_ints(&take_field(&mut lines, "run")?).map_err(|e| bad(&e))?;
            if nums.len() != 3 {
                return Err(bad("run line needs three fields"));
            }
            runs.push(LogicalRun {
                start_stripe: nums[0],
                len_stripes: nums[1],
                records: nums[2],
            });
        }
        if lines.next().is_some() {
            return Err(bad("trailing data after runs"));
        }
        Ok(DsmManifest {
            geometry,
            records,
            runs_formed,
            pass,
            redundancy,
            generation,
            runs,
        })
    }

    /// Write journaled and atomic.  The previous valid manifest at
    /// `path` is first rotated to `<path>.prev`; the new manifest is
    /// then serialized to `<path>.tmp`, fsynced, and renamed over
    /// `path`, stamped with a generation one past the newest valid
    /// generation already on disk.  A crash at any point leaves at
    /// least one valid manifest for [`Self::load_latest`] to pick up.
    pub fn save(&mut self, path: &Path) -> Result<(), DsmError> {
        let ckpt = |e: std::io::Error| {
            DsmError::Checkpoint(format!("cannot write manifest {}: {e}", path.display()))
        };
        let prev = manifest_sibling(path, "prev");
        let newest = [path, prev.as_path()]
            .into_iter()
            .filter_map(|p| Self::load(p).ok())
            .map(|m| m.generation)
            .max();
        self.generation = newest.map_or(1, |g| g + 1);
        // Rotate only a *valid* current manifest: renaming a torn one
        // over `.prev` would clobber the good fallback copy.
        if path.exists() && Self::load(path).is_ok() {
            std::fs::rename(path, &prev).map_err(ckpt)?;
        }
        let tmp = manifest_sibling(path, "tmp");
        let mut f = std::fs::File::create(&tmp).map_err(ckpt)?;
        f.write_all(self.encode().as_bytes()).map_err(ckpt)?;
        f.sync_all().map_err(ckpt)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(ckpt)?;
        Ok(())
    }

    /// Load and parse a manifest file.
    pub fn load(path: &Path) -> Result<Self, DsmError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            DsmError::Checkpoint(format!("cannot read manifest {}: {e}", path.display()))
        })?;
        Self::parse(&text)
    }

    /// Recovery rule: the newest *valid* manifest among `path` and its
    /// `.prev` journal sibling.
    ///
    /// * No candidate file exists → `Ok(None)` (nothing to resume).
    /// * At least one candidate parses and passes its checksum → the one
    ///   with the largest generation.
    /// * Candidates exist but every one is torn or corrupt → an error;
    ///   resuming blind would re-sort from scratch and clobber state
    ///   the operator may want to inspect.
    pub fn load_latest(path: &Path) -> Result<Option<Self>, DsmError> {
        let prev = manifest_sibling(path, "prev");
        let candidates = [path, prev.as_path()];
        let mut best: Option<Self> = None;
        let mut existed = 0u32;
        let mut last_err = None;
        for p in candidates {
            if !p.exists() {
                continue;
            }
            existed += 1;
            match Self::load(p) {
                Ok(m) if best.as_ref().is_none_or(|b| m.generation > b.generation) => {
                    best = Some(m);
                }
                Ok(_) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match (best, existed, last_err) {
            (Some(m), _, _) => Ok(Some(m)),
            (None, 0, _) => Ok(None),
            (None, _, Some(e)) => Err(DsmError::Checkpoint(format!(
                "every manifest candidate for {} is corrupt (last error: {e})",
                path.display()
            ))),
            (None, _, None) => Err(DsmError::Checkpoint(format!(
                "every manifest candidate for {} is unreadable",
                path.display()
            ))),
        }
    }

    /// Delete a completed sort's manifest, including its `.prev` journal
    /// sibling and any orphaned `.tmp`; missing files are fine (the sort
    /// may never have checkpointed).
    pub fn remove(path: &Path) -> Result<(), DsmError> {
        for p in [
            path.to_path_buf(),
            manifest_sibling(path, "prev"),
            manifest_sibling(path, "tmp"),
        ] {
            match std::fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(DsmError::Checkpoint(format!(
                        "cannot remove manifest {}: {e}",
                        p.display()
                    )))
                }
            }
        }
        Ok(())
    }
}

/// `<path>.<suffix>` with the suffix *appended* (not replacing an
/// existing extension), so `sort.manifest` journals beside itself as
/// `sort.manifest.prev` / `sort.manifest.tmp`.
pub(crate) fn manifest_sibling(path: &Path, suffix: &str) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".");
    os.push(suffix);
    std::path::PathBuf::from(os)
}

/// Consume the next manifest line, which must be `<name> <value>`, and
/// return the value.
fn take_field<'a, I: Iterator<Item = &'a str>>(
    lines: &mut std::iter::Peekable<I>,
    name: &str,
) -> Result<String, DsmError> {
    let line = lines
        .next()
        .ok_or_else(|| DsmError::Checkpoint("malformed manifest: truncated".into()))?;
    line.strip_prefix(name)
        .and_then(|rest| rest.strip_prefix(' '))
        .map(str::to_owned)
        .ok_or_else(|| {
            DsmError::Checkpoint(format!(
                "malformed manifest: expected `{name}` line, got `{line}`"
            ))
        })
}

fn parse_ints<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    s.split_whitespace()
        .map(|w| w.parse::<T>().map_err(|_| format!("bad integer `{w}`")))
        .collect()
}

/// FNV-1a 64-bit, matching the block-level framing check in `pdisk::file`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DsmManifest {
        DsmManifest {
            geometry: Geometry::new(2, 4, 96).unwrap(),
            records: 3000,
            runs_formed: 63,
            pass: 1,
            redundancy: None,
            generation: 0,
            runs: vec![
                LogicalRun {
                    start_stripe: 400,
                    len_stripes: 30,
                    records: 240,
                },
                LogicalRun {
                    start_stripe: 430,
                    len_stripes: 20,
                    records: 160,
                },
            ],
        }
    }

    #[test]
    fn encode_parse_roundtrips() {
        let m = sample();
        assert_eq!(DsmManifest::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corruption_and_truncation_detected() {
        let text = sample().encode();
        let broken = text.replace("run 400 30 240", "run 401 30 240");
        assert!(DsmManifest::parse(&broken).is_err());
        assert!(DsmManifest::parse(&text[..text.len() - 20]).is_err());
    }

    #[test]
    fn saves_journal_the_previous_generation() {
        let dir = std::env::temp_dir().join(format!("dsm-manifest-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dsm.manifest");
        let mut m = sample();
        m.save(&path).unwrap();
        assert_eq!(m.generation, 1);
        m.pass = 2;
        m.save(&path).unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(DsmManifest::load_latest(&path).unwrap().unwrap(), m);
        let prev = DsmManifest::load(&manifest_sibling(&path, "prev")).unwrap();
        assert_eq!((prev.generation, prev.pass), (1, 1));
        DsmManifest::remove(&path).unwrap();
        assert!(!path.exists() && !manifest_sibling(&path, "prev").exists());
        assert!(DsmManifest::load_latest(&path).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_falls_back_to_the_previous_valid_generation() {
        let dir = std::env::temp_dir().join(format!("dsm-manifest-fb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dsm.manifest");
        let mut m = sample();
        m.save(&path).unwrap();
        m.pass = 2;
        m.save(&path).unwrap();
        // Tear the newest generation: recovery falls back to gen 1.
        std::fs::write(&path, "torn garbage").unwrap();
        let got = DsmManifest::load_latest(&path).unwrap().unwrap();
        assert_eq!((got.generation, got.pass), (1, 1));
        // Tear the journal too: every candidate corrupt is an error,
        // not a silent fresh start.
        std::fs::write(manifest_sibling(&path, "prev"), "also torn").unwrap();
        let err = DsmManifest::load_latest(&path).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_refuses_mismatches() {
        let m = sample();
        m.validate(m.geometry, 3000).unwrap();
        assert!(m.validate(Geometry::new(4, 4, 96).unwrap(), 3000).is_err());
        assert!(m.validate(m.geometry, 2999).is_err());
    }

    #[test]
    fn redundancy_lines_roundtrip_and_validate() {
        let mut m = sample();
        m.redundancy = Some(RedundancyInfo {
            stripe_disks: 2,
            dead: vec![DiskId(0)],
        });
        let text = m.encode();
        assert!(text.contains("parity 2\n") && text.contains("dead 0\n"), "{text}");
        assert_eq!(DsmManifest::parse(&text).unwrap(), m);
        // Plain manifests stay byte-identical to the old wire format.
        assert!(!sample().encode().contains("parity"));
        // Validation: resuming array must know the dead disk.
        assert!(m.validate_redundancy(None).is_err());
        let healthy = RedundancyInfo {
            stripe_disks: 2,
            dead: vec![],
        };
        assert!(m.validate_redundancy(Some(&healthy)).is_err());
        let degraded = RedundancyInfo {
            stripe_disks: 2,
            dead: vec![DiskId(0)],
        };
        m.validate_redundancy(Some(&degraded)).unwrap();
        assert!(sample().validate_redundancy(Some(&degraded)).is_err());
    }
}
