//! # dsm — disk-striped mergesort, the practice baseline
//!
//! DSM (§9 of the SRM paper) coordinates the `D` disks so that every
//! parallel operation accesses the *same* block offset on each disk.  That
//! turns the array into one logical disk with block size `D·B`: perfectly
//! parallel I/O with zero scheduling cleverness, at the price of a merge
//! order of only `Θ(M/DB)` instead of `Θ(M/B)` — hence more passes.
//!
//! With the paper's buffering convention (eq. 41) — `2D` blocks of write
//! buffer plus `2D` blocks (two logical blocks) per input run — DSM merges
//! `R_DSM = (M/B − 2D)/2D` runs at a time, and its total I/O count is
//!
//! ```text
//! (N/DB)·(2 + 2·ln(N/M)/ln R_DSM)
//! ```
//!
//! This crate implements DSM over the same [`pdisk`] substrate as SRM so
//! the two are compared on identical terms: identical geometry, identical
//! memory budget, identical counting.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod logical;
pub mod sort;

pub use checkpoint::DsmManifest;
pub use logical::{
    complete_stripe_read, read_logical_run, submit_stripe_read, submit_stripe_write, LogicalRun,
};
pub use sort::{write_unsorted_stripes, DsmConfig, DsmError, DsmReport, DsmSorter};
