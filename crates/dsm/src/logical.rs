//! The logical single-disk view: stripes of `D` same-offset blocks.

use pdisk::{
    Block, BlockAddr, DiskArray, DiskId, Forecast, PdiskError, ReadTicket, Record, StripedRun,
    WriteTicket,
};

/// A run stored as consecutive *stripes* — block `s` of every disk, for
/// `s` in `start_stripe .. start_stripe + len_stripes`.
///
/// Equivalent to a file on one logical disk with block size `D·B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalRun {
    /// First stripe of the run.
    pub start_stripe: u64,
    /// Number of stripes.
    pub len_stripes: u64,
    /// Total records (the final stripe may be partial).
    pub records: u64,
}

impl LogicalRun {
    /// Records per full stripe for geometry `(d, b)`.
    pub fn stripe_records(d: usize, b: usize) -> u64 {
        (d * b) as u64
    }

    /// Records held by stripe `i` of this run (`0 ≤ i < len_stripes`).
    pub fn records_in_stripe(&self, i: u64, d: usize, b: usize) -> u64 {
        let per = Self::stripe_records(d, b);
        let before = i * per;
        debug_assert!(before < self.records);
        (self.records - before).min(per)
    }
}

/// Allocate one stripe: the same fresh offset on every disk.
///
/// DSM must be the only allocator on its array — that keeps the per-disk
/// bump allocators in lockstep, which this function asserts.
pub fn alloc_stripe<R: Record, A: DiskArray<R>>(array: &mut A) -> Result<u64, PdiskError> {
    let d = array.geometry().d;
    let first = array.alloc_contiguous(DiskId(0), 1)?;
    for disk in 1..d {
        let off = array.alloc_contiguous(DiskId::from_index(disk), 1)?;
        assert_eq!(
            off, first,
            "DSM requires lockstep allocation; disk {disk} is at {off}, disk 0 at {first}"
        );
    }
    Ok(first)
}

/// The addresses holding the first `n_records` records of stripe `s`.
fn stripe_addrs(d: usize, b: usize, s: u64, n_records: u64) -> Vec<BlockAddr> {
    assert!(n_records > 0 && n_records <= (d * b) as u64);
    let n_blocks = (n_records as usize).div_ceil(b);
    (0..n_blocks)
        .map(|disk| BlockAddr::new(DiskId::from_index(disk), s))
        .collect()
}

/// Read the first `n_records` records of stripe `s` in one parallel
/// operation (only the `⌈n/B⌉` blocks that exist are touched).
pub fn read_stripe<R: Record, A: DiskArray<R>>(
    array: &mut A,
    s: u64,
    n_records: u64,
) -> Result<Vec<R>, PdiskError> {
    let geom = array.geometry();
    let addrs = stripe_addrs(geom.d, geom.b, s, n_records);
    let blocks = array.read(&addrs)?;
    let mut out = Vec::with_capacity(n_records as usize);
    for block in blocks {
        out.extend(block.records);
    }
    debug_assert_eq!(out.len() as u64, n_records);
    Ok(out)
}

/// Split-phase variant of [`read_stripe`]: queue the parallel read and
/// return a ticket.  The I/O is charged and traced now, so the logical
/// operation sequence is the same as the blocking call's.
pub fn submit_stripe_read<R: Record, A: DiskArray<R>>(
    array: &mut A,
    s: u64,
    n_records: u64,
) -> Result<ReadTicket<R>, PdiskError> {
    let geom = array.geometry();
    let addrs = stripe_addrs(geom.d, geom.b, s, n_records);
    array.submit_read(&addrs)
}

/// Wait for a stripe read submitted with [`submit_stripe_read`] and
/// concatenate its blocks into records.
pub fn complete_stripe_read<R: Record, A: DiskArray<R>>(
    array: &mut A,
    ticket: ReadTicket<R>,
) -> Result<Vec<R>, PdiskError> {
    let blocks = array.complete_read(ticket)?;
    let mut out = Vec::new();
    for block in blocks {
        out.extend(block.records);
    }
    Ok(out)
}

/// Write `records` (at most `D·B` of them) as stripe `s` in one parallel
/// operation.  Leading blocks of the stripe are filled first; trailing
/// disks receive nothing when the stripe is partial.
pub fn write_stripe<R: Record, A: DiskArray<R>>(
    array: &mut A,
    s: u64,
    records: &[R],
) -> Result<(), PdiskError> {
    let writes = stripe_writes(array.geometry(), s, records);
    array.write(writes)
}

/// Split-phase variant of [`write_stripe`]: queue the parallel write and
/// return a ticket to wait on later.
pub fn submit_stripe_write<R: Record, A: DiskArray<R>>(
    array: &mut A,
    s: u64,
    records: &[R],
) -> Result<WriteTicket, PdiskError> {
    let writes = stripe_writes(array.geometry(), s, records);
    array.submit_write(writes)
}

/// Build the per-disk block writes of a stripe.
fn stripe_writes<R: Record>(
    geom: pdisk::Geometry,
    s: u64,
    records: &[R],
) -> Vec<(BlockAddr, Block<R>)> {
    assert!(records.len() <= geom.d * geom.b, "stripe overflow");
    assert!(!records.is_empty(), "empty stripe write");
    let mut writes = Vec::with_capacity(geom.d);
    for (disk, chunk) in records.chunks(geom.b).enumerate() {
        // DSM has no use for forecasting; blocks carry a null forecast.
        let block = Block {
            records: chunk.to_vec(),
            forecast: Forecast::Next(pdisk::block::NO_BLOCK),
        };
        writes.push((BlockAddr::new(DiskId::from_index(disk), s), block));
    }
    writes
}

/// Read a whole logical run back (verification path).
pub fn read_logical_run<R: Record, A: DiskArray<R>>(
    array: &mut A,
    run: &LogicalRun,
) -> Result<Vec<R>, PdiskError> {
    let geom = array.geometry();
    let mut out = Vec::with_capacity(run.records as usize);
    for i in 0..run.len_stripes {
        let n = run.records_in_stripe(i, geom.d, geom.b);
        out.extend(read_stripe(array, run.start_stripe + i, n)?);
    }
    Ok(out)
}

/// Convert a [`LogicalRun`] into the cyclic-striped representation used by
/// SRM's utilities — only valid for describing *where data lives*, not for
/// SRM merging (the forecast format is absent).
pub fn as_striped(run: &LogicalRun, d: usize) -> StripedRun {
    StripedRun {
        start_disk: DiskId(0),
        len_blocks: run.len_stripes * d as u64,
        records: run.records,
        base_offsets: vec![run.start_stripe; d],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::{Geometry, MemDiskArray, U64Record};

    fn geom() -> Geometry {
        Geometry::new(3, 4, 10_000).unwrap()
    }

    #[test]
    fn stripe_roundtrip_full_and_partial() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let s0 = alloc_stripe(&mut a).unwrap();
        let s1 = alloc_stripe(&mut a).unwrap();
        assert_eq!(s1, s0 + 1);
        let full: Vec<U64Record> = (0..12).map(U64Record).collect();
        write_stripe(&mut a, s0, &full).unwrap();
        let partial: Vec<U64Record> = (100..105).map(U64Record).collect();
        write_stripe(&mut a, s1, &partial).unwrap();
        assert_eq!(read_stripe(&mut a, s0, 12).unwrap(), full);
        assert_eq!(read_stripe(&mut a, s1, 5).unwrap(), partial);
    }

    #[test]
    fn each_stripe_op_is_one_parallel_io() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let s = alloc_stripe(&mut a).unwrap();
        write_stripe(&mut a, s, &(0..12).map(U64Record).collect::<Vec<_>>()).unwrap();
        let _ = read_stripe(&mut a, s, 12).unwrap();
        let stats = a.stats();
        assert_eq!(stats.write_ops, 1);
        assert_eq!(stats.read_ops, 1);
        assert_eq!(stats.blocks_written, 3);
        assert_eq!(stats.blocks_read, 3);
    }

    #[test]
    fn partial_stripe_reads_touch_only_existing_blocks() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let s = alloc_stripe(&mut a).unwrap();
        write_stripe(&mut a, s, &[U64Record(1), U64Record(2)]).unwrap();
        let got = read_stripe(&mut a, s, 2).unwrap();
        assert_eq!(got, vec![U64Record(1), U64Record(2)]);
        assert_eq!(a.stats().blocks_read, 1);
    }

    #[test]
    fn logical_run_roundtrip() {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let start = alloc_stripe(&mut a).unwrap();
        let _ = alloc_stripe(&mut a).unwrap();
        let run = LogicalRun {
            start_stripe: start,
            len_stripes: 2,
            records: 17,
        };
        let recs: Vec<U64Record> = (0..17).map(U64Record).collect();
        write_stripe(&mut a, start, &recs[..12]).unwrap();
        write_stripe(&mut a, start + 1, &recs[12..]).unwrap();
        assert_eq!(read_logical_run(&mut a, &run).unwrap(), recs);
    }

    #[test]
    fn records_in_stripe_accounts_for_tail() {
        let run = LogicalRun {
            start_stripe: 0,
            len_stripes: 3,
            records: 29,
        };
        assert_eq!(run.records_in_stripe(0, 3, 4), 12);
        assert_eq!(run.records_in_stripe(1, 3, 4), 12);
        assert_eq!(run.records_in_stripe(2, 3, 4), 5);
    }

    #[test]
    fn as_striped_covers_all_records() {
        let run = LogicalRun {
            start_stripe: 2,
            len_stripes: 4,
            records: 40,
        };
        let s = as_striped(&run, 3);
        assert_eq!(s.len_blocks, 12);
        assert_eq!(s.records, 40);
    }
}
