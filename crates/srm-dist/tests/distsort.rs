//! End-to-end drills for the distributed sort: the node-death matrix,
//! channel-fault runs, false suspicions, and parity rebuilds.
//!
//! The headline assertion, everywhere: the global output digest is
//! **byte-identical** to the failure-free run's (which itself matches
//! the centrally computed oracle), and every shard's finishing trace is
//! checker-clean.

use pdisk::{NetFault, NetFaultModel};
use srm_dist::{distsort, DistConfig, DistReport, KillPlan, KillPoint};
use srm_server::JobSpec;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "srm-dist-{tag}-{}-{n}",
        std::process::id()
    ));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    dir
}

fn spec() -> JobSpec {
    JobSpec {
        records: 6_000,
        seed: 0xD15_7A11,
        d: 3,
        b: 16,
        m: 512,
        ..JobSpec::default()
    }
}

fn run(tag: &str, cfg: &DistConfig) -> DistReport {
    let dir = scratch(tag);
    let report = distsort(&spec(), cfg, &dir).expect("distsort failed");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn assert_clean(report: &DistReport, baseline_digest: u64) {
    assert_eq!(
        report.digest, baseline_digest,
        "global output must be byte-identical to the failure-free run"
    );
    assert!(report.oracle_ok, "digest must match the central oracle");
    assert_eq!(report.records, spec().records);
    for (s, shard) in report.per_shard.iter().enumerate() {
        assert!(shard.trace_clean, "shard {s} trace must be checker-clean");
    }
    assert_eq!(
        report.per_shard.iter().map(|s| s.records).sum::<u64>(),
        spec().records,
        "shard partitions must cover the input exactly"
    );
}

/// The failure-free digest for a given shard count (computed once per
/// P, reused by every drill in the matrix).
fn baseline(p: u32) -> u64 {
    let report = run("baseline", &DistConfig::new(p));
    assert!(report.oracle_ok, "baseline must match the oracle");
    assert_eq!(report.recoveries, 0, "baseline must not need recovery");
    report.digest
}

#[test]
fn failure_free_matches_oracle_across_shard_counts() {
    for p in [1, 2, 3, 5] {
        let report = run("ff", &DistConfig::new(p));
        assert!(report.oracle_ok, "P={p} digest mismatch");
        assert_eq!(report.records, spec().records);
        assert_eq!(report.shards, p);
        assert_eq!(report.splitters.len() as u32, p - 1);
        for shard in &report.per_shard {
            assert!(shard.trace_clean);
            assert_eq!(shard.recoveries, 0);
        }
    }
}

/// The node-death matrix: for P ∈ {2, 4}, kill each shard at each pass
/// boundary; the output must be byte-identical to the failure-free run
/// and the dead shard must have recovered exactly once.
#[test]
fn node_death_matrix_is_byte_identical() {
    for p in [2u32, 4] {
        let want = baseline(p);
        // This workload forms runs (pass 0) and needs at least one merge
        // pass (pass 1) on every shard; strike both boundaries.
        for pass in [0u64, 1] {
            for victim in 0..p {
                let mut cfg = DistConfig::new(p);
                cfg.kill = Some(KillPlan {
                    shard: victim,
                    point: KillPoint::Pass(pass),
                });
                let report = run("kill", &cfg);
                assert_clean(&report, want);
                assert!(
                    report.recoveries >= 1,
                    "P={p} kill {victim}@{pass}: the drill must cause a recovery"
                );
                assert!(
                    report.per_shard[victim as usize].recoveries >= 1,
                    "P={p} kill {victim}@{pass}: the victim must be the one recovered"
                );
                assert!(
                    !report.recovery_ms.is_empty(),
                    "recovery wall-clock must be measured"
                );
            }
        }
    }
}

/// Kill a shard while it serves the cross-shard merge: the merge must
/// stall, the replacement must come back serving, and the output must
/// still be byte-identical.
#[test]
fn merge_survives_a_serving_node_death() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    cfg.kill = Some(KillPlan {
        shard: 1,
        point: KillPoint::Merge(2),
    });
    let report = run("mergekill", &cfg);
    assert_clean(&report, want);
    assert!(report.merge_stalls >= 1, "the merge must have stalled");
    assert!(report.per_shard[1].recoveries >= 1);
}

/// Kill a shard during a channel partition that also separates the
/// coordinator from another shard — recovery under compound failure.
#[test]
fn node_death_mid_partition_is_byte_identical() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // Partition node 0 off for a window of global sends mid-protocol,
    // and kill shard 1 at its first merge-pass boundary.
    cfg.net = NetFaultModel::seeded(0xBAD1).partition(0, 40, 120);
    cfg.kill = Some(KillPlan {
        shard: 1,
        point: KillPoint::Pass(1),
    });
    let report = run("partkill", &cfg);
    assert_clean(&report, want);
    assert!(report.recoveries >= 1);
}

/// A lossy, delaying, duplicating channel — no kills — must still
/// produce the byte-identical output (false suspicions are allowed and
/// must be harmless thanks to fencing + epochs).
#[test]
fn channel_faults_never_corrupt_output() {
    let p = 3;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    cfg.net = NetFaultModel::seeded(0x5EED_CAFE)
        .with_drop_rate(0.05)
        .with_dup_rate(0.05)
        .with_delay_rate(0.10)
        .with_max_delay(6);
    let report = run("lossy", &cfg);
    assert_clean(&report, want);
    assert!(
        report.net.dropped + report.net.duplicated + report.net.delayed > 0,
        "the fault model must actually have fired"
    );
}

/// A scripted drop of a staging batch exercises the stop-and-wait
/// retransmission path deterministically.
#[test]
fn scripted_staging_drop_is_retransmitted() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // Drop the first two coordinator→shard-0 messages (Hello's reply
    // traffic/staging batches), forcing retransmission.
    cfg.net = NetFaultModel::seeded(9)
        .script(2, 0, 0, NetFault::Drop)
        .script(2, 0, 1, NetFault::Drop);
    let report = run("script", &cfg);
    assert_clean(&report, want);
    assert!(report.net.dropped >= 2);
}

/// With `--parity`, corrupt one of the dead shard's disk files between
/// the kill and the recovery: the replacement must rebuild the lost
/// blocks from parity before resuming, and the output must still be
/// byte-identical.
#[test]
fn parity_rebuilds_a_corrupted_replacement_disk() {
    let p = 2;
    let mut base_cfg = DistConfig::new(p);
    base_cfg.parity = true;
    let want = {
        let r = run("parity-base", &base_cfg);
        assert!(r.oracle_ok);
        r.digest
    };

    let mut cfg = base_cfg.clone();
    cfg.kill = Some(KillPlan {
        shard: 0,
        point: KillPoint::Pass(1),
    });
    // The death also trashes the leading slots of disk 1 in the victim's
    // cluster before the replacement boots.
    cfg.corrupt_disk = Some(1);
    let report = run("parity-kill", &cfg);
    assert_clean(&report, want);
    assert!(report.per_shard[0].recoveries >= 1);
    assert!(
        report.per_shard[0].repaired >= 1,
        "the pre-resume scrub must have healed the trashed blocks, got {:?}",
        report.per_shard[0]
    );
}

#[test]
fn empty_shard_partitions_are_tolerated() {
    // A tiny input across many shards guarantees some empty buckets.
    let mut spec = spec();
    spec.records = 40;
    spec.m = 512;
    let dir = scratch("tiny");
    let report = distsort(&spec, &DistConfig::new(6), &dir).expect("distsort failed");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.oracle_ok);
    assert_eq!(report.records, 40);
}

#[test]
fn kill_spec_validation() {
    let mut cfg = DistConfig::new(2);
    cfg.kill = Some(KillPlan {
        shard: 7,
        point: KillPoint::Pass(0),
    });
    let dir = scratch("badkill");
    let err = distsort(&spec(), &cfg, &dir).unwrap_err();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(err.to_string().contains("out of range"), "{err}");
}

/// Drop a staging batch *and its retransmissions*: stop-and-wait must
/// keep re-offering the same batch until one copy lands, and the
/// output must be byte-identical.
#[test]
fn repeated_retransmission_loss_still_converges() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // Coordinator→shard-0 sends 0, 1, and 2 all vanish: the original
    // batch and its first two retransmissions.  The third retry lands.
    cfg.net = NetFaultModel::seeded(0x7E7A)
        .script(2, 0, 0, NetFault::Drop)
        .script(2, 0, 1, NetFault::Drop)
        .script(2, 0, 2, NetFault::Drop);
    let report = run("redrop", &cfg);
    assert_clean(&report, want);
    assert!(
        report.net.dropped >= 3,
        "all three scripted drops must fire, got {:?}",
        report.net
    );
}

/// Drop a StageAck for a batch the shard already applied: the
/// coordinator retransmits the batch, and the shard must take the
/// duplicate-of-applied-batch path and re-ack rather than re-apply.
#[test]
fn dropped_ack_forces_reack_not_reapply() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // Shard 0's send 0 to the coordinator is its Hello; send 1 is the
    // first StageAck.  Losing the ack (not the batch) means the batch
    // was applied — a re-delivery must not double-apply the keys.
    cfg.net = NetFaultModel::seeded(0xACC) .script(0, 2, 1, NetFault::Drop);
    let report = run("ackdrop", &cfg);
    assert_clean(&report, want);
    assert!(report.net.dropped >= 1, "{:?}", report.net);
}

/// Duplicate and delay copies of the same logical staging batch: with
/// the delayed original overtaken by its own retransmission (which is
/// itself duplicated), the same `seq` arrives three ways; dedup by
/// sequence number must keep exactly one application.
#[test]
fn duplicated_and_delayed_copies_of_one_batch_apply_once() {
    let p = 2;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // Edge coordinator→shard-0: send 1 (a staging batch) is delayed
    // past the retransmission timeout, so send 2 is the same batch
    // again — and that retransmission is delivered twice.
    cfg.net = NetFaultModel::seeded(0xD0D0)
        .script(2, 0, 1, NetFault::Delay(6))
        .script(2, 0, 2, NetFault::Duplicate);
    let report = run("dupdelay", &cfg);
    assert_clean(&report, want);
    assert!(report.net.delayed >= 1, "{:?}", report.net);
    assert!(report.net.duplicated >= 1, "{:?}", report.net);
}

/// Partition the *coordinator* mid-heartbeat: beacons and acks die in
/// both directions for a window of sends, false suspicions may spawn
/// replacements, and after the window heals the sort must still finish
/// byte-identical (epoch fencing makes the suspicions harmless).
#[test]
fn coordinator_partition_heals_mid_heartbeat() {
    let p = 3;
    let want = baseline(p);
    let mut cfg = DistConfig::new(p);
    // The coordinator is node P by convention; cut it off for a window
    // of global sends while shards are staging/heartbeating.  This
    // drill is about the partition *healing* (false-suspicion recovery
    // has its own drills above), so give the failure detector enough
    // patience that a loaded host can't turn the window into a
    // recovery storm before shard heartbeats close it.
    cfg.net = NetFaultModel::seeded(0x9A97).partition(p, 40, 110);
    cfg.timeout = std::time::Duration::from_millis(1500);
    cfg.max_recoveries = 64;
    let report = run("coordpart", &cfg);
    assert_clean(&report, want);
    assert!(
        report.net.dropped >= 1,
        "the partition window must have cut live traffic, got {:?}",
        report.net
    );
}
