//! # srm-dist — distributed SRM that survives node death
//!
//! A sharded external sort across `P` simulated nodes, built from the
//! pieces the rest of the workspace already trusts:
//!
//! - **Partitioning** ([`split`]): sample-based range splitters
//!   (Rahn/Sanders/Singler style) route every record to a shard; shard
//!   sorts then never need to talk to each other until the final merge.
//! - **Transport** ([`net`], [`pdisk::NetFaultModel`]): an in-process
//!   message network whose every send passes through a seeded,
//!   scriptable fault model — drops, bounded delays, duplicates, and
//!   timed partitions — so the protocol is tested against the same kind
//!   of adversary the disk stack faces.
//! - **Shards** ([`shard`]): each shard runs an ordinary *checkpointed*
//!   SRM sort (PR 5) over its own pdisk cluster, traced end to end and
//!   replayed through the model checker; every state transition is
//!   journaled in the shard's directory, so a replacement instance can
//!   always pick up where a dead one stopped.
//! - **Robustness** ([`coord`], [`fence`]): heartbeat failure detection,
//!   epoch-stamped envelopes, and storage fencing (the STONITH
//!   analogue) make recovery safe even under false suspicion; the
//!   cross-shard merge *stalls and resumes* across a node death instead
//!   of aborting.
//! - **Process mode** ([`procs`]): `--procs` runs each shard as a real
//!   child process and the `--kill-node` drill becomes an actual
//!   `kill -9`.
//!
//! The headline invariant, enforced by the node-death matrix test:
//! killing any shard at any pass boundary (or mid-merge, or during a
//! channel partition) yields a global output **byte-identical** to the
//! failure-free run, with every shard's recovery trace checker-clean.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod error;
pub mod fence;
pub mod msg;
pub mod net;
pub mod procs;
pub mod shard;
pub mod split;

pub use coord::{distsort, parse_kill_node, DistConfig, DistReport, KillPlan, ShardReport};
pub use error::{DistError, Result};
pub use fence::{FenceFlag, FencedDiskArray};
pub use msg::{Envelope, Msg};
pub use net::{Endpoint, NetSender, NetStats, Network};
pub use procs::{run_procs, shard_run_standalone};
pub use shard::{KillPoint, OutputMeta, ShardPlan};
pub use split::{route, sample_splitters, shard_of};
