//! One shard node: a durable directory plus an ordinary checkpointed
//! SRM sort, driven over the message network (thread mode) or over
//! stdout lines (process mode, see [`crate::procs`]).
//!
//! A shard's entire world lives in its directory:
//!
//! ```text
//! shard-003/
//!   disks/          FileDiskArray cluster (the shard's D disks)
//!   parity.store    rotating-parity sidecar (with `--parity`)
//!   input           journaled input-run descriptor (staging is durable)
//!   manifest[.prev] PR-5 checkpoint manifests (journaled by srm-core)
//!   output          journaled output descriptor + digest (sort finished)
//! ```
//!
//! Because every state transition is journaled (temp + fsync + rename),
//! a **replacement node booted on the same directory** re-derives
//! exactly where its predecessor died: `output` present → serve it;
//! `input` present → resume the sort from the newest valid manifest
//! (rebuilding from parity first when configured); neither → ask the
//! coordinator to re-stage.  All three paths end byte-identical to the
//! failure-free run, because the checkpoint fast-forwards the placement
//! RNG and staging is deterministic.

use crate::error::{DistError, Result};
use crate::fence::{FenceFlag, FencedDiskArray};
use crate::msg::Msg;
use crate::net::{Endpoint, NetSender};
use pdisk::trace::TracingDiskArray;
use pdisk::{
    DiskArray, FaultModel, FaultyDiskArray, FileDiskArray, Geometry, ParityDiskArray, PdiskError,
    RetryPolicy, RetryingDiskArray, StripedRun, U64Record,
};
use srm_core::sort::write_unsorted_input;
use srm_core::{
    read_run, resume_point, scrub_runs, ResumePoint, SortManifest, SrmConfig, SrmError, SrmSorter,
};
use srm_server::{digest_keys, JobRun};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The sentinel a kill drill's observer returns: recognized by the shard
/// as "die now", never surfaced as a real failure.
const KILL_SENTINEL: &str = "shard killed by --kill-node drill";

/// Where a `--kill-node` drill strikes this shard instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die at the given pass boundary (0 = after run formation), after
    /// announcing the pass but *before* the checkpoint snapshot — the
    /// most adversarial instant, since the pass's work is lost.
    Pass(u64),
    /// Die while serving the cross-shard merge, after answering this
    /// many block requests — forcing the merge to stall and resume.
    Merge(u64),
}

/// Everything one shard instance needs to boot.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// This shard's index (also its node ID).
    pub shard: u32,
    /// Total shard count; the coordinator is node `shards`.
    pub shards: u32,
    /// The shard's durable directory.
    pub dir: PathBuf,
    /// Per-shard disk-array geometry.
    pub geom: Geometry,
    /// Per-shard sorter seed (derived deterministically from the spec).
    pub seed: u64,
    /// Start-disk placement policy.
    pub placement: srm_core::Placement,
    /// Run-formation strategy.
    pub formation: srm_core::RunFormation,
    /// Use the pipelined merge engine.
    pub pipeline: bool,
    /// Rotating parity over the shard's disks (enables the
    /// rebuild-from-parity recovery path).
    pub parity: bool,
    /// Transient disk-fault rate injected under the retry layer.
    pub fault_rate: f64,
    /// Seed for the disk fault model.
    pub fault_seed: u64,
    /// Per-disk I/O service delay (benchmark realism).
    pub io_delay: Duration,
    /// Heartbeat interval (also the receive poll granularity).
    pub heartbeat: Duration,
    /// Armed kill drill for *this instance* (replacements boot unarmed).
    pub kill: Option<KillPoint>,
    /// Disk-full drill: this instance's cluster hits ENOSPC on the
    /// given write ordinal.  The resulting fault is sticky and
    /// non-retryable, so the shard surfaces it as a fatal typed error.
    pub fill_write: Option<u64>,
}

impl ShardPlan {
    fn coord(&self) -> u32 {
        self.shards
    }

    /// The shard's sorter configuration (identical across incarnations,
    /// which is what makes recovery byte-identical).
    pub fn srm_config(&self) -> SrmConfig {
        SrmConfig {
            placement: self.placement,
            run_formation: self.formation,
            seed: self.seed,
        }
    }

    /// Path of the journaled input descriptor.
    pub fn input_path(&self) -> PathBuf {
        self.dir.join("input")
    }

    /// Path of the checkpoint manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest")
    }

    /// Path of the journaled output descriptor.
    pub fn output_path(&self) -> PathBuf {
        self.dir.join("output")
    }

    /// Path of the shard's disk cluster.
    pub fn disks_dir(&self) -> PathBuf {
        self.dir.join("disks")
    }

    /// Path of the parity sidecar.
    pub fn parity_store(&self) -> PathBuf {
        self.dir.join("parity.store")
    }
}

/// How a shard instance ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// Ran to completion (shutdown received).
    Completed,
    /// Simulated death: the instance stopped mid-flight without a word
    /// (kill drill or fence), exactly like a crashed process.
    Killed,
}

/// How one sort incarnation ended.
pub enum Outcome {
    /// The kill drill struck: the incarnation is dead, its directory
    /// holds whatever had become durable.
    Killed,
    /// The sort finished; the output descriptor is journaled.
    Done(OutputMeta),
}

/// The durable `output` descriptor: what a replacement (or the
/// cross-shard merge) needs to know about a finished shard sort.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputMeta {
    /// The sorted output run (`None` for an empty shard).
    pub run: Option<StripedRun>,
    /// Records in the run.
    pub records: u64,
    /// FNV-1a digest of the sorted keys.
    pub digest: u64,
    /// Merge passes performed over the whole logical sort.
    pub passes: u64,
    /// Trace events replayed through the model checker.
    pub trace_events: u64,
    /// The finishing incarnation's trace was checker-clean.
    pub trace_clean: bool,
    /// Blocks healed by the parity scrub during recovery.
    pub repaired: u64,
}

impl OutputMeta {
    /// The descriptor of a shard whose partition was empty.
    pub fn empty() -> Self {
        OutputMeta {
            run: None,
            records: 0,
            digest: digest_keys(std::iter::empty()),
            passes: 0,
            trace_events: 0,
            trace_clean: true,
            repaired: 0,
        }
    }

    /// Serialize as the `output` file's `key value` line format.
    pub fn encode(&self) -> String {
        let run = match &self.run {
            Some(r) => JobRun::Striped(r.clone()).encode(),
            None => "empty".to_string(),
        };
        format!(
            "run {run}\nrecords {}\ndigest {:#x}\npasses {}\ntrace-events {}\ntrace-clean {}\nrepaired {}\n",
            self.records, self.digest, self.passes, self.trace_events, self.trace_clean, self.repaired
        )
    }

    /// Parse the `output` file, rejecting malformed lines with typed
    /// errors (a torn descriptor must read as an error, never as a
    /// plausible wrong answer).
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |l: &str| DistError::Io(format!("bad output descriptor line `{l}`"));
        let mut meta = OutputMeta::empty();
        let mut saw_digest = false;
        for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
            let (key, val) = line.split_once(' ').ok_or_else(|| bad(line))?;
            match key {
                "run" => {
                    if val != "empty" {
                        match JobRun::decode(val).map_err(DistError::Job)? {
                            JobRun::Striped(r) => meta.run = Some(r),
                            _ => return Err(bad(line)),
                        }
                    }
                }
                "records" => meta.records = val.parse().map_err(|_| bad(line))?,
                "digest" => {
                    let hex = val.strip_prefix("0x").unwrap_or(val);
                    meta.digest = u64::from_str_radix(hex, 16).map_err(|_| bad(line))?;
                    saw_digest = true;
                }
                "passes" => meta.passes = val.parse().map_err(|_| bad(line))?,
                "trace-events" => meta.trace_events = val.parse().map_err(|_| bad(line))?,
                "trace-clean" => meta.trace_clean = val.parse().map_err(|_| bad(line))?,
                "repaired" => meta.repaired = val.parse().map_err(|_| bad(line))?,
                _ => return Err(bad(line)),
            }
        }
        if !saw_digest {
            return Err(DistError::Io("output descriptor missing digest".into()));
        }
        Ok(meta)
    }
}

/// Write `text` to `path` via temp + fsync + rename, so a crash leaves
/// either the old file or the new one, never a torn hybrid.
pub(crate) fn atomic_write(path: &Path, text: &str) -> Result<()> {
    let io = |e: std::io::Error| DistError::Io(format!("write {}: {e}", path.display()));
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(text.as_bytes()).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)
}

/// Open (or create) the shard's file-backed disk cluster.
///
/// A replacement may race its fenced predecessor for the cluster's
/// `pdisk.lock`: the fence guarantees the old instance does no further
/// I/O, but its handle is only released when its thread observes the
/// fence and drops the array — so opening retries briefly, modelling
/// "wait for the old lease to expire".
pub(crate) fn open_base(plan: &ShardPlan, create: bool) -> Result<FileDiskArray<U64Record>> {
    let disks = plan.disks_dir();
    if create {
        if disks.exists() {
            std::fs::remove_dir_all(&disks)
                .map_err(|e| DistError::Io(format!("clear {}: {e}", disks.display())))?;
        }
        let store = plan.parity_store();
        if store.exists() {
            std::fs::remove_file(&store)
                .map_err(|e| DistError::Io(format!("clear {}: {e}", store.display())))?;
        }
        let arr = FileDiskArray::create(plan.geom, &disks)?;
        arr.set_io_delay(plan.io_delay);
        return Ok(arr);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match FileDiskArray::open(plan.geom, &disks) {
            Ok(arr) => {
                arr.set_io_delay(plan.io_delay);
                return Ok(arr);
            }
            Err(PdiskError::ArrayLocked { .. }) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// What the booting shard found durable, and therefore what it will do.
pub(crate) enum Boot {
    /// Output descriptor present: serve it.
    Serve(OutputMeta),
    /// Input present: sort (resuming from the manifest when one exists).
    Sort(StripedRun),
    /// Empty-bucket marker present: nothing to sort, nothing to serve.
    Empty,
    /// Nothing durable: ask the coordinator to stage.
    Stage,
}

pub(crate) fn inspect_dir(plan: &ShardPlan) -> Result<Boot> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| DistError::Io(format!("read {}: {e}", p.display())))
    };
    if plan.output_path().exists() {
        return Ok(Boot::Serve(OutputMeta::parse(&read(&plan.output_path())?)?));
    }
    if plan.input_path().exists() {
        let text = read(&plan.input_path())?;
        let line = text.trim();
        if line == "empty" {
            return Ok(Boot::Empty);
        }
        match JobRun::decode(line).map_err(DistError::Job)? {
            JobRun::Striped(r) => return Ok(Boot::Sort(r)),
            _ => return Err(DistError::Io("input descriptor is not striped".into())),
        }
    }
    Ok(Boot::Stage)
}

/// What a sort incarnation starts from.
pub(crate) enum SortInput {
    /// Fresh keys to stage onto a brand-new cluster.
    Fresh(Vec<U64Record>),
    /// A durable input descriptor on an existing cluster (resume boot).
    Durable(StripedRun),
}

/// Run one sort incarnation end to end: build the protective stack,
/// rebuild from parity when recovering, trace the whole thing, sort with
/// checkpoints, model-check the trace, and journal the output
/// descriptor.  Drops every array handle before returning, so the
/// caller (serve loop or a replacement) can reopen the cluster.
///
/// `on_staged(records)` fires once the input descriptor is durable;
/// `on_pass(pass)` fires at every pass boundary *before* the snapshot —
/// which is also where a [`KillPoint::Pass`] drill strikes.
pub(crate) fn sort_shard(
    plan: &ShardPlan,
    fence: &FenceFlag,
    input: SortInput,
    on_staged: &mut dyn FnMut(u64),
    on_pass: &mut dyn FnMut(u64),
) -> Result<Outcome> {
    let base = open_base(plan, matches!(input, SortInput::Fresh(_)))?;
    if plan.parity {
        let stack = parity_stack(plan, base)?;
        sort_instance(stack, plan, fence, input, on_staged, on_pass)
    } else if plan.fault_rate > 0.0 || plan.fill_write.is_some() {
        let stack =
            RetryingDiskArray::new(FaultyDiskArray::new(base, fault_model(plan)), RetryPolicy::default());
        sort_instance(stack, plan, fence, input, on_staged, on_pass)
    } else {
        sort_instance(base, plan, fence, input, on_staged, on_pass)
    }
}

/// The shard's disk fault model: the plan's random transient regime,
/// plus the armed disk-full drill if any.
fn fault_model(plan: &ShardPlan) -> FaultModel {
    let mut model = FaultModel::random(plan.fault_seed).with_rate(plan.fault_rate);
    if let Some(n) = plan.fill_write {
        model = model.fill_at(pdisk::FaultOp::Write, n);
    }
    model
}

/// The protective stack of a parity shard: retry over rotating parity
/// over injected faults over the files.  Every reader of a parity
/// cluster must go through this — the rotating layout shifts physical
/// slots, so a bare [`FileDiskArray`] read of a run's *logical* address
/// would land on the wrong frame (or a reserved parity slot).
type ParityStack =
    RetryingDiskArray<U64Record, ParityDiskArray<U64Record, FaultyDiskArray<U64Record, FileDiskArray<U64Record>>>>;

pub(crate) fn parity_stack(plan: &ShardPlan, base: FileDiskArray<U64Record>) -> Result<ParityStack> {
    let faulty = FaultyDiskArray::new(base, fault_model(plan));
    let pa = ParityDiskArray::new(faulty)?.with_store(plan.parity_store())?;
    Ok(RetryingDiskArray::new(pa, RetryPolicy::default()))
}

/// Read a shard's finished output run through whatever stack its plan
/// mandates (process-mode merge reads the shard directories directly).
pub(crate) fn read_output_run(plan: &ShardPlan, run: &StripedRun) -> Result<Vec<U64Record>> {
    if plan.parity {
        let mut stack = parity_stack(plan, open_base(plan, false)?)?;
        Ok(read_run(&mut stack, run)?)
    } else {
        let mut base = open_base(plan, false)?;
        Ok(read_run(&mut base, run)?)
    }
}

fn sort_instance<A: DiskArray<U64Record>>(
    stack: A,
    plan: &ShardPlan,
    fence: &FenceFlag,
    input: SortInput,
    on_staged: &mut dyn FnMut(u64),
    on_pass: &mut dyn FnMut(u64),
) -> Result<Outcome> {
    let mut fenced = FencedDiskArray::new(stack, fence.clone());

    // Recovery path 2 (`--parity`): before resuming, scrub every run the
    // resume can still touch — the staged input (a pass-0 resume re-sorts
    // it) and whatever the newest manifest keeps live — healing any block
    // the dead node's storage lost; then zero the counters so the traced
    // sort's stats match its trace exactly.
    let mut repaired = 0u64;
    if plan.parity {
        if let SortInput::Durable(run) = &input {
            let mut live = vec![run.clone()];
            if let Some(m) = SortManifest::load_latest(&plan.manifest_path())? {
                live.extend(m.runs);
            }
            let report = scrub_runs(&mut fenced, &live)?;
            repaired = report.repaired;
            if report.unrepairable > 0 {
                return Err(DistError::Shard {
                    shard: plan.shard,
                    msg: format!(
                        "{} block(s) unrepairable even with parity",
                        report.unrepairable
                    ),
                });
            }
        }
    }
    fenced.reset_stats();

    let mut traced = TracingDiskArray::new(fenced);

    // Stage fresh input inside the trace (exactly like the CLI), making
    // the descriptor durable *before* sorting so a death between staging
    // and the first checkpoint resumes instead of re-staging.
    let input_run = match input {
        SortInput::Fresh(records) => {
            let run = write_unsorted_input(&mut traced, &records)?;
            traced.sync()?;
            atomic_write(&plan.input_path(), &JobRun::Striped(run.clone()).encode())?;
            on_staged(run.records);
            run
        }
        SortInput::Durable(run) => run,
    };

    let sorter = SrmSorter::new(plan.srm_config()).with_pipeline(plan.pipeline);
    let kill_at = match plan.kill {
        Some(KillPoint::Pass(p)) => Some(p),
        _ => None,
    };
    let manifest = plan.manifest_path();
    let sorted = sorter.sort_observed(&mut traced, &input_run, Some(&manifest), |pass, _a| {
        on_pass(pass);
        if kill_at == Some(pass) {
            return Err(SrmError::Internal(KILL_SENTINEL.into()));
        }
        Ok(())
    });
    let (run, report) = match sorted {
        Ok(ok) => ok,
        Err(SrmError::Internal(msg)) if msg == KILL_SENTINEL => return Ok(Outcome::Killed),
        Err(e) => return Err(e.into()),
    };

    // Digest the output (the verification read is part of the trace, as
    // in the CLI), then replay the whole incarnation's trace through the
    // model checker: staging + sort + verification must all obey the
    // Vitter–Shriver rules.
    let out = read_run(&mut traced, &run)?;
    let digest = digest_keys(out.iter().map(|r| r.0));
    let stats = traced.stats();
    let trace = traced.take_trace();
    let summary = modelcheck::check_trace(plan.geom, &trace)
        .map_err(|v| DistError::Model(format!("shard {}: {v}", plan.shard)))?;
    modelcheck::check_stats(&trace, &stats)
        .map_err(|v| DistError::Model(format!("shard {}: trace/stats drift: {v}", plan.shard)))?;

    let meta = OutputMeta {
        run: Some(run),
        records: input_run.records,
        digest,
        passes: report.merge_passes,
        trace_events: summary.events,
        trace_clean: true,
        repaired,
    };
    atomic_write(&plan.output_path(), &meta.encode())?;
    Ok(Outcome::Done(meta))
}

// ─── thread-mode wiring: heartbeats, staging, serving ────────────────────

/// Spawn the heartbeat thread: beacons every interval until `alive`
/// clears.  Runs beside the sort so a compute-bound shard still beacons.
/// Must never block on I/O or a channel — a stuck beacon looks like a
/// dead shard — which srmlint's blocking pass enforces.
#[srmlint::worker_entry]
fn spawn_heartbeat(
    tx: NetSender,
    coord: u32,
    epoch: u64,
    alive: Arc<AtomicBool>,
    interval: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while alive.load(Ordering::SeqCst) {
            tx.send(coord, epoch, Msg::Heartbeat);
            std::thread::sleep(interval);
        }
    })
}

/// Is this error the fence talking?  A fenced instance has already been
/// declared dead by the coordinator — reporting its I/O failure would be
/// a zombie speaking after its own funeral, so such exits are silent.
fn is_fence_error(e: &DistError) -> bool {
    fn fenced_pdisk(p: &PdiskError) -> bool {
        match p {
            PdiskError::Unrecoverable(m) => m.contains("fenced"),
            PdiskError::RetriesExhausted { last, .. } => fenced_pdisk(last),
            _ => false,
        }
    }
    match e {
        DistError::Disk(p) => fenced_pdisk(p),
        DistError::Sort(SrmError::Disk(p)) => fenced_pdisk(p),
        _ => false,
    }
}

/// Thread entry point for one shard instance.  Runs the state machine,
/// reporting fatal errors to the coordinator; simulated deaths (drill or
/// fence) end silently, exactly like a crashed process.
pub fn run_shard(plan: ShardPlan, ep: Endpoint, epoch: u64, fence: FenceFlag) {
    let alive = Arc::new(AtomicBool::new(true));
    let hb = spawn_heartbeat(
        ep.sender(),
        plan.coord(),
        epoch,
        Arc::clone(&alive),
        plan.heartbeat,
    );
    let result = shard_main(&plan, &ep, epoch, &fence);
    alive.store(false, Ordering::SeqCst);
    if let Err(e) = result {
        if !is_fence_error(&e) {
            ep.send(plan.coord(), epoch, Msg::Fatal { msg: e.to_string() });
        }
    }
    let _ = hb.join();
}

fn shard_main(plan: &ShardPlan, ep: &Endpoint, epoch: u64, fence: &FenceFlag) -> Result<Exit> {
    std::fs::create_dir_all(&plan.dir)
        .map_err(|e| DistError::Io(format!("create {}: {e}", plan.dir.display())))?;
    let coord = plan.coord();
    let hello = |needs_input: bool, resume_pass: Option<u64>| {
        ep.send(
            coord,
            epoch,
            Msg::Hello {
                needs_input,
                resume_pass,
            },
        );
    };
    let input = match inspect_dir(plan)? {
        Boot::Serve(meta) => {
            hello(false, None);
            announce_done(plan, ep, epoch, &meta);
            return serve(plan, ep, epoch, fence, &meta);
        }
        Boot::Empty => {
            hello(false, None);
            let meta = OutputMeta::empty();
            atomic_write(&plan.output_path(), &meta.encode())?;
            announce_done(plan, ep, epoch, &meta);
            return serve(plan, ep, epoch, fence, &meta);
        }
        Boot::Sort(input_run) => {
            // Refuse early if the manifest belongs to a different sort —
            // it would fail identically on every resume attempt.
            let pass = match resume_point(
                &plan.srm_config(),
                plan.geom,
                input_run.records,
                &plan.manifest_path(),
            )? {
                ResumePoint::Checkpointed { pass, .. } => Some(pass),
                _ => None,
            };
            hello(false, pass);
            SortInput::Durable(input_run)
        }
        Boot::Stage => {
            hello(true, None);
            let keys = match stage_loop(plan, ep, epoch, fence)? {
                Some(keys) => keys,
                None => return Ok(Exit::Killed),
            };
            if keys.is_empty() {
                atomic_write(&plan.input_path(), "empty")?;
                ep.send(coord, epoch, Msg::Staged { records: 0 });
                let meta = OutputMeta::empty();
                atomic_write(&plan.output_path(), &meta.encode())?;
                announce_done(plan, ep, epoch, &meta);
                return serve(plan, ep, epoch, fence, &meta);
            }
            SortInput::Fresh(keys.into_iter().map(U64Record).collect())
        }
    };

    let mut on_staged = |records: u64| ep.send(coord, epoch, Msg::Staged { records });
    let mut on_pass = |pass: u64| ep.send(coord, epoch, Msg::Pass { pass });
    match sort_shard(plan, fence, input, &mut on_staged, &mut on_pass)? {
        Outcome::Killed => Ok(Exit::Killed),
        Outcome::Done(meta) => {
            announce_done(plan, ep, epoch, &meta);
            serve(plan, ep, epoch, fence, &meta)
        }
    }
}

fn announce_done(plan: &ShardPlan, ep: &Endpoint, epoch: u64, meta: &OutputMeta) {
    ep.send(
        plan.coord(),
        epoch,
        Msg::SortDone {
            records: meta.records,
            blocks: meta.run.as_ref().map_or(0, |r| r.len_blocks),
            passes: meta.passes,
            digest: meta.digest,
            trace_events: meta.trace_events,
            trace_clean: meta.trace_clean,
            repaired: meta.repaired,
        },
    );
}

/// Receive the shard's partition, stop-and-wait, deduplicating by batch
/// sequence number so dropped/duplicated/delayed batches are all safe.
/// Returns `None` on a silent death (fence or shutdown mid-staging).
fn stage_loop(
    plan: &ShardPlan,
    ep: &Endpoint,
    epoch: u64,
    fence: &FenceFlag,
) -> Result<Option<Vec<u64>>> {
    let coord = plan.coord();
    let mut keys: Vec<u64> = Vec::new();
    let mut next_seq = 0u64;
    let mut idle = 0u32;
    loop {
        if fence.is_fired() {
            return Ok(None);
        }
        let Some(env) = ep.recv_timeout(plan.heartbeat) else {
            // The Hello itself can be lost (drop or partition), and the
            // coordinator has no way to probe for it — a silent shard in
            // `Waiting` looks identical to one mid-sort.  Until the first
            // batch proves the Hello landed, keep re-introducing
            // ourselves; the coordinator treats duplicates as no-ops.
            if next_seq == 0 {
                idle += 1;
                if idle >= 4 {
                    idle = 0;
                    ep.send(
                        coord,
                        epoch,
                        Msg::Hello {
                            needs_input: true,
                            resume_pass: None,
                        },
                    );
                }
            }
            continue;
        };
        if env.epoch != epoch {
            continue; // stale traffic for a predecessor or successor
        }
        match env.msg {
            Msg::Stage { seq, keys: batch, last } => {
                if seq == next_seq {
                    keys.extend_from_slice(&batch);
                    next_seq += 1;
                    ep.send(coord, epoch, Msg::StageAck { seq });
                    if last {
                        return Ok(Some(keys));
                    }
                } else if seq < next_seq {
                    // Duplicate of an already-applied batch: re-ack (the
                    // first ack may have been dropped)...
                    ep.send(coord, epoch, Msg::StageAck { seq });
                    // ...and if it was the final batch, its ack's loss
                    // means staging already finished.
                    if last && seq + 1 == next_seq {
                        return Ok(Some(keys));
                    }
                }
                // seq > next_seq: a delayed batch arrived early; the
                // coordinator will retry the one we actually need.
            }
            Msg::Shutdown => return Ok(None),
            // ReadBlock cannot arrive before staging finishes (the
            // coordinator is still batching), and the shard-to-
            // coordinator kinds never land on a shard mailbox; named
            // rather than wildcarded so the protocol pass proves no
            // message kind is ever silently swallowed.
            Msg::ReadBlock { .. }
            | Msg::Hello { .. }
            | Msg::StageAck { .. }
            | Msg::Staged { .. }
            | Msg::Heartbeat
            | Msg::Pass { .. }
            | Msg::SortDone { .. }
            | Msg::BlockData { .. }
            | Msg::Fatal { .. } => {}
        }
    }
}

/// Serve the finished sort to the cross-shard merge.  Serving reopens
/// the cluster (the sort incarnation dropped its stack when it
/// journaled the output) through the plan's full read stack — a parity
/// cluster's run addresses are logical, so a bare reopen would read the
/// wrong physical slots.  Reads are idempotent, post-trace, and still
/// fenced so a superseded server cannot answer for its replacement.
fn serve(
    plan: &ShardPlan,
    ep: &Endpoint,
    epoch: u64,
    fence: &FenceFlag,
    meta: &OutputMeta,
) -> Result<Exit> {
    if meta.run.is_none() {
        return serve_loop::<FileDiskArray<U64Record>>(plan, ep, epoch, fence, meta, None);
    }
    if plan.parity {
        let stack = parity_stack(plan, open_base(plan, false)?)?;
        serve_loop(plan, ep, epoch, fence, meta, Some(stack))
    } else {
        serve_loop(plan, ep, epoch, fence, meta, Some(open_base(plan, false)?))
    }
}

fn serve_loop<A: DiskArray<U64Record>>(
    plan: &ShardPlan,
    ep: &Endpoint,
    epoch: u64,
    fence: &FenceFlag,
    meta: &OutputMeta,
    array: Option<A>,
) -> Result<Exit> {
    let coord = plan.coord();
    let mut array = array.map(|a| FencedDiskArray::new(a, fence.clone()));
    let mut served = 0u64;
    let mut heard = false;
    let mut idle = 0u32;
    loop {
        if fence.is_fired() {
            return Ok(Exit::Killed);
        }
        let Some(env) = ep.recv_timeout(plan.heartbeat) else {
            // The one-shot `SortDone` can be lost to the channel; until
            // the coordinator speaks to this epoch (a merge read or a
            // shutdown — either proves it knows we are serving),
            // re-announce so it cannot wait forever on a done shard.
            if !heard {
                idle += 1;
                if idle >= 4 {
                    idle = 0;
                    announce_done(plan, ep, epoch, meta);
                }
            }
            continue;
        };
        if env.epoch != epoch {
            continue;
        }
        heard = true;
        match env.msg {
            Msg::ReadBlock { req, block } => {
                let (Some(run), Some(arr)) = (&meta.run, array.as_mut()) else {
                    continue;
                };
                if block >= run.len_blocks {
                    continue;
                }
                let blocks = arr.read(&[run.addr_of(block)])?;
                let keys: Vec<u64> = blocks
                    .first()
                    .map(|b| b.records.iter().map(|r| r.0).collect())
                    .unwrap_or_default();
                ep.send(coord, epoch, Msg::BlockData { req, block, keys });
                served += 1;
                if let Some(KillPoint::Merge(after)) = plan.kill {
                    if served >= after {
                        return Ok(Exit::Killed);
                    }
                }
            }
            Msg::Shutdown => return Ok(Exit::Completed),
            // A serving shard's input is already durable, so Stage is a
            // stale retransmit; the shard-to-coordinator kinds never
            // land on a shard mailbox.  Named rather than wildcarded so
            // the protocol pass proves no message kind is swallowed.
            Msg::Stage { .. }
            | Msg::Hello { .. }
            | Msg::StageAck { .. }
            | Msg::Staged { .. }
            | Msg::Heartbeat
            | Msg::Pass { .. }
            | Msg::SortDone { .. }
            | Msg::BlockData { .. }
            | Msg::Fatal { .. } => {}
        }
    }
}
