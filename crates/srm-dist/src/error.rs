//! Typed errors for the distributed sort.

use pdisk::PdiskError;
use srm_core::SrmError;
use srm_server::JobError;

/// Everything that can go wrong coordinating a distributed sort.
#[derive(Debug)]
#[non_exhaustive]
pub enum DistError {
    /// A configuration cannot be run (bad shard count, spec mismatch…).
    Config(String),
    /// The network layer failed in a way retries could not absorb
    /// (e.g. an RPC exhausted its attempts against a live node).
    Net(String),
    /// A shard failed terminally (its replacement also failed, or its
    /// durable state belongs to a different sort).
    Shard {
        /// Which shard.
        shard: u32,
        /// What happened.
        msg: String,
    },
    /// Underlying disk-model failure on the coordinator's own array.
    Disk(PdiskError),
    /// A shard-local sort failure surfaced to the coordinator.
    Sort(SrmError),
    /// Spec-level failure (validation, encode/decode).
    Job(JobError),
    /// Filesystem failure around the durable shard directories.
    Io(String),
    /// A shard's trace violated the model checker's invariants.
    Model(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Config(m) => write!(f, "distsort configuration error: {m}"),
            DistError::Net(m) => write!(f, "network error: {m}"),
            DistError::Shard { shard, msg } => write!(f, "shard {shard} failed: {msg}"),
            DistError::Disk(e) => write!(f, "disk error: {e}"),
            DistError::Sort(e) => write!(f, "sort error: {e}"),
            DistError::Job(e) => write!(f, "job error: {e}"),
            DistError::Io(m) => write!(f, "i/o error: {m}"),
            DistError::Model(m) => write!(f, "model-rule violation: {m}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Disk(e) => Some(e),
            DistError::Sort(e) => Some(e),
            DistError::Job(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdiskError> for DistError {
    fn from(e: PdiskError) -> Self {
        DistError::Disk(e)
    }
}

impl From<SrmError> for DistError {
    fn from(e: SrmError) -> Self {
        DistError::Sort(e)
    }
}

impl From<JobError> for DistError {
    fn from(e: JobError) -> Self {
        DistError::Job(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, DistError>;
