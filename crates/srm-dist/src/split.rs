//! Sample-based range partitioning (Rahn/Sanders/Singler): the
//! coordinator samples the input, sorts the sample, and picks `P − 1`
//! splitters at the sample quantiles; shard `i` owns the key range
//! `[splitter[i-1], splitter[i])` (half-open, first and last unbounded).
//!
//! Splitters are a pure function of `(input, shards, seed)`, so a
//! recovered run — which regenerates the input from the spec — routes
//! every record to the same shard the failure-free run did.

use pdisk::U64Record;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples drawn per shard (capped by the input size).
const SAMPLE_PER_SHARD: usize = 64;

/// Pick `shards − 1` splitter keys from a deterministic sample.
pub fn sample_splitters(records: &[U64Record], shards: u32, seed: u64) -> Vec<u64> {
    let shards = shards as usize;
    if shards <= 1 || records.is_empty() {
        return Vec::new();
    }
    let want = (SAMPLE_PER_SHARD * shards).min(records.len());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5911_77E5_D157_5027);
    let mut sample: Vec<u64> = (0..want)
        .map(|_| records[rng.random_range(0..records.len())].0)
        .collect();
    sample.sort_unstable();
    (1..shards)
        .map(|i| sample[i * sample.len() / shards])
        .collect()
}

/// Which shard owns `key` under `splitters` (monotone in `key`).
pub fn shard_of(splitters: &[u64], key: u64) -> usize {
    splitters.partition_point(|s| *s <= key)
}

/// Route every record to its shard's bucket (buckets may be empty).
pub fn route(records: &[U64Record], splitters: &[u64], shards: u32) -> Vec<Vec<u64>> {
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); shards as usize];
    for r in records {
        let s = shard_of(splitters, r.0).min(shards as usize - 1);
        buckets[s].push(r.0);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use srm_server::generate_records;

    #[test]
    fn single_shard_needs_no_splitters() {
        let recs = generate_records(100, 1);
        assert!(sample_splitters(&recs, 1, 7).is_empty());
        let buckets = route(&recs, &[], 1);
        assert_eq!(buckets[0].len(), 100);
    }

    #[test]
    fn splitters_are_deterministic_and_sorted() {
        let recs = generate_records(5000, 0xC11_5EED);
        let a = sample_splitters(&recs, 4, 9);
        let b = sample_splitters(&recs, 4, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert_ne!(a, sample_splitters(&recs, 4, 10), "seed must matter");
    }

    #[test]
    fn routing_is_total_and_range_disjoint() {
        let recs = generate_records(8000, 3);
        let splitters = sample_splitters(&recs, 4, 3);
        let buckets = route(&recs, &splitters, 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 8000);
        // Every key in bucket i is < every splitter above it and >= the
        // one below: concatenating per-bucket maxima/minima is ordered.
        for (i, b) in buckets.iter().enumerate() {
            for &k in b {
                if i > 0 {
                    assert!(k >= splitters[i - 1]);
                }
                if i < splitters.len() {
                    assert!(k < splitters[i]);
                }
            }
        }
        // Sampled quantiles of a uniform input balance reasonably.
        for b in &buckets {
            assert!(b.len() > 800, "degenerate bucket: {}", b.len());
        }
    }
}
