//! Storage-level fencing: the STONITH analogue for a suspected node.
//!
//! Failure detectors lie: a partition can make a perfectly healthy shard
//! look dead.  Before spawning a replacement on the shard's directory,
//! the coordinator **fires the old instance's fence** — after which every
//! disk operation of the superseded instance fails with a non-retryable
//! error, so it can never write to (or hold locks on) storage its
//! successor now owns.  Combined with epoch-stamped envelopes (stale
//! epochs discarded) this makes a false suspicion harmless: the old
//! instance aborts at its next I/O, the replacement resumes from the
//! journaled checkpoint, and the output is byte-identical.

use pdisk::backend::{ReadTicket, RedundancyInfo, ScrubOutcome, WriteTicket};
use pdisk::trace::TraceSink;
use pdisk::{
    Block, BlockAddr, BufferPool, DiskArray, DiskId, Geometry, IoStats, PdiskError, Record,
};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cloneable fence token: the coordinator keeps one clone, the fenced
/// array holds another.
#[derive(Debug, Clone, Default)]
pub struct FenceFlag(Arc<AtomicBool>);

impl FenceFlag {
    /// A fence that has not fired.
    pub fn new() -> Self {
        FenceFlag::default()
    }

    /// Fire the fence: every subsequent disk operation of the wrapped
    /// array fails. Irreversible.
    pub fn fire(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has the fence fired?
    pub fn is_fired(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A [`DiskArray`] wrapper that refuses all I/O once its fence fires.
#[derive(Debug)]
pub struct FencedDiskArray<R: Record, A: DiskArray<R>> {
    inner: A,
    fence: FenceFlag,
    _records: PhantomData<fn() -> R>,
}

impl<R: Record, A: DiskArray<R>> FencedDiskArray<R, A> {
    /// Wrap `inner`; I/O flows until `fence.fire()`.
    pub fn new(inner: A, fence: FenceFlag) -> Self {
        FencedDiskArray {
            inner,
            fence,
            _records: PhantomData,
        }
    }

    /// The wrapped array.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    fn check(&self) -> Result<(), PdiskError> {
        if self.fence.is_fired() {
            Err(PdiskError::Unrecoverable(
                "node fenced: a replacement owns this storage".into(),
            ))
        } else {
            Ok(())
        }
    }
}

impl<R: Record, A: DiskArray<R>> DiskArray<R> for FencedDiskArray<R, A> {
    fn geometry(&self) -> Geometry {
        self.inner.geometry()
    }

    fn read(&mut self, addrs: &[BlockAddr]) -> Result<Vec<Block<R>>, PdiskError> {
        self.check()?;
        self.inner.read(addrs)
    }

    fn write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<(), PdiskError> {
        self.check()?;
        self.inner.write(writes)
    }

    fn alloc_contiguous(&mut self, disk: DiskId, count: u64) -> Result<u64, PdiskError> {
        self.check()?;
        self.inner.alloc_contiguous(disk, count)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn redundancy(&self) -> Option<RedundancyInfo> {
        self.inner.redundancy()
    }

    fn install_trace(&mut self, sink: TraceSink) {
        self.inner.install_trace(sink)
    }

    fn trace_sink(&self) -> Option<&TraceSink> {
        self.inner.trace_sink()
    }

    fn submit_read(&mut self, addrs: &[BlockAddr]) -> Result<ReadTicket<R>, PdiskError> {
        self.check()?;
        self.inner.submit_read(addrs)
    }

    fn complete_read(&mut self, ticket: ReadTicket<R>) -> Result<Vec<Block<R>>, PdiskError> {
        self.check()?;
        self.inner.complete_read(ticket)
    }

    fn submit_write(&mut self, writes: Vec<(BlockAddr, Block<R>)>) -> Result<WriteTicket, PdiskError> {
        self.check()?;
        self.inner.submit_write(writes)
    }

    fn complete_write(&mut self, ticket: WriteTicket) -> Result<(), PdiskError> {
        self.check()?;
        self.inner.complete_write(ticket)
    }

    fn sync(&mut self) -> Result<(), PdiskError> {
        self.check()?;
        self.inner.sync()
    }

    fn scrub_block(&mut self, addr: BlockAddr) -> Result<ScrubOutcome, PdiskError> {
        self.check()?;
        self.inner.scrub_block(addr)
    }

    fn install_pool(&mut self, pool: BufferPool<R>) {
        self.inner.install_pool(pool)
    }

    fn buffer_pool(&self) -> Option<&BufferPool<R>> {
        self.inner.buffer_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::{MemDiskArray, U64Record};

    #[test]
    fn fence_cuts_off_all_io_irreversibly() {
        let geom = Geometry::new(2, 4, 64).unwrap();
        let fence = FenceFlag::new();
        let mut arr: FencedDiskArray<U64Record, _> =
            FencedDiskArray::new(MemDiskArray::new(geom), fence.clone());
        let off = arr.alloc_contiguous(DiskId(0), 1).unwrap();
        let addr = BlockAddr {
            disk: DiskId(0),
            offset: off,
        };
        let block = Block::new(vec![U64Record(7)], pdisk::Forecast::Next(0));
        arr.write(vec![(addr, block)]).unwrap();
        assert!(arr.read(&[addr]).is_ok());
        assert!(!fence.is_fired());

        fence.fire();
        assert!(fence.is_fired());
        let err = arr.read(&[addr]).unwrap_err();
        assert!(
            matches!(err, PdiskError::Unrecoverable(_)),
            "fenced I/O must be non-retryable, got {err}"
        );
        assert!(!err.is_retryable());
        assert!(arr.write(vec![]).is_err(), "even empty writes are fenced");
        assert!(arr.sync().is_err());
        // Geometry and stats remain observable (diagnostics only).
        assert_eq!(arr.geometry(), geom);
    }
}
