//! Process mode (`--procs`): each shard is a real child `srm` process,
//! so node death is a genuine `SIGKILL`, not a simulation.
//!
//! The parent routes each shard's partition to a durable `keys` file in
//! the shard's directory (the staging channel of thread mode, made
//! trivially reliable), writes the job spec and dist settings to plan
//! files at the root, and spawns one `srm shard-run --root R --shard I`
//! child per shard.  Children speak a line protocol on stdout:
//!
//! ```text
//! PASS <k>      pass boundary k reached (before its snapshot)
//! KILLME <k>    armed drill boundary reached; child parks until killed
//! DONE          sort finished; the output descriptor is journaled
//! ERR <msg>     unrecoverable failure
//! ```
//!
//! The `--kill-node N@P` drill arms child `N`: at boundary `P` it prints
//! `KILLME` and parks *before the checkpoint snapshot*, and the parent
//! answers with `kill -9` — after which a replacement child is spawned
//! on the same directory and resumes from the journaled manifest,
//! exactly like thread mode.  Any child that dies without `DONE` (drill
//! or otherwise) is likewise replaced, up to the recovery cap.
//!
//! After every child reports `DONE`, the parent merges the shard outputs
//! directly from their directories (children have exited; their clusters'
//! advisory locks are free) into the global output run.

use crate::coord::{plan_for, DistConfig, DistReport, KillPlan, ShardReport};
use crate::error::{DistError, Result};
use crate::fence::FenceFlag;
use crate::net::NetStats;
use crate::shard::{
    atomic_write, inspect_dir, read_output_run, sort_shard, Boot, KillPoint, Outcome, OutputMeta,
    ShardPlan, SortInput,
};
use pdisk::{DiskArray, DiskId, FileDiskArray, U64Record};
use srm_core::RunWriter;
use srm_server::{digest_keys, expected_digest, generate_records, JobSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// One line of the child protocol, tagged with its shard.
enum Event {
    Pass,
    KillMe(u32),
    Done(u32),
    Err(u32, String),
    /// Child stdout closed: the process is gone (killed or exited).
    Eof(u32),
}

/// Write the plan files a `shard-run` child reads: the job spec and the
/// dist settings, both in the `key value` line format.
fn write_plan(spec: &JobSpec, cfg: &DistConfig, root: &Path) -> Result<()> {
    atomic_write(&root.join("spec"), &spec.encode())?;
    let dist = format!(
        "shards {}\nparity {}\nio-delay-us {}\n",
        cfg.shards,
        cfg.parity,
        cfg.io_delay.as_micros()
    );
    atomic_write(&root.join("dist"), &dist)
}

/// Read the plan files back (child side).
fn read_plan(root: &Path) -> Result<(JobSpec, DistConfig)> {
    let read = |name: &str| {
        let p = root.join(name);
        std::fs::read_to_string(&p)
            .map_err(|e| DistError::Io(format!("read {}: {e}", p.display())))
    };
    let spec = JobSpec::decode(&read("spec")?).map_err(DistError::Job)?;
    let mut cfg = DistConfig::new(1);
    for line in read("dist")?.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let bad = || DistError::Io(format!("bad dist plan line `{line}`"));
        let (k, v) = line.split_once(' ').ok_or_else(bad)?;
        match k {
            "shards" => cfg.shards = v.parse().map_err(|_| bad())?,
            "parity" => cfg.parity = v.parse().map_err(|_| bad())?,
            "io-delay-us" => {
                cfg.io_delay = Duration::from_micros(v.parse().map_err(|_| bad())?)
            }
            _ => return Err(bad()),
        }
    }
    Ok((spec, cfg))
}

fn keys_path(plan: &ShardPlan) -> PathBuf {
    plan.dir.join("keys")
}

/// Entry point of the hidden `srm shard-run` subcommand: run one shard
/// incarnation in this process, speaking the stdout line protocol.
/// `arm_kill` is the drill boundary (first incarnation of the drill
/// target only).
pub fn shard_run_standalone(root: &Path, shard: u32, arm_kill: Option<u64>) -> Result<()> {
    let (spec, cfg) = read_plan(root)?;
    let geom = spec.geometry()?;
    let plan = plan_for(&spec, &cfg, geom, root, shard, None);
    let say = |line: String| {
        let mut out = std::io::stdout();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    };

    let input = match inspect_dir(&plan)? {
        Boot::Serve(_) | Boot::Empty => {
            // Output already durable (a replacement of a shard that died
            // after finishing): nothing to redo.
            say("DONE".into());
            return Ok(());
        }
        Boot::Sort(run) => SortInput::Durable(run),
        Boot::Stage => {
            let path = keys_path(&plan);
            let text = std::fs::read_to_string(&path)
                .map_err(|e| DistError::Io(format!("read {}: {e}", path.display())))?;
            let mut keys = Vec::new();
            for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
                keys.push(line.parse::<u64>().map_err(|_| {
                    DistError::Io(format!("bad key line `{line}` in {}", path.display()))
                })?);
            }
            if keys.is_empty() {
                atomic_write(&plan.input_path(), "empty")?;
                atomic_write(&plan.output_path(), &OutputMeta::empty().encode())?;
                say("DONE".into());
                return Ok(());
            }
            SortInput::Fresh(keys.into_iter().map(U64Record).collect())
        }
    };

    let fence = FenceFlag::new(); // never fired: death here is a real SIGKILL
    let mut on_staged = |_records: u64| {};
    let mut on_pass = |pass: u64| {
        if arm_kill == Some(pass) {
            // Park before the snapshot and wait for the parent's kill -9:
            // the most adversarial death, with this pass's work unsaved.
            say(format!("KILLME {pass}"));
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        say(format!("PASS {pass}"));
    };
    match sort_shard(&plan, &fence, input, &mut on_staged, &mut on_pass)? {
        Outcome::Done(_) => {
            say("DONE".into());
            Ok(())
        }
        // Unreachable: plan.kill is None in process mode (the drill is
        // the parent's SIGKILL), but handle it as a clean exit anyway.
        Outcome::Killed => Ok(()),
    }
}

/// Spawn one shard child and a thread pumping its stdout into `events`.
fn spawn_child(
    bin: &Path,
    root: &Path,
    shard: u32,
    arm_kill: Option<u64>,
    events: &Sender<Event>,
) -> Result<Child> {
    let mut cmd = Command::new(bin);
    cmd.arg("shard-run")
        .arg("--root")
        .arg(root)
        .arg("--shard")
        .arg(shard.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(pass) = arm_kill {
        cmd.arg("--arm-kill").arg(pass.to_string());
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| DistError::Io(format!("spawn {}: {e}", bin.display())))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| DistError::Io("child stdout not captured".into()))?;
    let tx = events.clone();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            let ev = match line.split_once(' ') {
                Some(("PASS", _)) => Some(Event::Pass),
                Some(("KILLME", _)) => Some(Event::KillMe(shard)),
                Some(("ERR", msg)) => Some(Event::Err(shard, msg.to_string())),
                None if line == "DONE" => Some(Event::Done(shard)),
                _ => None,
            };
            if let Some(ev) = ev {
                if tx.send(ev).is_err() {
                    break;
                }
            }
        }
        let _ = tx.send(Event::Eof(shard));
    });
    Ok(child)
}

/// Run the distributed sort with real child processes.  `bin` is the
/// `srm` binary to spawn (normally `std::env::current_exe()`).
pub fn run_procs(spec: &JobSpec, cfg: &DistConfig, root: &Path, bin: &Path) -> Result<DistReport> {
    spec.validate()?;
    if let Some(KillPlan {
        point: KillPoint::Merge(_),
        ..
    }) = cfg.kill
    {
        return Err(DistError::Config(
            "--kill-node N@merge requires thread mode (process mode has no serve phase)".into(),
        ));
    }
    let started = Instant::now();
    std::fs::create_dir_all(root)
        .map_err(|e| DistError::Io(format!("create {}: {e}", root.display())))?;
    write_plan(spec, cfg, root)?;

    // Route each shard's partition to a durable keys file.
    let records = generate_records(spec.records, spec.seed);
    let splitters = crate::split::sample_splitters(&records, cfg.shards, spec.seed);
    let buckets = crate::split::route(&records, &splitters, cfg.shards);
    drop(records);
    let geom = spec.geometry()?;
    for (shard, bucket) in buckets.iter().enumerate() {
        let plan = plan_for(spec, cfg, geom, root, shard as u32, None);
        std::fs::create_dir_all(&plan.dir)
            .map_err(|e| DistError::Io(format!("create {}: {e}", plan.dir.display())))?;
        let mut text = String::with_capacity(bucket.len() * 12);
        for k in bucket {
            text.push_str(&k.to_string());
            text.push('\n');
        }
        atomic_write(&keys_path(&plan), &text)?;
    }

    // Spawn the fleet (the drill target armed) and supervise.
    let (tx, rx): (Sender<Event>, Receiver<Event>) = mpsc::channel();
    let mut children: Vec<Option<Child>> = Vec::new();
    let mut reports: Vec<ShardReport> = vec![ShardReport::default(); cfg.shards as usize];
    let mut done = vec![false; cfg.shards as usize];
    let mut recovery_started: Vec<Option<Instant>> = vec![None; cfg.shards as usize];
    let mut recovery_ms = Vec::new();
    let mut recoveries = 0u64;
    for shard in 0..cfg.shards {
        let arm = cfg.kill.and_then(|k| match k.point {
            KillPoint::Pass(p) if k.shard == shard => Some(p),
            _ => None,
        });
        children.push(Some(spawn_child(bin, root, shard, arm, &tx)?));
    }

    let deadline = Instant::now() + Duration::from_secs(300);
    while !done.iter().all(|d| *d) {
        if Instant::now() > deadline {
            return Err(DistError::Net("process fleet timed out".into()));
        }
        let ev = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(ev) => ev,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DistError::Net("all child monitors gone".into()))
            }
        };
        match ev {
            Event::Pass => {}
            Event::KillMe(shard) => {
                // The drill: a real kill -9, mid-pass-boundary.
                if let Some(child) = children[shard as usize].as_mut() {
                    let _ = child.kill();
                }
            }
            Event::Done(shard) => {
                let s = shard as usize;
                done[s] = true;
                if let Some(t) = recovery_started[s].take() {
                    recovery_ms.push(t.elapsed().as_millis() as u64);
                }
            }
            Event::Err(shard, msg) => {
                return Err(DistError::Shard { shard, msg });
            }
            Event::Eof(shard) => {
                let s = shard as usize;
                if let Some(mut child) = children[s].take() {
                    let _ = child.wait();
                }
                if done[s] {
                    continue; // clean exit
                }
                // Died without DONE: drill kill or crash — either way,
                // fence is implicit (the process is gone and its locks
                // released); boot a replacement on the same directory.
                recoveries += 1;
                reports[s].recoveries += 1;
                if reports[s].recoveries > cfg.max_recoveries {
                    return Err(DistError::Shard {
                        shard,
                        msg: format!("crash loop: {} recoveries exhausted", cfg.max_recoveries),
                    });
                }
                if recovery_started[s].is_none() {
                    recovery_started[s] = Some(Instant::now());
                }
                children[s] = Some(spawn_child(bin, root, shard, None, &tx)?);
            }
        }
    }
    for child in children.iter_mut().flatten() {
        let _ = child.wait();
    }

    // Merge directly from the shard directories.
    let mut all_keys: Vec<Vec<u64>> = Vec::with_capacity(cfg.shards as usize);
    for shard in 0..cfg.shards {
        let s = shard as usize;
        let plan = plan_for(spec, cfg, geom, root, shard, None);
        let text = std::fs::read_to_string(plan.output_path()).map_err(|e| {
            DistError::Io(format!("read {}: {e}", plan.output_path().display()))
        })?;
        let meta = OutputMeta::parse(&text)?;
        reports[s].records = meta.records;
        reports[s].blocks = meta.run.as_ref().map_or(0, |r| r.len_blocks);
        reports[s].passes = meta.passes;
        reports[s].digest = meta.digest;
        reports[s].trace_events = meta.trace_events;
        reports[s].trace_clean = meta.trace_clean;
        reports[s].repaired = meta.repaired;
        match &meta.run {
            Some(run) => {
                let recs = read_output_run(&plan, run)?;
                all_keys.push(recs.into_iter().map(|r| r.0).collect());
            }
            None => all_keys.push(Vec::new()),
        }
    }

    let out_dir = root.join("global");
    if out_dir.exists() {
        std::fs::remove_dir_all(&out_dir)
            .map_err(|e| DistError::Io(format!("clear {}: {e}", out_dir.display())))?;
    }
    let mut out = FileDiskArray::<U64Record>::create(geom, &out_dir)?;
    let mut writer = RunWriter::new(geom, DiskId(0));
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; all_keys.len()];
    for (s, keys) in all_keys.iter().enumerate() {
        if let Some(&k) = keys.first() {
            heap.push(Reverse((k, s)));
        }
    }
    let mut merged_keys: Vec<u64> = Vec::with_capacity(spec.records as usize);
    while let Some(Reverse((key, s))) = heap.pop() {
        writer.push(&mut out, U64Record(key))?;
        merged_keys.push(key);
        cursors[s] += 1;
        if let Some(&k) = all_keys[s].get(cursors[s]) {
            heap.push(Reverse((k, s)));
        }
    }
    if !merged_keys.is_empty() {
        writer.finish(&mut out)?;
        out.sync()?;
    }
    let digest = digest_keys(merged_keys.iter().copied());
    let oracle = expected_digest(spec);

    Ok(DistReport {
        records: merged_keys.len() as u64,
        shards: cfg.shards,
        splitters,
        digest,
        oracle_ok: digest == oracle && merged_keys.len() as u64 == spec.records,
        per_shard: reports,
        recoveries,
        merge_stalls: 0,
        recovery_ms,
        net: NetStats::default(),
        elapsed_ms: started.elapsed().as_millis() as u64,
    })
}
