//! The wire vocabulary between the coordinator and its shard nodes.
//!
//! Nodes `0..P` are shards; node `P` is the coordinator.  Every message
//! travels in an [`Envelope`] stamped with its sender and the sender's
//! **epoch** — the fencing token that makes a superseded shard instance
//! harmless: the coordinator bumps a shard's epoch when it declares the
//! shard dead, and discards envelopes from older epochs, so a
//! falsely-suspected node that is still running cannot confuse the
//! protocol after its replacement has been spawned.

/// One message.  Keys travel as raw `u64`s ([`pdisk::U64Record`] is its
/// key), which keeps the vocabulary independent of record layout.
#[derive(Debug, Clone, PartialEq, Eq)]
#[srmlint::protocol]
pub enum Msg {
    // ── coordinator → shard ──────────────────────────────────────────
    /// One batch of the shard's input partition.  Stop-and-wait: the
    /// coordinator sends batch `seq` and retries it until [`Msg::StageAck`]
    /// for `seq` arrives; the shard deduplicates by `seq`, so drops,
    /// delays, and duplicates are all safe.
    Stage {
        /// Batch sequence number, starting at 0.
        seq: u64,
        /// The records (keys) in this batch.
        keys: Vec<u64>,
        /// True on the final batch: the shard may stage and sort.
        last: bool,
    },
    /// Request block `block` of the shard's sorted output run.
    ReadBlock {
        /// Request ID for reply matching and duplicate suppression.
        req: u64,
        /// Block index within the shard's output run.
        block: u64,
    },
    /// Finish up: the distributed sort is complete.
    Shutdown,

    // ── shard → coordinator ──────────────────────────────────────────
    /// Sent once on boot: what the shard found in its durable directory.
    Hello {
        /// The shard still needs its input staged (fresh boot, or death
        /// before the input descriptor became durable).
        needs_input: bool,
        /// Merge passes already completed per the recovered checkpoint
        /// manifest (`None` when starting fresh or already finished).
        resume_pass: Option<u64>,
    },
    /// Acknowledge staging batch `seq`.
    StageAck {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// The shard's input is durable (descriptor journaled); the
    /// coordinator may forget the shard's partition.
    Staged {
        /// Records staged.
        records: u64,
    },
    /// Liveness beacon, sent every heartbeat interval.
    Heartbeat,
    /// A pass boundary was reached (0 = run formation done).
    Pass {
        /// The completed pass.
        pass: u64,
    },
    /// The shard's sort finished and its output descriptor is durable.
    SortDone {
        /// Records in the shard's output run.
        records: u64,
        /// Blocks in the shard's output run (0 when the shard is empty).
        blocks: u64,
        /// Merge passes the *final* incarnation performed.
        passes: u64,
        /// FNV-1a digest of the shard's sorted keys.
        digest: u64,
        /// Events replayed through the model checker (0 if unchecked).
        trace_events: u64,
        /// The incarnation's trace passed the model checker.
        trace_clean: bool,
        /// Blocks healed by the parity scrub during recovery.
        repaired: u64,
    },
    /// Reply to [`Msg::ReadBlock`]: the keys of that block, in order.
    BlockData {
        /// Request ID being answered.
        req: u64,
        /// Block index within the shard's output run.
        block: u64,
        /// The block's keys.
        keys: Vec<u64>,
    },
    /// The shard hit an unrecoverable error.
    Fatal {
        /// Description, for the coordinator's report.
        msg: String,
    },
}

/// A message plus its routing and fencing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node (shards `0..P`, coordinator `P`).
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// The sender's epoch (fencing token; coordinator messages carry the
    /// *destination shard's* current epoch so stale shards can also
    /// ignore the coordinator's messages to their successors).
    pub epoch: u64,
    /// The payload.
    pub msg: Msg,
}
