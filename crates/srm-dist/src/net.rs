//! In-process message network with injected channel faults.
//!
//! Every node owns an [`Endpoint`]: a mailbox ([`std::sync::mpsc`]
//! receiver) plus a cloneable [`NetSender`] that can address any node.
//! All sends funnel through one shared [`pdisk::NetFaultModel`] decision
//! point, which may drop, delay, or duplicate each message or drop it at
//! a partition boundary — so the coordinator/shard protocol is exercised
//! against the same seeded, scriptable adversary the disk layers face.
//!
//! A *delayed* message is parked until `n` further sends have entered
//! the network, then delivered — a bounded reordering.  Because
//! heartbeats keep entering the network, parked messages and partition
//! windows always eventually release.

use crate::msg::{Envelope, Msg};
use pdisk::{Delivery, NetFault, NetFaultModel};
use std::collections::HashMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Counters for the whole network's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages offered to the network.
    pub sent: u64,
    /// Messages actually delivered (duplicates count twice).
    pub delivered: u64,
    /// Messages dropped (seeded, scripted, or partition).
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delivered late (reordered).
    pub delayed: u64,
}

struct NetState {
    model: NetFaultModel,
    /// Global send ordinal (counts every offered message).
    global: u64,
    /// Per-edge send ordinals.
    edges: HashMap<(u32, u32), u64>,
    /// Parked messages: `(release_at_global_ordinal, envelope)`.
    parked: Vec<(u64, Envelope)>,
    /// Current mailbox of each node.  [`Network::reconnect`] swaps in a
    /// fresh one when a replacement takes over a node ID — the dead
    /// instance keeps its old receiver, which nothing feeds anymore.
    mailboxes: Vec<Sender<Envelope>>,
    stats: NetStats,
}

/// The cloneable sending half of a node's endpoint: a heartbeat thread
/// gets a clone while the node itself keeps the receiving half.
#[derive(Clone)]
pub struct NetSender {
    node: u32,
    state: Arc<Mutex<NetState>>, // srmlint::lock(srm_dist::net::NetState)
}

impl NetSender {
    /// This sender's node ID.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Offer `msg` to the network; the fault model decides its fate.
    pub fn send(&self, dst: u32, epoch: u64, msg: Msg) {
        let env = Envelope {
            src: self.node,
            dst,
            epoch,
            msg,
        };
        let mut st = pdisk::lockwitness::guard(
            "srm_dist::net::NetState",
            self.state.lock().unwrap_or_else(|p| p.into_inner()),
        );
        let global = st.global;
        st.global += 1;
        let edge = st.edges.entry((self.node, dst)).or_insert(0);
        let edge_ordinal = *edge;
        *edge += 1;
        st.stats.sent += 1;
        match st.model.decide(self.node, dst, edge_ordinal, global) {
            Delivery::Deliver => {
                st.stats.delivered += 1;
                Self::dispatch(&st.mailboxes, env);
            }
            Delivery::Fault(NetFault::Drop) => st.stats.dropped += 1,
            Delivery::Fault(NetFault::Duplicate) => {
                st.stats.delivered += 2;
                st.stats.duplicated += 1;
                Self::dispatch(&st.mailboxes, env.clone());
                Self::dispatch(&st.mailboxes, env);
            }
            Delivery::Fault(NetFault::Delay(n)) => {
                st.stats.delayed += 1;
                st.parked.push((global + n, env));
            }
        }
        // Release parked messages whose reorder window has elapsed (the
        // n-th further send pushes them out), in release order so equal
        // windows stay deterministic.
        let now = st.global;
        if !st.parked.is_empty() {
            st.parked.sort_by_key(|(at, _)| *at);
            while st.parked.first().is_some_and(|(at, _)| *at < now) {
                let (_, env) = st.parked.remove(0);
                st.stats.delivered += 1;
                Self::dispatch(&st.mailboxes, env);
            }
        }
    }

    fn dispatch(mailboxes: &[Sender<Envelope>], env: Envelope) {
        if let Some(tx) = mailboxes.get(env.dst as usize) {
            // A hung-up receiver (node already exited) is not an error:
            // the network just drops mail addressed to the dead.
            let _ = tx.send(env);
        }
    }
}

/// One node's connection to the network.
pub struct Endpoint {
    sender: NetSender,
    rx: Receiver<Envelope>,
}

impl Endpoint {
    /// This endpoint's node ID.
    pub fn node(&self) -> u32 {
        self.sender.node()
    }

    /// A cloneable sending half (for heartbeat threads).
    pub fn sender(&self) -> NetSender {
        self.sender.clone()
    }

    /// Offer `msg` to the network.
    pub fn send(&self, dst: u32, epoch: u64, msg: Msg) {
        self.sender.send(dst, epoch, msg)
    }

    /// Wait up to `timeout` for the next delivered message.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Envelope> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Some(env),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain one message if immediately available.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }
}

/// The shared network: build once, hand one [`Endpoint`] to each node.
pub struct Network {
    state: Arc<Mutex<NetState>>, // srmlint::lock(srm_dist::net::NetState)
}

impl Network {
    /// A network of `nodes` endpoints under `model`'s fault regime.
    pub fn new(nodes: u32, model: NetFaultModel) -> (Network, Vec<Endpoint>) {
        let mut txs = Vec::with_capacity(nodes as usize);
        let mut rxs = Vec::with_capacity(nodes as usize);
        for _ in 0..nodes {
            let (tx, rx) = mpsc::channel();
            txs.push(tx);
            rxs.push(rx);
        }
        let state = Arc::new(Mutex::new(NetState {
            model,
            global: 0,
            edges: HashMap::new(),
            parked: Vec::new(),
            mailboxes: txs,
            stats: NetStats::default(),
        }));
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                sender: NetSender {
                    node: i as u32,
                    state: Arc::clone(&state),
                },
                rx,
            })
            .collect();
        (Network { state }, endpoints)
    }

    /// Rebind node `node`'s mailbox to a fresh channel and return the
    /// new endpoint — how a **replacement instance** takes over a dead
    /// node's identity.  The superseded instance still holds the old
    /// receiver, but all traffic now flows to the new one, so even a
    /// falsely-suspected survivor is cut off (its sends are additionally
    /// rejected by the epoch stamp).
    pub fn reconnect(&self, node: u32) -> Endpoint {
        let (tx, rx) = mpsc::channel();
        let mut st = pdisk::lockwitness::guard(
            "srm_dist::net::NetState",
            self.state.lock().unwrap_or_else(|p| p.into_inner()),
        );
        if let Some(slot) = st.mailboxes.get_mut(node as usize) {
            *slot = tx;
        }
        Endpoint {
            sender: NetSender {
                node,
                state: Arc::clone(&self.state),
            },
            rx,
        }
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> NetStats {
        pdisk::lockwitness::guard(
            "srm_dist::net::NetState",
            self.state.lock().unwrap_or_else(|p| p.into_inner()),
        )
        .stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::NetFaultModel;

    fn ping(i: u64) -> Msg {
        Msg::StageAck { seq: i }
    }

    #[test]
    fn quiet_network_delivers_in_order() {
        let (net, mut eps) = Network::new(2, NetFaultModel::none());
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..10 {
            a.send(1, 0, ping(i));
        }
        for i in 0..10 {
            let env = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(env.msg, ping(i));
            assert_eq!(env.src, 0);
        }
        assert_eq!(net.stats().delivered, 10);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn scripted_drop_loses_exactly_that_message() {
        let model = NetFaultModel::seeded(3).script(0, 1, 2, pdisk::NetFault::Drop);
        let (net, mut eps) = Network::new(2, model);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..5 {
            a.send(1, 0, ping(i));
        }
        let got: Vec<u64> = std::iter::from_fn(|| b.try_recv())
            .map(|e| match e.msg {
                Msg::StageAck { seq } => seq,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(got, vec![0, 1, 3, 4]);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn scripted_duplicate_delivers_twice() {
        let model = NetFaultModel::seeded(3).script(0, 1, 1, pdisk::NetFault::Duplicate);
        let (_net, mut eps) = Network::new(2, model);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..3 {
            a.send(1, 0, ping(i));
        }
        let got: Vec<u64> = std::iter::from_fn(|| b.try_recv())
            .map(|e| match e.msg {
                Msg::StageAck { seq } => seq,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(got, vec![0, 1, 1, 2]);
    }

    #[test]
    fn delayed_message_is_reordered_then_released() {
        let model = NetFaultModel::seeded(3).script(0, 1, 0, pdisk::NetFault::Delay(2));
        let (_net, mut eps) = Network::new(2, model);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        for i in 0..4 {
            a.send(1, 0, ping(i));
        }
        let got: Vec<u64> = std::iter::from_fn(|| b.try_recv())
            .map(|e| match e.msg {
                Msg::StageAck { seq } => seq,
                _ => u64::MAX,
            })
            .collect();
        // Message 0 waits until two further sends have entered the net.
        assert_eq!(got, vec![1, 2, 0, 3]);
    }

    #[test]
    fn partition_drops_crossing_traffic_until_it_heals() {
        let model = NetFaultModel::seeded(3).partition(1, 0, 3);
        let (net, mut eps) = Network::new(3, model);
        let _c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(1, 0, ping(0)); // global 0: dropped
        a.send(2, 0, ping(1)); // global 1: 0→2 does not cross, delivered
        a.send(1, 0, ping(2)); // global 2: dropped
        a.send(1, 0, ping(3)); // global 3: healed, delivered
        let got: Vec<u64> = std::iter::from_fn(|| b.try_recv())
            .map(|e| match e.msg {
                Msg::StageAck { seq } => seq,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(got, vec![3]);
        assert_eq!(net.stats().dropped, 2);
    }
}
