//! The coordinator: splitter sampling, record routing, heartbeat failure
//! detection, fence-and-respawn recovery, and the degraded cross-shard
//! merge.
//!
//! The protocol has three phases:
//!
//! 1. **Staging** — sample `P − 1` splitters, route every record to its
//!    shard, and ship each shard's partition in stop-and-wait batches
//!    (bounded retries with exponential backoff + jitter, reusing the
//!    [`pdisk::RetryPolicy`] schedule).  A shard journals its partition
//!    before acknowledging, so staging survives any channel fault.
//! 2. **Sorting** — each shard runs an ordinary checkpointed SRM sort on
//!    its own disk cluster; the coordinator just watches heartbeats.
//! 3. **Merging** — a striped k-way merge over block RPCs against the
//!    shards' sorted runs, written through [`srm_core::RunWriter`] to
//!    the coordinator's own output cluster.
//!
//! The whole time, a heartbeat failure detector watches every shard.  A
//! silent shard is declared dead, **fenced** (its storage refuses all
//! further I/O and its epoch is retired), and replaced by a fresh
//! instance booted on the same durable directory — which resumes from
//! the journaled checkpoint (rebuilding lost blocks from parity first
//! when `--parity` is on).  The merge does not abort while this happens:
//! it *stalls* on the dead shard's stream and resumes when the
//! replacement starts serving, so a node death degrades throughput, not
//! correctness.

use crate::error::{DistError, Result};
use crate::msg::{Envelope, Msg};
use crate::net::{Endpoint, NetStats, Network};
use crate::shard::{run_shard, KillPoint, ShardPlan};
use crate::split::{route, sample_splitters};
use pdisk::{DiskArray, DiskId, FileDiskArray, NetFaultModel, RetryPolicy, U64Record};
use srm_core::RunWriter;
use srm_server::{expected_digest, generate_records, JobSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fence::FenceFlag;

/// Keys per staging batch.
const STAGE_BATCH: usize = 4096;

/// A `--kill-node` drill: which shard to strike, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// The doomed shard.
    pub shard: u32,
    /// When its first incarnation dies.
    pub point: KillPoint,
}

/// Parse a `--kill-node` spec: `N@PASS`, `N@merge`, or `N@merge:K`
/// (die after serving `K` merge block requests; default 1).
pub fn parse_kill_node(s: &str) -> Result<KillPlan> {
    let bad = || DistError::Config(format!("bad --kill-node `{s}` (want N@PASS or N@merge[:K])"));
    let (shard, point) = s.split_once('@').ok_or_else(bad)?;
    let shard: u32 = shard.parse().map_err(|_| bad())?;
    let point = if let Some(rest) = point.strip_prefix("merge") {
        let after = match rest.strip_prefix(':') {
            Some(k) => k.parse().map_err(|_| bad())?,
            None if rest.is_empty() => 1,
            None => return Err(bad()),
        };
        KillPoint::Merge(after)
    } else {
        KillPoint::Pass(point.parse().map_err(|_| bad())?)
    };
    Ok(KillPlan { shard, point })
}

/// Knobs of the distributed run (everything that is not the job itself).
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Shard count `P` (each shard gets its own D-disk cluster).
    pub shards: u32,
    /// Rotating parity on every shard cluster, enabling the
    /// rebuild-from-parity recovery path.
    pub parity: bool,
    /// Shard heartbeat interval.
    pub heartbeat: Duration,
    /// Failure-detector timeout: a shard silent this long is declared
    /// dead, fenced, and replaced.
    pub timeout: Duration,
    /// How long one RPC attempt waits before retrying.
    pub rpc_timeout: Duration,
    /// Retry schedule for staging batches and merge block RPCs
    /// (attempt count, exponential backoff, jitter).
    pub retry: RetryPolicy,
    /// Channel fault regime (drops, delays, duplicates, partitions).
    pub net: NetFaultModel,
    /// Armed node-death drill, if any.
    pub kill: Option<KillPlan>,
    /// With `parity`, the kill drill also trashes this disk of the
    /// victim's cluster between the death and the replacement's boot —
    /// the "node died and took sectors with it" scenario.  The
    /// replacement's pre-resume scrub must heal every lost block.
    pub corrupt_disk: Option<usize>,
    /// Per-disk I/O service delay on every shard cluster.
    pub io_delay: Duration,
    /// Hard cap on recoveries per node — the circuit breaker that turns
    /// a crash loop into an error instead of an infinite fence/respawn
    /// cycle.
    pub max_recoveries: u32,
    /// Disk-full drill: `(shard, write ordinal)` — the named shard's
    /// cluster hits ENOSPC on that write.  ENOSPC is not retryable and
    /// not survivable by respawning (the replacement would land on the
    /// same full volume), so the shard reports it as a fatal typed
    /// error and the whole sort fails cleanly.
    pub fill_write: Option<(u32, u64)>,
}

impl DistConfig {
    /// Defaults tuned for tests: tight heartbeats, a detector timeout a
    /// few multiples above them, and a jittered exponential retry.
    pub fn new(shards: u32) -> Self {
        DistConfig {
            shards,
            parity: false,
            heartbeat: Duration::from_millis(15),
            timeout: Duration::from_millis(250),
            rpc_timeout: Duration::from_millis(80),
            retry: RetryPolicy::new(6, Duration::from_millis(5)).with_full_jitter(0xD1_57),
            net: NetFaultModel::none(),
            kill: None,
            corrupt_disk: None,
            io_delay: Duration::ZERO,
            max_recoveries: 8,
            fill_write: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(DistError::Config("at least one shard is required".into()));
        }
        if let Some(k) = &self.kill {
            if k.shard >= self.shards {
                return Err(DistError::Config(format!(
                    "--kill-node shard {} out of range (P = {})",
                    k.shard, self.shards
                )));
            }
        }
        if self.corrupt_disk.is_some() {
            if self.kill.is_none() {
                return Err(DistError::Config(
                    "--corrupt-disk is part of the kill drill: it needs --kill-node".into(),
                ));
            }
            if !self.parity {
                return Err(DistError::Config(
                    "--corrupt-disk destroys data; only --parity can rebuild it".into(),
                ));
            }
        }
        if let Some((shard, _)) = self.fill_write {
            if shard >= self.shards {
                return Err(DistError::Config(format!(
                    "--fill-write shard {shard} out of range (P = {})",
                    self.shards
                )));
            }
        }
        Ok(())
    }
}

/// Per-shard accounting in the final report.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Records the shard sorted.
    pub records: u64,
    /// Blocks in its output run.
    pub blocks: u64,
    /// Merge passes of its logical sort.
    pub passes: u64,
    /// Digest of its sorted partition.
    pub digest: u64,
    /// Model-checker events replayed for its finishing incarnation.
    pub trace_events: u64,
    /// That trace was checker-clean.
    pub trace_clean: bool,
    /// Blocks healed from parity during its recoveries.
    pub repaired: u64,
    /// Times this node was declared dead and replaced.
    pub recoveries: u32,
}

/// What a distributed sort did.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Total records sorted.
    pub records: u64,
    /// Shard count.
    pub shards: u32,
    /// The sampled splitter keys.
    pub splitters: Vec<u64>,
    /// Digest of the merged global output.
    pub digest: u64,
    /// The digest matched the centrally computed expectation.
    pub oracle_ok: bool,
    /// Per-shard accounting.
    pub per_shard: Vec<ShardReport>,
    /// Total fence-and-respawn recoveries.
    pub recoveries: u64,
    /// Merge stalls (a source went silent mid-merge and was replaced).
    pub merge_stalls: u64,
    /// Wall-clock of each recovery, fence to replacement-ready.
    pub recovery_ms: Vec<u64>,
    /// Channel-level delivery counters.
    pub net: NetStats,
    /// End-to-end wall-clock.
    pub elapsed_ms: u64,
}

/// A shard's staging progress (stop-and-wait, one batch in flight).
struct StageProgress {
    next: usize,
    attempts: u32,
    sent_at: Instant,
    wait: Duration,
}

/// Where a shard is in its lifecycle, as the coordinator sees it.
enum Phase {
    /// Spawned; waiting for its `Hello`.
    Waiting,
    /// Feeding it staging batches.
    Staging(StageProgress),
    /// It has its input and is sorting.
    Sorting,
    /// Its sort is done and it is serving merge reads.
    Done,
}

/// A shard's `SortDone` facts the merge needs.
#[derive(Clone, Copy)]
struct DoneInfo {
    blocks: u64,
}

/// Coordinator-side state of one node slot.
struct Node {
    epoch: u64,
    fence: FenceFlag,
    last_seen: Instant,
    phase: Phase,
    done: Option<DoneInfo>,
    report: ShardReport,
    recovery_started: Option<Instant>,
    handles: Vec<JoinHandle<()>>,
}

struct Coordinator<'a> {
    spec: &'a JobSpec,
    cfg: &'a DistConfig,
    geom: pdisk::Geometry,
    root: PathBuf,
    net: Network,
    ep: Endpoint,
    nodes: Vec<Node>,
    batches: Vec<Vec<Vec<u64>>>,
    splitters: Vec<u64>,
    recoveries: u64,
    merge_stalls: u64,
    recovery_ms: Vec<u64>,
    rpc_nonce: u64,
}

/// Run a full distributed sort of `spec` across `cfg.shards` simulated
/// nodes rooted at `root` (one subdirectory per shard plus the global
/// output cluster).  Returns the report; the directory tree is left in
/// place for the caller to inspect or delete.
pub fn distsort(spec: &JobSpec, cfg: &DistConfig, root: &Path) -> Result<DistReport> {
    cfg.validate()?;
    spec.validate()?;
    let started = Instant::now();
    std::fs::create_dir_all(root)
        .map_err(|e| DistError::Io(format!("create {}: {e}", root.display())))?;

    // Phase 0: generate, sample, route.  Splitters are a pure function
    // of (spec, P), so any replacement re-staged later gets the same
    // partition the failure-free run would have.
    let records = generate_records(spec.records, spec.seed);
    let splitters = sample_splitters(&records, cfg.shards, spec.seed);
    let buckets = route(&records, &splitters, cfg.shards);
    drop(records);
    let batches: Vec<Vec<Vec<u64>>> = buckets
        .into_iter()
        .map(|bucket| {
            if bucket.is_empty() {
                vec![Vec::new()] // one empty, final batch
            } else {
                bucket.chunks(STAGE_BATCH).map(<[u64]>::to_vec).collect()
            }
        })
        .collect();

    let (net, mut endpoints) = Network::new(cfg.shards + 1, cfg.net.clone());
    let ep = endpoints.pop().ok_or_else(|| {
        DistError::Net("network built without a coordinator endpoint".into())
    })?;

    let mut coord = Coordinator {
        spec,
        cfg,
        geom: spec.geometry()?,
        root: root.to_path_buf(),
        net,
        ep,
        nodes: Vec::new(),
        batches,
        splitters,
        recoveries: 0,
        merge_stalls: 0,
        recovery_ms: Vec::new(),
        rpc_nonce: 0,
    };

    // Phase 1+2: spawn every shard (the drill target armed), then drive
    // staging and watch heartbeats until every sort is done.
    let now = Instant::now();
    for (shard, endpoint) in endpoints.into_iter().enumerate() {
        let shard = shard as u32;
        let fence = FenceFlag::new();
        let kill = cfg.kill.filter(|k| k.shard == shard).map(|k| k.point);
        let plan = coord.plan(shard, kill);
        let ep_fence = fence.clone();
        let handle = std::thread::spawn(move || run_shard(plan, endpoint, 0, ep_fence));
        coord.nodes.push(Node {
            epoch: 0,
            fence,
            last_seen: now,
            phase: Phase::Waiting,
            done: None,
            report: ShardReport::default(),
            recovery_started: None,
            handles: vec![handle],
        });
    }

    let result = coord.run();
    coord.shutdown();
    let mut report = result?;
    report.elapsed_ms = started.elapsed().as_millis() as u64;
    Ok(report)
}

/// Build shard `shard`'s plan — THE one derivation both the thread-mode
/// coordinator and the process-mode children use, so every incarnation
/// of a shard (original, replacement, or child process) makes identical
/// randomized choices.
pub(crate) fn plan_for(
    spec: &JobSpec,
    cfg: &DistConfig,
    geom: pdisk::Geometry,
    root: &Path,
    shard: u32,
    kill: Option<KillPoint>,
) -> ShardPlan {
    let salt = (u64::from(shard) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ShardPlan {
        shard,
        shards: cfg.shards,
        dir: root.join(format!("shard-{shard:03}")),
        geom,
        seed: spec.seed.wrapping_add(salt),
        placement: spec.placement,
        formation: spec.formation,
        pipeline: spec.pipeline,
        parity: cfg.parity,
        fault_rate: spec.fault_rate,
        fault_seed: spec.fault_seed.wrapping_add(salt),
        io_delay: cfg.io_delay,
        heartbeat: cfg.heartbeat,
        kill,
        fill_write: cfg
            .fill_write
            .and_then(|(s, n)| (s == shard).then_some(n)),
    }
}

/// Trash the leading slots of one disk file in a shard's cluster —
/// simulated media loss riding along with a node death.  Leading (not
/// trailing) slots so the damage lands on checkpointed runs rather than
/// in the reopen recovery's torn-tail window, and `0xFF` fill so every
/// touched frame fails its checksum instead of decoding by accident.
fn corrupt_disk_file(plan: &ShardPlan, disk: usize) -> Result<()> {
    use pdisk::Record as _;
    if disk >= plan.geom.d {
        return Err(DistError::Config(format!(
            "--corrupt-disk {disk} out of range (D = {})",
            plan.geom.d
        )));
    }
    let path = plan.disks_dir().join(format!("disk_{disk:04}.bin"));
    let io = |e: std::io::Error| DistError::Io(format!("corrupt {}: {e}", path.display()));
    let slot_bytes =
        8 + 8 + 8 * plan.geom.d.max(1) + plan.geom.b * U64Record::ENCODED_LEN;
    let len = std::fs::metadata(&path).map_err(io)?.len();
    let damage = ((slot_bytes * 6) as u64).min(len) as usize;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .map_err(io)?;
    use std::os::unix::fs::FileExt as _;
    file.write_all_at(&vec![0xFF; damage], 0).map_err(io)?;
    file.sync_all().map_err(io)
}

impl Coordinator<'_> {
    fn plan(&self, shard: u32, kill: Option<KillPoint>) -> ShardPlan {
        plan_for(self.spec, self.cfg, self.geom, &self.root, shard, kill)
    }

    fn run(&mut self) -> Result<DistReport> {
        self.await_all_done()?;
        let (digest, out_records) = self.merge()?;
        let oracle = expected_digest(self.spec);
        let per_shard: Vec<ShardReport> = self.nodes.iter().map(|n| n.report.clone()).collect();
        Ok(DistReport {
            records: out_records,
            shards: self.cfg.shards,
            splitters: std::mem::take(&mut self.splitters),
            digest,
            oracle_ok: digest == oracle && out_records == self.spec.records,
            per_shard,
            recoveries: self.recoveries,
            merge_stalls: self.merge_stalls,
            recovery_ms: std::mem::take(&mut self.recovery_ms),
            net: self.net.stats(),
            elapsed_ms: 0,
        })
    }

    /// Drive staging/sorting until every shard has announced `SortDone`.
    fn await_all_done(&mut self) -> Result<()> {
        loop {
            if self.nodes.iter().all(|n| matches!(n.phase, Phase::Done)) {
                return Ok(());
            }
            let env = self.ep.recv_timeout(self.cfg.heartbeat);
            if let Some(env) = env {
                self.handle(env)?;
            }
            self.tick()?;
        }
    }

    /// Process one shard message (epoch-checked).
    fn handle(&mut self, env: Envelope) -> Result<()> {
        let s = env.src as usize;
        if s >= self.nodes.len() || env.epoch != self.nodes[s].epoch {
            return Ok(()); // a fenced predecessor (or stale duplicate)
        }
        self.nodes[s].last_seen = Instant::now();
        match env.msg {
            Msg::Hello { needs_input, .. } => {
                // Only a `Waiting` node's Hello moves the state machine:
                // shards re-announce while unacknowledged, and the
                // channel can duplicate or delay, so a Hello arriving
                // after progress (staging underway, or even SortDone)
                // must be a no-op — never a phase regression.
                if matches!(self.nodes[s].phase, Phase::Waiting) {
                    if needs_input {
                        self.nodes[s].phase = Phase::Staging(StageProgress {
                            next: 0,
                            attempts: 1,
                            sent_at: Instant::now(),
                            wait: self.cfg.rpc_timeout,
                        });
                        self.send_batch(s, 0);
                    } else {
                        // It has durable input (or even durable output, in
                        // which case SortDone follows immediately).
                        self.nodes[s].phase = Phase::Sorting;
                    }
                }
            }
            Msg::StageAck { seq } => {
                let total = self.batches[s].len();
                let rpc_timeout = self.cfg.rpc_timeout;
                let mut advance = None;
                if let Phase::Staging(p) = &mut self.nodes[s].phase {
                    if seq as usize == p.next {
                        p.next += 1;
                        p.attempts = 1;
                        p.wait = rpc_timeout;
                        p.sent_at = Instant::now();
                        advance = Some(p.next);
                    }
                }
                match advance {
                    Some(next) if next >= total => self.nodes[s].phase = Phase::Sorting,
                    Some(next) => self.send_batch(s, next),
                    None => {}
                }
            }
            Msg::Staged { .. } => {
                if matches!(self.nodes[s].phase, Phase::Staging(_)) {
                    self.nodes[s].phase = Phase::Sorting;
                }
            }
            Msg::SortDone {
                records,
                blocks,
                passes,
                digest,
                trace_events,
                trace_clean,
                repaired,
            } => {
                let node = &mut self.nodes[s];
                node.done = Some(DoneInfo { blocks });
                node.report.records = records;
                node.report.blocks = blocks;
                node.report.passes = passes;
                node.report.digest = digest;
                node.report.trace_events = trace_events;
                node.report.trace_clean = trace_clean;
                node.report.repaired += repaired;
                node.phase = Phase::Done;
                if let Some(t) = node.recovery_started.take() {
                    self.recovery_ms.push(t.elapsed().as_millis() as u64);
                }
            }
            Msg::Fatal { msg } => {
                return Err(DistError::Shard {
                    shard: env.src,
                    msg,
                });
            }
            // Heartbeat already bumped last_seen; Pass is progress-only;
            // BlockData outside an RPC wait is a late duplicate.
            Msg::Heartbeat | Msg::Pass { .. } | Msg::BlockData { .. } => {}
            // Shard-bound kinds cannot arrive on the coordinator's
            // mailbox; named rather than wildcarded so the protocol
            // pass proves no shard message is ever silently swallowed.
            Msg::Stage { .. } | Msg::ReadBlock { .. } | Msg::Shutdown => {}
        }
        Ok(())
    }

    fn send_batch(&mut self, shard: usize, seq: usize) {
        let batches = &self.batches[shard];
        let Some(batch) = batches.get(seq) else {
            return;
        };
        self.ep.send(
            shard as u32,
            self.nodes[shard].epoch,
            Msg::Stage {
                seq: seq as u64,
                keys: batch.clone(),
                last: seq + 1 == batches.len(),
            },
        );
    }

    /// The periodic work: staging retransmits and the failure detector.
    fn tick(&mut self) -> Result<()> {
        let now = Instant::now();
        for s in 0..self.nodes.len() {
            // Failure detector: a silent node is dead (or unreachable,
            // which must be treated the same — fencing makes the
            // distinction harmless).
            if now.duration_since(self.nodes[s].last_seen) > self.cfg.timeout {
                self.recover(s)?;
                continue;
            }
            // Stop-and-wait retransmission with backoff + jitter.
            let cfg_retry = self.cfg.retry;
            let rpc_timeout = self.cfg.rpc_timeout;
            self.rpc_nonce += 1;
            let nonce = self.rpc_nonce;
            let mut exhausted = false;
            let mut resend = None;
            if let Phase::Staging(p) = &mut self.nodes[s].phase {
                if now.duration_since(p.sent_at) > p.wait {
                    if p.attempts >= cfg_retry.max_attempts {
                        // Retries exhausted: escalate to the detector.
                        exhausted = true;
                    } else {
                        p.attempts += 1;
                        p.sent_at = now;
                        p.wait = rpc_timeout + cfg_retry.jittered_backoff(p.attempts, nonce);
                        resend = Some(p.next);
                    }
                }
            }
            if exhausted {
                self.recover(s)?;
                continue;
            }
            if let Some(seq) = resend {
                self.send_batch(s, seq);
            }
        }
        Ok(())
    }

    /// Declare shard `s` dead: fire its fence, retire its epoch, rebind
    /// its mailbox, and boot a replacement on the same directory.
    fn recover(&mut self, s: usize) -> Result<()> {
        let node = &mut self.nodes[s];
        if node.report.recoveries >= self.cfg.max_recoveries {
            return Err(DistError::Shard {
                shard: s as u32,
                msg: format!(
                    "crash loop: {} recoveries exhausted",
                    self.cfg.max_recoveries
                ),
            });
        }
        node.fence.fire();
        node.epoch += 1;
        node.fence = FenceFlag::new();
        node.report.recoveries += 1;
        let epoch = node.epoch;
        let fence = node.fence.clone();
        let first_recovery = node.report.recoveries == 1;
        self.recoveries += 1;
        // The drill's optional disk-trashing stage: the victim's death
        // also cost it part of a disk.  Done after the fence (the dead
        // instance can no longer read the rot) and before the
        // replacement boots (whose scrub must heal it).
        if first_recovery
            && self.cfg.kill.is_some_and(|k| k.shard as usize == s)
        {
            if let Some(disk) = self.cfg.corrupt_disk {
                corrupt_disk_file(&self.plan(s as u32, None), disk)?;
            }
        }
        let endpoint = self.net.reconnect(s as u32);
        // Replacements boot unarmed: the drill kills a node once.
        let plan = self.plan(s as u32, None);
        let handle = std::thread::spawn(move || run_shard(plan, endpoint, epoch, fence));
        let node = &mut self.nodes[s];
        node.handles.push(handle);
        node.last_seen = Instant::now();
        node.phase = Phase::Waiting;
        node.done = None;
        if node.recovery_started.is_none() {
            node.recovery_started = Some(Instant::now());
        }
        Ok(())
    }

    /// Block until shard `s` is (again) serving, processing all other
    /// traffic and the failure detector meanwhile.
    fn await_serving(&mut self, s: usize) -> Result<()> {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if matches!(self.nodes[s].phase, Phase::Done) {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(DistError::Shard {
                    shard: s as u32,
                    msg: "replacement did not come back in time".into(),
                });
            }
            if let Some(env) = self.ep.recv_timeout(self.cfg.heartbeat) {
                self.handle(env)?;
            }
            self.tick()?;
        }
    }

    /// Fetch one block of shard `s`'s sorted run, stalling through node
    /// deaths: bounded retries per attempt round, and when a round is
    /// exhausted the shard is declared dead, replaced, and the fetch
    /// resumes against the replacement.
    fn fetch_block(&mut self, s: usize, block: u64) -> Result<Vec<u64>> {
        let mut rounds = 0u32;
        loop {
            for attempt in 1..=self.cfg.retry.max_attempts {
                self.rpc_nonce += 1;
                let req = self.rpc_nonce;
                self.ep
                    .send(s as u32, self.nodes[s].epoch, Msg::ReadBlock { req, block });
                let deadline = Instant::now() + self.cfg.rpc_timeout;
                while Instant::now() < deadline {
                    if let Some(env) = self.ep.recv_timeout(self.cfg.heartbeat) {
                        // Accept any reply for this (shard, block) at the
                        // current epoch — a duplicate of an earlier
                        // request carries identical bytes.
                        if env.src == s as u32 && env.epoch == self.nodes[s].epoch {
                            if let Msg::BlockData {
                                block: b, keys, ..
                            } = &env.msg
                            {
                                if *b == block {
                                    self.nodes[s].last_seen = Instant::now();
                                    return Ok(keys.clone());
                                }
                            }
                        }
                        self.handle(env)?;
                    }
                    self.tick()?;
                    // tick() may have recovered shard s (its heartbeats
                    // stopped); the outstanding request is then moot.
                    if !matches!(self.nodes[s].phase, Phase::Done) {
                        break;
                    }
                }
                if !matches!(self.nodes[s].phase, Phase::Done) {
                    break; // go stall on the replacement
                }
                std::thread::sleep(self.cfg.retry.jittered_backoff(attempt, self.rpc_nonce));
            }
            // The source is gone (or never answered a full retry round):
            // declare it dead if the detector hasn't already, then stall
            // until its replacement serves again.
            self.merge_stalls += 1;
            if matches!(self.nodes[s].phase, Phase::Done) {
                self.recover(s)?;
            }
            self.await_serving(s)?;
            rounds += 1;
            if rounds > self.cfg.max_recoveries {
                return Err(DistError::Shard {
                    shard: s as u32,
                    msg: "merge could not obtain block after repeated recoveries".into(),
                });
            }
        }
    }

    /// The striped cross-shard merge: k-way over the shards' sorted
    /// streams, one block RPC at a time, written through [`RunWriter`]
    /// to the coordinator's own output cluster.
    fn merge(&mut self) -> Result<(u64, u64)> {
        struct Source {
            blocks: u64,
            next_block: u64,
            buf: std::collections::VecDeque<u64>,
        }
        let mut sources: Vec<Source> = self
            .nodes
            .iter()
            .map(|n| {
                let blocks = n.done.map_or(0, |d| d.blocks);
                Source {
                    blocks,
                    next_block: 0,
                    buf: std::collections::VecDeque::new(),
                }
            })
            .collect();

        let geom = self.geom;
        let out_dir = self.root.join("global");
        if out_dir.exists() {
            std::fs::remove_dir_all(&out_dir)
                .map_err(|e| DistError::Io(format!("clear {}: {e}", out_dir.display())))?;
        }
        let mut out = FileDiskArray::<U64Record>::create(geom, &out_dir)?;
        let mut writer = RunWriter::new(geom, DiskId(0));

        // Prime every non-empty source, then heap-merge.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (s, src) in sources.iter_mut().enumerate() {
            if src.blocks == 0 {
                continue;
            }
            let keys = self.fetch_block(s, 0)?;
            src.next_block = 1;
            src.buf = keys.into();
            if let Some(&k) = src.buf.front() {
                heap.push(Reverse((k, s)));
            }
        }

        let mut merged = 0u64;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a, as digest_keys
        while let Some(Reverse((key, s))) = heap.pop() {
            sources[s].buf.pop_front();
            writer.push(&mut out, U64Record(key))?;
            for byte in key.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            merged += 1;
            if sources[s].buf.is_empty() && sources[s].next_block < sources[s].blocks {
                let block = sources[s].next_block;
                let keys = self.fetch_block(s, block)?;
                sources[s].next_block += 1;
                sources[s].buf = keys.into();
            }
            if let Some(&k) = sources[s].buf.front() {
                heap.push(Reverse((k, s)));
            }
        }

        if merged > 0 {
            writer.finish(&mut out)?;
            out.sync()?;
        }
        Ok((hash, merged))
    }

    /// Politely stop every shard, then force the issue via the fences
    /// (a Shutdown message can be dropped by the fault model; the fence
    /// cannot), and join every thread this run ever spawned.
    fn shutdown(&mut self) {
        for (s, node) in self.nodes.iter().enumerate() {
            self.ep.send(s as u32, node.epoch, Msg::Shutdown);
        }
        for node in &mut self.nodes {
            node.fence.fire();
            for h in node.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}
