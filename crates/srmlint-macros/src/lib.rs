//! Marker attributes for the `srmlint` static analyzer.
//!
//! Every attribute here is a **no-op at compile time**: it returns the
//! annotated item unchanged.  The attributes exist so that source code
//! can carry machine-checkable concurrency/protocol contracts in plain
//! Rust syntax — `srmlint` re-discovers them by parsing the source, and
//! enforces them; `rustc` merely tolerates them.
//!
//! Crates import the macros under the `srmlint` name (via
//! `srmlint = { package = "srmlint-macros", ... }` in `Cargo.toml`), so
//! annotations read exactly as the analyzer documents them:
//!
//! | attribute                       | on            | meaning |
//! |---------------------------------|---------------|---------|
//! | `#[srmlint::leaf]`              | guard helper  | no other lock may be acquired while this one is held |
//! | `#[srmlint::worker_entry]`      | fn            | body (incl. closures) runs on a disk-worker/heartbeat thread |
//! | `#[srmlint::blessed_seam]`      | fn            | its *direct* blocking calls are the sanctioned I/O seam |
//! | `#[srmlint::interrupt_observer]`| fn            | observes `InterruptFlag` and returns `Interrupted`; callers must checkpoint first |
//! | `#[srmlint::checkpoint]`        | fn            | journals a durable checkpoint (satisfies the interrupt pass) |
//! | `#[srmlint::protocol]`          | enum          | a message vocabulary: dispatch `match`es must name every variant |
//!
//! Field-position annotations (attribute macros cannot attach to
//! fields) use comment directives instead: `// srmlint::leaf` and
//! `// srmlint::lock(<node-id>)` — see `crates/srmlint`.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

macro_rules! marker {
    ($(#[doc = $doc:expr])* $name:ident) => {
        $(#[doc = $doc])*
        #[proc_macro_attribute]
        pub fn $name(_attr: TokenStream, item: TokenStream) -> TokenStream {
            item
        }
    };
}

marker!(
    /// Marks a lock (via its guard-returning helper) as a **leaf**: the
    /// lock-order pass rejects any lock acquisition while a leaf lock
    /// is held.
    leaf
);
marker!(
    /// Marks a function whose body (including closures it spawns) runs
    /// on a disk-worker or heartbeat thread; the blocking-in-worker
    /// pass checks everything reachable from it.
    worker_entry
);
marker!(
    /// Marks a function whose *direct* blocking calls are the blessed
    /// submit/complete seam (the positioned reads/writes and the job
    /// queue `recv` of a disk worker).  Reachability still descends
    /// into its callees.
    blessed_seam
);
marker!(
    /// Marks a function that observes an `InterruptFlag` and returns
    /// an `Interrupted` error; the interrupt-safety pass requires every
    /// call site to be preceded by a checkpoint seam.
    interrupt_observer
);
marker!(
    /// Marks a function that journals a durable checkpoint; calling it
    /// satisfies the interrupt-safety pass for subsequent
    /// `interrupt_observer` calls in the same body.
    checkpoint
);
marker!(
    /// Marks an enum as a message-protocol vocabulary: the
    /// protocol-exhaustiveness pass requires every dispatch `match` on
    /// it to name every variant, with no `_ =>` arm.
    protocol
);
