//! End-to-end drills for the job server, mirroring the ISSUE-6
//! acceptance criteria:
//!
//! * the admission invariant — at **every** sampled instant the summed
//!   Definition-3 budgets of running jobs fit the configured `M`;
//! * the drain-and-restart drill — three concurrent jobs, a drain that
//!   suspends them at checkpoint boundaries, and a restarted server
//!   that resumes each one byte-identically with the model checker
//!   replaying every resumed trace;
//! * cancellation and deadlines — both abort at a checkpoint boundary,
//!   leaving a journaled manifest behind.

use srm_server::{
    expected_digest, EngineKind, JobServer, JobSpec, JobState, ServerConfig, SubmitError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-server-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 1500 records over d=2, b=4, m=96: ~32 formation runs and two merge
/// passes — enough checkpoint boundaries for drains and cancels to hit
/// mid-sort, small enough to run in CI.
fn spec(seed: u64) -> JobSpec {
    JobSpec {
        engine: EngineKind::Srm,
        records: 1500,
        seed,
        d: 2,
        b: 4,
        m: 96,
        ..JobSpec::default()
    }
}

fn wait_all_terminal(server: &JobServer, budget: Duration) {
    let deadline = Instant::now() + budget;
    loop {
        let jobs = server.list();
        if jobs.iter().all(|j| j.state.is_terminal()) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "jobs never settled: {:?}",
            jobs.iter().map(|j| (j.id, j.state)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(15));
    }
}

#[test]
fn admission_never_exceeds_capacity_while_jobs_overlap() {
    let dir = scratch("admission");
    let cost = spec(1).budget_records().unwrap();
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 4;
    cfg.queue_depth = 8;
    // Room for exactly two jobs at once; four are submitted.
    cfg.capacity = 2 * cost + cost / 2;
    cfg.io_delay = Duration::from_micros(300);
    let server = Arc::new(JobServer::open(cfg).unwrap());

    // A sampler hammers the invariant from outside while jobs run: the
    // summed costs of Running jobs, and the ledger itself, must fit M
    // at every instant.
    let violated = Arc::new(AtomicBool::new(false));
    let saw_overlap = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let server = Arc::clone(&server);
        let violated = Arc::clone(&violated);
        let saw_overlap = Arc::clone(&saw_overlap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let stats = server.stats();
                let running_cost: u64 = server
                    .list()
                    .iter()
                    .filter(|j| j.state == JobState::Running)
                    .map(|j| j.cost)
                    .sum();
                if running_cost > stats.capacity || stats.admitted > stats.capacity {
                    violated.store(true, Ordering::Relaxed);
                }
                if stats.running == 2 {
                    saw_overlap.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let ids: Vec<u64> = (0..4).map(|i| server.submit(spec(10 + i)).unwrap()).collect();
    wait_all_terminal(&server, Duration::from_secs(120));
    stop.store(true, Ordering::Relaxed);
    sampler.join().unwrap();

    assert!(!violated.load(Ordering::Relaxed), "admission invariant broken");
    assert!(
        saw_overlap.load(Ordering::Relaxed),
        "two jobs never overlapped; the drill proved nothing"
    );
    let stats = server.stats();
    assert!(
        stats.peak_admitted >= 2 * cost,
        "peak {} never reached two admitted jobs ({})",
        stats.peak_admitted,
        2 * cost
    );
    assert!(stats.peak_admitted <= stats.capacity);
    for (i, id) in ids.iter().enumerate() {
        let s = server.status(*id).unwrap();
        assert_eq!(s.state, JobState::Done, "job {id}: {}", s.detail);
        assert_eq!(s.digest, Some(expected_digest(&spec(10 + i as u64))));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_job_is_rejected_outright() {
    let dir = scratch("oversized");
    let mut cfg = ServerConfig::new(&dir);
    cfg.capacity = spec(1).budget_records().unwrap() - 1;
    let server = JobServer::open(cfg).unwrap();
    match server.submit(spec(1)) {
        Err(SubmitError::TooLarge { cost, capacity }) => assert!(cost > capacity),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole drill: three jobs mid-sort, a graceful drain, then a
/// restarted server over the same jobs dir.  Every job must finish with
/// the digest an uninterrupted run produces, and every resumed trace
/// must replay cleanly through the model checker.
#[test]
fn drain_suspends_and_restart_resumes_byte_identically() {
    let dir = scratch("drain");
    let cost = spec(1).budget_records().unwrap();
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 3;
    cfg.capacity = 3 * cost;
    cfg.io_delay = Duration::from_millis(1); // slow enough to drain mid-sort
    cfg.check_model = true;
    let server = JobServer::open(cfg.clone()).unwrap();
    let ids: Vec<u64> = (0..3).map(|i| server.submit(spec(70 + i)).unwrap()).collect();

    // Let all three get into their sorts, then drain while they are
    // still several checkpoint boundaries from the finish line.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let jobs = server.list();
        if jobs.iter().filter(|j| j.state == JobState::Running).count() == 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "jobs never all started: {:?}",
            jobs.iter().map(|j| (j.state, j.passes)).collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(100)); // into formation, not past it

    let report = server.shutdown();
    assert_eq!(report.suspended, 3, "all three jobs must suspend: {report}");
    for id in &ids {
        let s = server.status(*id).unwrap();
        assert_eq!(s.state, JobState::Suspended);
        assert!(
            dir.join(format!("job-{id:06}/manifest")).exists(),
            "suspended job {id} must leave a journaled checkpoint"
        );
    }

    // "Reboot": a fresh server over the same jobs dir (fast, no delay)
    // re-queues the suspended jobs and resumes them from their
    // manifests, model-checking every resumed trace.
    let mut cfg2 = cfg;
    cfg2.io_delay = Duration::ZERO;
    let server2 = JobServer::open(cfg2).unwrap();
    wait_all_terminal(&server2, Duration::from_secs(120));
    for (i, id) in ids.iter().enumerate() {
        let s = server2.status(*id).unwrap();
        assert_eq!(s.state, JobState::Done, "job {id}: {}", s.detail);
        assert_eq!(
            s.digest,
            Some(expected_digest(&spec(70 + i as u64))),
            "job {id} did not resume byte-identically"
        );
        assert!(
            !dir.join(format!("job-{id:06}/manifest")).exists(),
            "completed job {id} must retire its manifest"
        );
    }
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_interrupts_a_running_job_at_a_checkpoint() {
    let dir = scratch("cancel");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 1;
    cfg.io_delay = Duration::from_millis(1);
    let server = JobServer::open(cfg).unwrap();
    let id = server.submit(spec(5)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.status(id).unwrap().state != JobState::Running {
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(server.cancel(id));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = server.status(id).unwrap();
        if s.state.is_terminal() {
            assert_eq!(s.state, JobState::Cancelled, "{}", s.detail);
            break;
        }
        assert!(Instant::now() < deadline, "cancel never settled");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The abort happened at a boundary: the checkpoint journal remains.
    assert!(dir.join(format!("job-{id:06}/manifest")).exists());
    // Terminal means terminal: a second cancel is refused.
    assert!(!server.cancel(id));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_overrun_checkpoints_then_aborts() {
    let dir = scratch("deadline");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 1;
    cfg.io_delay = Duration::from_millis(1);
    let server = JobServer::open(cfg).unwrap();
    let mut overdue = spec(6);
    overdue.deadline_ms = Some(0); // overruns at the first boundary
    let id = server.submit(overdue).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = server.status(id).unwrap();
        if s.state.is_terminal() {
            assert_eq!(s.state, JobState::DeadlineExceeded, "{}", s.detail);
            break;
        }
        assert!(Instant::now() < deadline, "deadline never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(dir.join(format!("job-{id:06}/manifest")).exists());

    // A sane deadline leaves the same spec to finish normally.
    let fine = spec(6);
    let id2 = server.submit(fine.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = server.status(id2).unwrap();
        if s.state.is_terminal() {
            assert_eq!(s.state, JobState::Done, "{}", s.detail);
            assert_eq!(s.digest, Some(expected_digest(&fine)));
            break;
        }
        assert!(Instant::now() < deadline, "job stuck");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Faulty jobs ride the server's retry layer: a nonzero transient-fault
/// rate must not change the output.
#[test]
fn transient_faults_are_absorbed_by_the_retry_layer() {
    let dir = scratch("faults");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 1;
    let server = JobServer::open(cfg).unwrap();
    let mut faulty = spec(8);
    faulty.fault_rate = 0.02;
    faulty.fault_seed = 99;
    let id = server.submit(faulty.clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = server.status(id).unwrap();
        if s.state.is_terminal() {
            assert_eq!(s.state, JobState::Done, "{}", s.detail);
            assert_eq!(s.digest, Some(expected_digest(&faulty)));
            break;
        }
        assert!(Instant::now() < deadline, "faulty job stuck");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A job priced at EXACTLY the server's capacity is the boundary case
/// of the admission invariant `admitted <= capacity`: `<=` means it
/// must be admitted and run, not starve in the queue.
#[test]
fn job_priced_exactly_at_capacity_is_admitted() {
    let dir = scratch("exact-fit");
    let exact = spec(31);
    let cost = exact.budget_records().unwrap();
    let mut cfg = ServerConfig::new(&dir);
    cfg.capacity = cost;
    cfg.workers = 1;
    let server = JobServer::open(cfg).unwrap();
    let id = server.submit(exact.clone()).unwrap();
    wait_all_terminal(&server, Duration::from_secs(120));
    let s = server.status(id).unwrap();
    assert_eq!(s.state, JobState::Done, "{}", s.detail);
    assert_eq!(s.digest, Some(expected_digest(&exact)));
    let stats = server.stats();
    assert_eq!(
        stats.peak_admitted, cost,
        "the exact-fit job must have filled the ledger to the brim"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// One record short of the job's price, the same submission must be
/// refused outright as TooLarge — it could never run here.
#[test]
fn job_one_record_over_capacity_is_refused() {
    let dir = scratch("over-by-one");
    let exact = spec(32);
    let cost = exact.budget_records().unwrap();
    let mut cfg = ServerConfig::new(&dir);
    cfg.capacity = cost - 1;
    let server = JobServer::open(cfg).unwrap();
    match server.submit(exact) {
        Err(SubmitError::TooLarge {
            cost: c,
            capacity,
        }) => {
            assert_eq!(c, cost);
            assert_eq!(capacity, cost - 1);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A zero-record spec must be refused at validation, before pricing or
/// persistence — never enqueued.
#[test]
fn zero_record_job_is_rejected_as_invalid() {
    let dir = scratch("zero-records");
    let server = JobServer::open(ServerConfig::new(&dir)).unwrap();
    let mut empty = spec(33);
    empty.records = 0;
    match server.submit(empty) {
        Err(SubmitError::Invalid(msg)) => {
            assert!(msg.contains("records"), "message should blame records: {msg}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    assert!(server.list().is_empty(), "nothing may be enqueued");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degenerate-but-legal single-record job must sort and settle
/// with the digest of its one record.
#[test]
fn one_record_job_completes() {
    let dir = scratch("one-record");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 1;
    let server = JobServer::open(cfg).unwrap();
    let mut tiny = spec(34);
    tiny.records = 1;
    let id = server.submit(tiny.clone()).unwrap();
    wait_all_terminal(&server, Duration::from_secs(60));
    let s = server.status(id).unwrap();
    assert_eq!(s.state, JobState::Done, "{}", s.detail);
    assert_eq!(s.digest, Some(expected_digest(&tiny)));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ISSUE-10 satellite: the job store hits ENOSPC mid-service.  The
/// overflowing SUBMIT must be refused with the *typed* no-space
/// admission error — not an untyped I/O string, not a queued ghost that
/// wedges a worker slot — and the jobs admitted before the disk filled
/// run to completion, the server drains cleanly, and a restart on the
/// same store (fresh "disk", space freed) admits again.
#[test]
fn store_enospc_is_typed_leaves_no_wedged_slot_and_drains_clean() {
    let dir = scratch("store-enospc");
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 2;
    cfg.store_nospace_after = Some(2); // third submission overflows
    let server = JobServer::open(cfg).unwrap();

    let a = server.submit(spec(0xA)).expect("store has space");
    let b = server.submit(spec(0xB)).expect("store has space");
    let refused = server.submit(spec(0xC));
    match refused {
        Err(SubmitError::NoSpace(msg)) => {
            assert!(msg.contains("ENOSPC"), "diagnostic names the cause: {msg}");
        }
        other => panic!("expected the typed no-space refusal, got {other:?}"),
    }
    // Every later submission is refused the same way — deterministically,
    // not once-per-retry-attempt.
    assert!(matches!(server.submit(spec(0xD)), Err(SubmitError::NoSpace(_))));

    // The refusal left no queue slot, no ghost job, and no job directory.
    let stats = server.stats();
    assert_eq!(stats.queued + stats.running + stats.done, 2, "exactly the two admitted jobs exist");
    assert_eq!(server.list().len(), 2);

    // The admitted jobs are unharmed: both settle as done with the
    // digests their specs predict.
    wait_all_terminal(&server, Duration::from_secs(30));
    for (id, seed) in [(a, 0xA), (b, 0xB)] {
        let status = server
            .list()
            .into_iter()
            .find(|j| j.id == id)
            .expect("job still listed");
        assert_eq!(status.state, JobState::Done, "job {id}: {}", status.detail);
        assert_eq!(status.digest, Some(expected_digest(&spec(seed))));
    }

    // Clean drain: nothing suspended, nothing stuck in the queue.
    // (`shutdown` drains and releases the store's liveness lock.)
    let report = server.shutdown();
    assert_eq!(report.suspended, 0, "a refused submit must not leave work to suspend");
    drop(server);

    // Restart on the same store without the injection: the operator
    // freed space, and the server admits again with ids continuing past
    // the refused ones (refusals must not burn or corrupt the id space).
    let server = JobServer::open(ServerConfig::new(&dir)).unwrap();
    let c = server.submit(spec(0xE)).expect("space was freed");
    assert!(c > b, "id sequence survives the ENOSPC episode");
    wait_all_terminal(&server, Duration::from_secs(30));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
