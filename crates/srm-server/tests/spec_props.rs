//! Property tests for the `key=value` JobSpec encoding shared by the
//! wire protocol (`SUBMIT key=value ...`) and the durable per-job spec
//! file: every spec the strategy can produce round-trips
//! `encode → decode` exactly, and malformed input is refused with a
//! typed error, never a panic or a silently defaulted field.

use proptest::collection::vec;
use proptest::prelude::*;
use srm_core::{Placement, RunFormation};
use srm_server::{EngineKind, JobError, JobSpec};

/// Every JobSpec the encoding can represent.  Formation fractions are
/// pinned to the canonical 0.5 the wire format implies — `load` and
/// `parload:T` carry no fraction on the wire.
fn arb_spec() -> impl Strategy<Value = JobSpec> {
    let engine = prop_oneof![Just(EngineKind::Srm), Just(EngineKind::Dsm)];
    let placement = prop_oneof![Just(Placement::Random), Just(Placement::Staggered)];
    let formation = prop_oneof![
        Just(RunFormation::MemoryLoad { fraction: 0.5 }),
        Just(RunFormation::ReplacementSelection),
        (1usize..16).prop_map(|threads| RunFormation::ParallelMemoryLoad {
            fraction: 0.5,
            threads,
        }),
    ];
    (
        (engine, placement, formation),
        (1u64..1_000_000_000, any::<u64>()),
        (1usize..64, 1usize..256, 1usize..100_000),
        (any::<bool>(), 0usize..16, proptest::option::of(1u64..1_000_000)),
        // Any f64 in [0, 1) round-trips through Display/parse, but a
        // strategy over raw f64 bits mostly makes denormal noise; a
        // rational grid walks the same code path legibly.
        (0u32..1000, any::<u64>()),
    )
        .prop_map(
            |(
                (engine, placement, formation),
                (records, seed),
                (d, b, m),
                (pipeline, read_ahead, deadline_ms),
                (fr, fault_seed),
            )| JobSpec {
                engine,
                records,
                seed,
                d,
                b,
                m,
                placement,
                formation,
                pipeline,
                read_ahead,
                deadline_ms,
                fault_rate: f64::from(fr) / 1000.0,
                fault_seed,
            },
        )
}

/// Strings over an alphabet that parses as none of the value domains
/// (no digits, no `:`; `true`/`false`/engine/placement/formation names
/// are excluded case-by-case at the use site).
fn junk_value() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzQXZ?!@#";
    vec(0usize..ALPHABET.len(), 1..12)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i] as char).collect())
}

/// Identifier-shaped words: `[a-z][a-z0-9-]{0,15}`.
fn identifier() -> impl Strategy<Value = String> {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";
    (0usize..FIRST.len(), vec(0usize..REST.len(), 0..16)).prop_map(|(f, rest)| {
        let mut s = String::new();
        s.push(FIRST[f] as char);
        s.extend(rest.into_iter().map(|i| REST[i] as char));
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The durable-file direction: multi-line `k=v` text.
    #[test]
    fn spec_roundtrips_through_disk_encoding(spec in arb_spec()) {
        let decoded = JobSpec::decode(&spec.encode()).expect("decode own encoding");
        prop_assert_eq!(decoded, spec);
    }

    /// The wire direction: the same pairs as SUBMIT tokens.
    #[test]
    fn spec_roundtrips_through_wire_pairs(spec in arb_spec()) {
        let pairs = spec.to_pairs();
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let decoded = JobSpec::from_pairs(borrowed).expect("decode own pairs");
        prop_assert_eq!(decoded, spec);
    }

    /// Any single-key line with a value that fails to parse must come
    /// back as a typed Config error naming the key — not a panic, not
    /// a default.
    #[test]
    fn malformed_values_are_typed_errors(
        key in prop_oneof![
            Just("records"), Just("seed"), Just("d"), Just("b"), Just("m"),
            Just("engine"), Just("placement"), Just("formation"),
            Just("pipeline"), Just("deadline-ms"), Just("fault-rate"),
            Just("fault-seed"),
        ],
        junk in junk_value(),
    ) {
        prop_assume!(!matches!(
            (key, junk.as_str()),
            ("engine", "srm" | "dsm")
                | ("placement", "random" | "staggered")
                | ("formation", "load" | "rs")
                | ("pipeline", "true" | "false")
        ));
        // f64 parsing accepts `inf`/`nan` spellings; those are not
        // malformed for fault-rate (they fail later, in validate()).
        prop_assume!(key != "fault-rate" || junk.parse::<f64>().is_err());
        let line = format!("{key}={junk}");
        match JobSpec::decode(&line) {
            Err(JobError::Config(msg)) => {
                prop_assert!(msg.contains(key), "error must blame `{}`: {}", key, msg);
            }
            other => prop_assert!(false, "expected Config error for `{}`, got {:?}", line, other),
        }
    }

    /// Unknown keys and lines without `=` are refused, whatever the
    /// identifier looks like.
    #[test]
    fn unknown_keys_and_bare_lines_are_refused(word in identifier()) {
        prop_assume!(!matches!(
            word.as_str(),
            "engine" | "algo" | "records" | "seed" | "d" | "b" | "m" | "placement"
                | "formation" | "pipeline" | "deadline-ms" | "fault-rate" | "fault-seed"
        ));
        // Unknown key with a value.
        match JobSpec::decode(&format!("{word}=1")) {
            Err(JobError::Config(msg)) => prop_assert!(msg.contains(&word)),
            other => prop_assert!(false, "unknown key must be refused, got {:?}", other),
        }
        // No `=` at all: an Io error quoting the line.
        match JobSpec::decode(&word) {
            Err(JobError::Io(msg)) => prop_assert!(msg.contains(&word)),
            other => prop_assert!(false, "bare line must be refused, got {:?}", other),
        }
    }
}
