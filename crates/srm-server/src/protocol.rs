//! The line protocol: one request per line, one (or, for `WATCH` and
//! `LIST`, several) response lines back.
//!
//! Requests:
//!
//! ```text
//! SUBMIT key=value [key=value ...]   queue a job (JobSpec keys)
//! STATUS <id>                        one job's state
//! WATCH <id>                         stream state until it settles
//! CANCEL <id>                        cancel queued or running job
//! LIST                               every job, one line each
//! STATS                              server counters
//! DRAIN                              graceful drain-and-stop
//! PING                               liveness probe
//! QUIT                               close the connection
//! ```
//!
//! Responses are `OK ...` / `ERR code=<slug> <message>` lines;
//! `WATCH` and `LIST` prefix their streamed rows with `EVENT` / `JOB`
//! so clients can tell rows from the final status line.  Everything is
//! ASCII key=value — greppable in tests, typeable over `nc`.

use crate::job::{JobError, JobSpec};
use crate::server::{JobStatus, ServerStats, SubmitError};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
#[srmlint::protocol]
pub enum Request {
    /// Queue a job.
    Submit(JobSpec),
    /// One job's state.
    Status(u64),
    /// Stream a job's state until it settles.
    Watch(u64),
    /// Cancel a job.
    Cancel(u64),
    /// Every job.
    List,
    /// Server counters.
    Stats,
    /// Graceful drain-and-stop.
    Drain,
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

/// Parse one request line.  Errors are ready-to-send `ERR` lines.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let id = |rest: &str, verb: &str| -> Result<u64, String> {
        rest.parse()
            .map_err(|_| format!("ERR code=bad-request {verb} needs a numeric job id"))
    };
    match verb.to_ascii_uppercase().as_str() {
        "SUBMIT" => {
            let pairs: Vec<(&str, &str)> = rest
                .split_whitespace()
                .map(|tok| {
                    tok.split_once('=')
                        .ok_or_else(|| format!("ERR code=bad-request not key=value: `{tok}`"))
                })
                .collect::<Result<_, _>>()?;
            let spec = JobSpec::from_pairs(pairs)
                .map_err(|e: JobError| format!("ERR code=bad-request {e}"))?;
            Ok(Request::Submit(spec))
        }
        "STATUS" => Ok(Request::Status(id(rest, "STATUS")?)),
        "WATCH" => Ok(Request::Watch(id(rest, "WATCH")?)),
        "CANCEL" => Ok(Request::Cancel(id(rest, "CANCEL")?)),
        "LIST" => Ok(Request::List),
        "STATS" => Ok(Request::Stats),
        "DRAIN" => Ok(Request::Drain),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "" => Err("ERR code=bad-request empty line".into()),
        other => Err(format!("ERR code=bad-request unknown verb `{other}`")),
    }
}

/// The `ERR` line for a refused SUBMIT — the queue-full case is this
/// protocol's 429.
pub fn submit_error_line(e: &SubmitError) -> String {
    let code = match e {
        SubmitError::Draining => "draining",
        SubmitError::TooLarge { .. } => "too-large",
        SubmitError::QueueFull { .. } => "queue-full",
        SubmitError::Invalid(_) => "bad-request",
        SubmitError::NoSpace(_) => "no-space",
        SubmitError::Io(_) => "io",
    };
    format!("ERR code={code} {e}")
}

/// Render one job's status as response fields.
pub fn status_fields(s: &JobStatus) -> String {
    let engine = match s.spec.engine {
        crate::job::EngineKind::Srm => "srm",
        crate::job::EngineKind::Dsm => "dsm",
    };
    let mut line = format!(
        "id={} state={} engine={engine} records={} cost={} passes={}",
        s.id,
        s.state.as_str(),
        s.spec.records,
        s.cost,
        s.passes
    );
    if let Some(d) = s.digest {
        line.push_str(&format!(" digest={d}"));
    }
    if !s.detail.is_empty() {
        line.push_str(&format!(" detail=\"{}\"", s.detail));
    }
    line
}

/// Render the server counters as response fields.
pub fn stats_fields(s: &ServerStats) -> String {
    format!(
        "capacity={} admitted={} peak-admitted={} queued={} running={} done={} suspended={} cancelled={} failed={}",
        s.capacity,
        s.admitted,
        s.peak_admitted,
        s.queued,
        s.running,
        s.done,
        s.suspended,
        s.cancelled,
        s.failed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EngineKind;

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("  status 7 ").unwrap(), Request::Status(7));
        assert_eq!(parse_request("WATCH 3").unwrap(), Request::Watch(3));
        assert_eq!(parse_request("CANCEL 9").unwrap(), Request::Cancel(9));
        assert_eq!(parse_request("LIST").unwrap(), Request::List);
        assert_eq!(parse_request("DRAIN").unwrap(), Request::Drain);
        match parse_request("SUBMIT engine=dsm records=500 seed=9").unwrap() {
            Request::Submit(spec) => {
                assert_eq!(spec.engine, EngineKind::Dsm);
                assert_eq!(spec.records, 500);
                assert_eq!(spec.seed, 9);
            }
            other => panic!("expected Submit, got {other:?}"),
        }
    }

    #[test]
    fn bad_requests_become_err_lines() {
        for line in ["", "FLY", "STATUS many", "SUBMIT notkeyvalue", "SUBMIT x=1"] {
            let e = parse_request(line).unwrap_err();
            assert!(e.starts_with("ERR code=bad-request"), "{line} -> {e}");
        }
    }

    #[test]
    fn submit_errors_have_stable_codes() {
        let line = submit_error_line(&SubmitError::QueueFull { depth: 4 });
        assert!(line.starts_with("ERR code=queue-full"));
        let line = submit_error_line(&SubmitError::TooLarge {
            cost: 9,
            capacity: 5,
        });
        assert!(line.starts_with("ERR code=too-large"));
    }
}
