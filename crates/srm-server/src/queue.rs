//! Admission control: a memory ledger in records.
//!
//! Every job declares its memory price up front
//! ([`JobSpec::budget_records`](crate::job::JobSpec::budget_records) —
//! for SRM, the Definition-3 partition `M/B ≥ 2R + 4D + RD/B` rendered
//! in records).  The server configures a capacity `M` and admits a job
//! only while the sum of admitted prices stays within it; everything
//! else waits in a bounded FIFO queue.  [`Admission`] is that ledger —
//! plain arithmetic, no locking of its own (the server holds it inside
//! its state mutex), which keeps the invariant trivially auditable:
//! `admitted ≤ capacity` after every transition.

/// The admission ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admission {
    capacity: u64,
    admitted: u64,
    peak: u64,
}

impl Admission {
    /// A ledger with `capacity` records of server memory.
    pub fn new(capacity: u64) -> Self {
        Admission {
            capacity,
            admitted: 0,
            peak: 0,
        }
    }

    /// Total server memory, in records.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Memory currently admitted, in records.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// High-water mark of [`Admission::admitted`] since construction.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Whether a job of price `cost` could EVER be admitted.  Jobs that
    /// fail this are rejected outright rather than queued.
    pub fn ever_fits(&self, cost: u64) -> bool {
        cost <= self.capacity
    }

    /// Try to admit a job of price `cost`; on success the ledger is
    /// charged and `true` is returned.  Never overshoots capacity.
    pub fn try_admit(&mut self, cost: u64) -> bool {
        match self.admitted.checked_add(cost) {
            Some(next) if next <= self.capacity => {
                self.admitted = next;
                self.peak = self.peak.max(next);
                true
            }
            _ => false,
        }
    }

    /// Return a finished or failed job's price to the ledger.
    pub fn release(&mut self, cost: u64) {
        self.admitted = self.admitted.saturating_sub(cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_never_exceeds_capacity() {
        let mut a = Admission::new(100);
        assert!(a.try_admit(60));
        assert!(!a.try_admit(50), "60 + 50 > 100 must be refused");
        assert!(a.try_admit(40));
        assert_eq!(a.admitted(), 100);
        assert_eq!(a.peak(), 100);
        a.release(60);
        assert_eq!(a.admitted(), 40);
        assert!(a.try_admit(50));
        assert_eq!(a.peak(), 100, "peak is a high-water mark");
    }

    #[test]
    fn oversized_jobs_never_fit() {
        let mut a = Admission::new(10);
        assert!(!a.ever_fits(11));
        assert!(!a.try_admit(11));
        assert!(a.ever_fits(10));
        assert!(a.try_admit(10));
    }

    #[test]
    fn release_saturates() {
        let mut a = Admission::new(10);
        a.release(5);
        assert_eq!(a.admitted(), 0);
    }

    #[test]
    fn admit_overflow_is_refused_not_wrapped() {
        let mut a = Admission::new(u64::MAX);
        assert!(a.try_admit(u64::MAX));
        assert!(!a.try_admit(1));
    }
}
