//! The loopback TCP front end: accept connections, speak the line
//! protocol, and turn `DRAIN` (or an external [`ShutdownFlag`] trigger,
//! e.g. from a SIGTERM handler) into a graceful server drain.
//!
//! Everything here polls — the accept loop runs the listener
//! non-blocking and connection reads use short timeouts — so a shutdown
//! request is observed within tens of milliseconds without any
//! condition-variable machinery.

use crate::drain::DrainReport;
use crate::protocol::{parse_request, status_fields, stats_fields, submit_error_line, Request};
use crate::server::JobServer;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Accept-loop poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Per-connection read timeout (how fast a connection notices drain).
const READ_POLL: Duration = Duration::from_millis(50);
/// WATCH streaming interval.
const WATCH_POLL: Duration = Duration::from_millis(20);

/// Serve the line protocol on `listener` until the server's shutdown
/// flag is triggered (by `DRAIN`, or externally by a signal handler),
/// then drain gracefully and report.  Every running job reaches its
/// next checkpoint boundary before this returns.
pub fn serve(server: Arc<JobServer>, listener: TcpListener) -> std::io::Result<DrainReport> {
    listener.set_nonblocking(true)?;
    let shutdown = server.shutdown_flag();
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shutdown.is_set() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let server = Arc::clone(&server);
                conns.push(std::thread::spawn(move || {
                    let _ = handle_conn(&server, stream);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(e) => return Err(e),
        }
        conns.retain(|h| !h.is_finished());
    }
    // The flag is set: drain jobs first (connections keep answering
    // STATUS/WATCH while jobs checkpoint), then close connections.
    let report = server.shutdown();
    for h in conns {
        let _ = h.join();
    }
    Ok(report)
}

/// Read complete lines from a non-blocking-ish stream, dispatching each
/// through the protocol.  Returns when the peer closes, sends `QUIT`,
/// or the server shuts down.
// Observes the shutdown flag only to stop *accepting work* — jobs
// checkpoint via the drain path, not here, so the interrupt rule does
// not apply to this poll loop (`Interrupted` below is io::ErrorKind).
fn handle_conn(server: &Arc<JobServer>, mut stream: TcpStream) -> std::io::Result<()> { // srmlint::allow(interrupt)
    stream.set_read_timeout(Some(READ_POLL))?;
    let shutdown = server.shutdown_flag();
    let mut pending = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        // Drain any complete lines already buffered.
        while let Some(nl) = pending.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line).into_owned();
            if !dispatch(server, &mut stream, line.trim())? {
                return Ok(());
            }
        }
        if shutdown.is_set() {
            // Jobs are checkpointing; tell the client and hang up.
            let _ = writeln!(stream, "BYE draining");
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Handle one request line; `Ok(false)` closes the connection.
fn dispatch(
    server: &Arc<JobServer>,
    stream: &mut TcpStream,
    line: &str,
) -> std::io::Result<bool> {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(err_line) => {
            writeln!(stream, "{err_line}")?;
            return Ok(true);
        }
    };
    match request {
        Request::Ping => writeln!(stream, "OK pong")?,
        Request::Quit => return Ok(false),
        Request::Submit(spec) => match server.submit(spec) {
            Ok(id) => {
                let cost = server
                    .status(id)
                    .map(|s| s.cost)
                    .unwrap_or_default();
                writeln!(stream, "OK id={id} cost={cost}")?;
            }
            Err(e) => writeln!(stream, "{}", submit_error_line(&e))?,
        },
        Request::Status(id) => match server.status(id) {
            Some(s) => writeln!(stream, "OK {}", status_fields(&s))?,
            None => writeln!(stream, "ERR code=not-found job {id}")?,
        },
        Request::Watch(id) => {
            let shutdown = server.shutdown_flag();
            loop {
                let Some(s) = server.status(id) else {
                    writeln!(stream, "ERR code=not-found job {id}")?;
                    break;
                };
                let settled = s.state.is_terminal() || s.state == crate::server::JobState::Suspended;
                if settled {
                    writeln!(stream, "OK {}", status_fields(&s))?;
                    break;
                }
                writeln!(stream, "EVENT {}", status_fields(&s))?;
                if shutdown.is_set() {
                    // The drain will settle it; one final status follows
                    // on the next WATCH. Don't hold the connection.
                    writeln!(stream, "BYE draining")?;
                    break;
                }
                std::thread::sleep(WATCH_POLL);
            }
        }
        Request::Cancel(id) => {
            if server.cancel(id) {
                writeln!(stream, "OK cancelling id={id}")?;
            } else {
                writeln!(stream, "ERR code=not-found job {id} (or already settled)")?;
            }
        }
        Request::List => {
            let jobs = server.list();
            for s in &jobs {
                writeln!(stream, "JOB {}", status_fields(s))?;
            }
            writeln!(stream, "OK count={}", jobs.len())?;
        }
        Request::Stats => writeln!(stream, "OK {}", stats_fields(&server.stats()))?,
        Request::Drain => {
            writeln!(stream, "OK draining")?;
            server.shutdown_flag().trigger();
        }
    }
    Ok(true)
}
