//! Graceful-shutdown coordination.
//!
//! A drain is the server-wide analogue of a single sort's interrupt:
//! stop admitting work, let every running job reach its next pass
//! boundary (where the PR-5 checkpoint path journals a manifest
//! atomically), and only then stop.  [`ShutdownFlag`] is the signal —
//! one flag shared by the signal handler, the network front end, and
//! the `DRAIN` protocol verb — and [`DrainReport`] is the accounting a
//! completed drain hands back: what finished, what was suspended
//! mid-sort (resumable on restart, byte-identically), what was
//! cancelled, and what was still queued.

use pdisk::InterruptFlag;

/// Server-wide shutdown signal.  Clones share state; triggering is
/// sticky and safe from signal handlers and foreign threads.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    flag: InterruptFlag,
}

impl ShutdownFlag {
    /// A new, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request shutdown.  Idempotent.
    pub fn trigger(&self) {
        self.flag.trigger();
    }

    /// Whether shutdown has been requested.
    pub fn is_set(&self) -> bool {
        self.flag.is_set()
    }

    /// The underlying [`InterruptFlag`], for bridging external triggers
    /// (signal handlers, watchdogs) into the drain: triggering the
    /// returned flag triggers this shutdown.
    pub fn interrupt_flag(&self) -> InterruptFlag {
        self.flag.clone()
    }
}

/// What a completed drain left behind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that ran to completion before or during the drain.
    pub completed: u64,
    /// Jobs checkpointed mid-sort; a restarted server resumes them.
    pub suspended: u64,
    /// Jobs cancelled (by request or deadline) before completion.
    pub cancelled: u64,
    /// Jobs that failed with an error.
    pub failed: u64,
    /// Jobs still waiting in the queue; a restarted server re-queues
    /// them.
    pub queued: u64,
}

impl DrainReport {
    /// Total jobs the report covers.
    pub fn total(&self) -> u64 {
        self.completed + self.suspended + self.cancelled + self.failed + self.queued
    }
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drained: {} completed, {} suspended, {} cancelled, {} failed, {} queued",
            self.completed, self.suspended, self.cancelled, self.failed, self.queued
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_flag_is_sticky_and_shared() {
        let a = ShutdownFlag::new();
        let b = a.clone();
        assert!(!a.is_set());
        b.trigger();
        assert!(a.is_set());
        b.trigger();
        assert!(a.is_set());
    }

    #[test]
    fn report_totals_and_renders() {
        let r = DrainReport {
            completed: 2,
            suspended: 1,
            cancelled: 1,
            failed: 0,
            queued: 3,
        };
        assert_eq!(r.total(), 7);
        let s = r.to_string();
        assert!(s.contains("2 completed") && s.contains("1 suspended"));
    }
}
