//! # srm-server — sort-as-a-service over the SRM/DSM engines
//!
//! PRs 1–5 made the paper's sorter fault-injected, parity-protected,
//! model-checked, and crash-consistent — but still one-process-one-sort.
//! This crate turns it into a long-running serving system: a job server
//! that accepts concurrent sort jobs over a local line protocol, runs
//! them on a bounded worker pool, and streams status and results back.
//!
//! The pieces, bottom to top:
//!
//! * [`job`] — the [`Sorter`](job::Sorter) trait: one job-oriented entry
//!   point over both engines (`srm_core::SrmSorter` and
//!   `dsm::DsmSorter`), plus [`JobSpec`](job::JobSpec), the single
//!   construction point for engines shared by the CLI, the crash-matrix
//!   harness, and this server;
//! * [`queue`] — admission control: the Definition-3 memory partition
//!   (`M/B ≥ 2R + 4D + RD/B`) prices each job, and the server admits
//!   only combinations whose summed budgets fit the configured `M`;
//! * [`drain`] — graceful-shutdown coordination: stop admitting, let
//!   every running job reach its next checkpoint boundary (journaled
//!   via the PR-5 atomic manifest path), then stop;
//! * [`server`] — the [`JobServer`](server::JobServer): durable per-job
//!   directories, a polling worker pool, deadlines, cancellation, and a
//!   restart scan that resumes every in-flight job from `load_latest`
//!   manifests byte-identically;
//! * [`protocol`] / [`net`] — the line protocol (`SUBMIT`, `STATUS`,
//!   `WATCH`, `CANCEL`, `LIST`, `STATS`, `DRAIN`, `PING`) and the
//!   loopback TCP front end.

#![forbid(unsafe_code)]

pub mod drain;
pub mod job;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;

pub use drain::{DrainReport, ShutdownFlag};
pub use job::{
    digest_keys, expected_digest, generate_records, AnyJob, DsmJob, EngineKind, JobError,
    JobOutcome, JobRun, JobSpec, Sorter, SrmJob,
};
pub use net::serve;
pub use queue::Admission;
pub use server::{JobServer, JobState, JobStatus, ServerConfig, ServerStats, SubmitError};
