//! The job-oriented engine API: one entry point over both sorters.
//!
//! Historically every driver built its engine by hand — the CLI
//! assembled an `SrmSorter` from parsed flags, the crash-matrix harness
//! assembled another from its `MatrixConfig`, and they staged input,
//! ran, and read output through engine-specific free functions.  The
//! job server needs a *third* driver, so this module extracts the
//! shared shape once:
//!
//! * [`JobSpec`] — a plain-data description of one sort job (engine,
//!   geometry, seed, formation, deadline, fault injection) with a
//!   key=value encoding shared by the wire protocol and the server's
//!   durable spec files.  `JobSpec` is the **single construction
//!   point** for engines: CLI, crashmat, and server all call
//!   [`JobSpec::srm_sorter`] / [`JobSpec::dsm_sorter`] / [`JobSpec::build`];
//! * [`Sorter`] — the uniform stage / run / output lifecycle over any
//!   [`DiskArray`], with checkpoint-manifest resume and a pass-boundary
//!   observer (the hook deadlines and kill drills ride on);
//! * [`JobRun`] — an engine-agnostic handle to a staged input or sorted
//!   output run, encodable for the server's durable job state.
//!
//! Admission control prices a job with [`JobSpec::budget_records`]: for
//! SRM that is the Definition-3 partition `M/B = 2R + 4D + RD/B`
//! rendered in records; for DSM it is the full memory load the striped
//! merge uses.

use analysis::MemoryBudget;
use dsm::{read_logical_run, write_unsorted_stripes, DsmConfig, DsmError, DsmSorter};
use pdisk::{DiskArray, Geometry, InterruptFlag, PdiskError, Record, StripedRun, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::checkpoint::SortManifest;
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, Placement, RunFormation, SrmConfig, SrmError, SrmSorter};
use std::path::Path;

/// Errors surfaced by the job layer and the server built on it.
#[derive(Debug)]
#[non_exhaustive]
pub enum JobError {
    /// Underlying disk-model failure.
    Disk(PdiskError),
    /// Invalid job description or configuration.
    Config(String),
    /// Checkpoint manifest could not be read, written, or trusted.
    Checkpoint(String),
    /// The sort stopped at a pass boundary because its interrupt flag
    /// was triggered (drain, cancel, or deadline); the boundary's
    /// checkpoint was journaled first.
    Interrupted,
    /// Engine-internal invariant failure (a bug, not an input problem).
    Engine(String),
    /// Host I/O failure outside the disk model (spec files, markers).
    Io(String),
    /// A model-check replay of the job's I/O trace found a violation.
    Model(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Disk(e) => write!(f, "disk error: {e}"),
            JobError::Config(m) => write!(f, "job configuration error: {m}"),
            JobError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            JobError::Interrupted => {
                write!(f, "job interrupted at a pass boundary (checkpoint journaled)")
            }
            JobError::Engine(m) => write!(f, "engine invariant violated: {m}"),
            JobError::Io(m) => write!(f, "i/o error: {m}"),
            JobError::Model(m) => write!(f, "model-rule violation: {m}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PdiskError> for JobError {
    fn from(e: PdiskError) -> Self {
        JobError::Disk(e)
    }
}

impl From<SrmError> for JobError {
    fn from(e: SrmError) -> Self {
        match e {
            SrmError::Interrupted => JobError::Interrupted,
            SrmError::Disk(d) => JobError::Disk(d),
            SrmError::Config(m) => JobError::Config(m),
            SrmError::Checkpoint(m) => JobError::Checkpoint(m),
            SrmError::Internal(m) => JobError::Engine(m),
            other => JobError::Engine(other.to_string()),
        }
    }
}

impl From<DsmError> for JobError {
    fn from(e: DsmError) -> Self {
        match e {
            DsmError::Interrupted => JobError::Interrupted,
            DsmError::Disk(d) => JobError::Disk(d),
            DsmError::Config(m) => JobError::Config(m),
            DsmError::Checkpoint(m) => JobError::Checkpoint(m),
            other => JobError::Engine(other.to_string()),
        }
    }
}

/// Which engine a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Simple randomized mergesort (the paper's contribution).
    #[default]
    Srm,
    /// Disk-striped mergesort, the baseline.
    Dsm,
}

impl EngineKind {
    fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Srm => "srm",
            EngineKind::Dsm => "dsm",
        }
    }
}

/// An engine-agnostic handle to a run on the array: SRM sorts
/// physically striped runs, DSM logically striped ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobRun {
    /// SRM layout ([`StripedRun`]).
    Striped(StripedRun),
    /// DSM layout ([`dsm::LogicalRun`]).
    Logical(dsm::LogicalRun),
}

impl JobRun {
    /// Records in the run.
    pub fn records(&self) -> u64 {
        match self {
            JobRun::Striped(r) => r.records,
            JobRun::Logical(r) => r.records,
        }
    }

    /// One-line encoding for durable job state.
    pub fn encode(&self) -> String {
        match self {
            JobRun::Striped(r) => {
                let offs: Vec<String> = r.base_offsets.iter().map(|o| o.to_string()).collect();
                format!(
                    "striped {} {} {} {}",
                    r.start_disk.0,
                    r.len_blocks,
                    r.records,
                    offs.join(",")
                )
            }
            JobRun::Logical(r) => {
                format!("logical {} {} {}", r.start_stripe, r.len_stripes, r.records)
            }
        }
    }

    /// Parse [`JobRun::encode`] output.
    pub fn decode(s: &str) -> Result<Self, JobError> {
        let bad = || JobError::Io(format!("unparsable run descriptor `{s}`"));
        let mut parts = s.split_whitespace();
        match parts.next() {
            Some("striped") => {
                let start: u32 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let len_blocks: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let records: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let offs = parts.next().ok_or_else(bad)?;
                let base_offsets: Vec<u64> = offs
                    .split(',')
                    .map(|o| o.parse().map_err(|_| bad()))
                    .collect::<Result<_, _>>()?;
                Ok(JobRun::Striped(StripedRun {
                    start_disk: pdisk::DiskId(start),
                    len_blocks,
                    records,
                    base_offsets,
                }))
            }
            Some("logical") => {
                let start_stripe: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let len_stripes: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                let records: u64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?;
                Ok(JobRun::Logical(dsm::LogicalRun {
                    start_stripe,
                    len_stripes,
                    records,
                }))
            }
            _ => Err(bad()),
        }
    }
}

/// Unified result of one sort run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// The sorted output run.
    pub run: JobRun,
    /// Records sorted.
    pub records: u64,
    /// Runs produced by formation (whole logical sort, across resumes).
    pub runs_formed: u64,
    /// Merge passes (whole logical sort, across resumes).
    pub merge_passes: u64,
    /// Merge order the engine used.
    pub merge_order: usize,
}

/// The uniform job lifecycle over one engine.
///
/// `stage` lays unsorted records out in the engine's input format;
/// `run` sorts (or resumes from `manifest`), calling `observer` at each
/// pass boundary this call completes (pass 0 = formation); `output`
/// reads the sorted records back.  `run` returns
/// [`JobError::Interrupted`] when the engine's interrupt flag stopped
/// it at a boundary — the manifest is journaled first, so calling `run`
/// again continues byte-identically.
pub trait Sorter<R: Record> {
    /// Stage `data` as this engine's unsorted input layout.
    fn stage<A: DiskArray<R>>(&self, array: &mut A, data: &[R]) -> Result<JobRun, JobError>;

    /// Sort (or resume) the staged input.
    fn run<A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &JobRun,
        manifest: Option<&Path>,
        observer: &mut dyn FnMut(u64),
    ) -> Result<JobOutcome, JobError>;

    /// Read a run's records back in order.
    fn output<A: DiskArray<R>>(&self, array: &mut A, run: &JobRun) -> Result<Vec<R>, JobError>;

    /// Whether a valid checkpoint generation exists at `manifest`.
    fn checkpoint_present(&self, manifest: &Path) -> Result<bool, JobError>;
}

fn want_striped(run: &JobRun) -> Result<&StripedRun, JobError> {
    match run {
        JobRun::Striped(r) => Ok(r),
        JobRun::Logical(_) => Err(JobError::Config(
            "SRM job handed a DSM (logical) run".into(),
        )),
    }
}

fn want_logical(run: &JobRun) -> Result<&dsm::LogicalRun, JobError> {
    match run {
        JobRun::Logical(r) => Ok(r),
        JobRun::Striped(_) => Err(JobError::Config(
            "DSM job handed an SRM (striped) run".into(),
        )),
    }
}

/// An SRM job: a configured [`SrmSorter`] behind the [`Sorter`] trait.
#[derive(Debug, Clone)]
pub struct SrmJob {
    sorter: SrmSorter,
}

impl SrmJob {
    /// Wrap an already-configured engine (e.g. one carrying a crash
    /// clock from the crash-matrix harness).
    pub fn new(sorter: SrmSorter) -> Self {
        SrmJob { sorter }
    }

    /// The engine, e.g. to inspect its configuration.
    pub fn sorter(&self) -> &SrmSorter {
        &self.sorter
    }
}

impl<R: Record> Sorter<R> for SrmJob {
    fn stage<A: DiskArray<R>>(&self, array: &mut A, data: &[R]) -> Result<JobRun, JobError> {
        Ok(JobRun::Striped(write_unsorted_input(array, data)?))
    }

    fn run<A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &JobRun,
        manifest: Option<&Path>,
        observer: &mut dyn FnMut(u64),
    ) -> Result<JobOutcome, JobError> {
        let input = want_striped(input)?;
        let (run, report) = self.sorter.sort_observed(array, input, manifest, |pass, _a| {
            observer(pass);
            Ok(())
        })?;
        Ok(JobOutcome {
            run: JobRun::Striped(run),
            records: report.records,
            runs_formed: report.runs_formed as u64,
            merge_passes: report.merge_passes,
            merge_order: report.merge_order,
        })
    }

    fn output<A: DiskArray<R>>(&self, array: &mut A, run: &JobRun) -> Result<Vec<R>, JobError> {
        Ok(read_run(array, want_striped(run)?)?)
    }

    fn checkpoint_present(&self, manifest: &Path) -> Result<bool, JobError> {
        Ok(SortManifest::load_latest(manifest)?.is_some())
    }
}

/// A DSM job: a configured [`DsmSorter`] behind the [`Sorter`] trait.
#[derive(Debug, Clone)]
pub struct DsmJob {
    sorter: DsmSorter,
}

impl DsmJob {
    /// Wrap an already-configured engine.
    pub fn new(sorter: DsmSorter) -> Self {
        DsmJob { sorter }
    }
}

impl<R: Record> Sorter<R> for DsmJob {
    fn stage<A: DiskArray<R>>(&self, array: &mut A, data: &[R]) -> Result<JobRun, JobError> {
        Ok(JobRun::Logical(write_unsorted_stripes(array, data)?))
    }

    fn run<A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &JobRun,
        manifest: Option<&Path>,
        observer: &mut dyn FnMut(u64),
    ) -> Result<JobOutcome, JobError> {
        let input = want_logical(input)?;
        let (run, report) = self.sorter.sort_observed(array, input, manifest, |pass, _a| {
            observer(pass);
            Ok(())
        })?;
        Ok(JobOutcome {
            run: JobRun::Logical(run),
            records: report.records,
            runs_formed: report.runs_formed as u64,
            merge_passes: report.merge_passes,
            merge_order: report.merge_order,
        })
    }

    fn output<A: DiskArray<R>>(&self, array: &mut A, run: &JobRun) -> Result<Vec<R>, JobError> {
        Ok(read_logical_run(array, want_logical(run)?)?)
    }

    fn checkpoint_present(&self, manifest: &Path) -> Result<bool, JobError> {
        Ok(dsm::checkpoint::DsmManifest::load_latest(manifest)?.is_some())
    }
}

/// Either engine behind one type, so drivers can hold a job without
/// generics.
#[derive(Debug, Clone)]
pub enum AnyJob {
    /// An SRM job.
    Srm(SrmJob),
    /// A DSM job.
    Dsm(DsmJob),
}

impl<R: Record> Sorter<R> for AnyJob {
    fn stage<A: DiskArray<R>>(&self, array: &mut A, data: &[R]) -> Result<JobRun, JobError> {
        match self {
            AnyJob::Srm(j) => Sorter::<R>::stage(j, array, data),
            AnyJob::Dsm(j) => Sorter::<R>::stage(j, array, data),
        }
    }

    fn run<A: DiskArray<R>>(
        &self,
        array: &mut A,
        input: &JobRun,
        manifest: Option<&Path>,
        observer: &mut dyn FnMut(u64),
    ) -> Result<JobOutcome, JobError> {
        match self {
            AnyJob::Srm(j) => Sorter::<R>::run(j, array, input, manifest, observer),
            AnyJob::Dsm(j) => Sorter::<R>::run(j, array, input, manifest, observer),
        }
    }

    fn output<A: DiskArray<R>>(&self, array: &mut A, run: &JobRun) -> Result<Vec<R>, JobError> {
        match self {
            AnyJob::Srm(j) => Sorter::<R>::output(j, array, run),
            AnyJob::Dsm(j) => Sorter::<R>::output(j, array, run),
        }
    }

    fn checkpoint_present(&self, manifest: &Path) -> Result<bool, JobError> {
        match self {
            AnyJob::Srm(j) => Sorter::<U64Record>::checkpoint_present(j, manifest),
            AnyJob::Dsm(j) => Sorter::<U64Record>::checkpoint_present(j, manifest),
        }
    }
}

/// Plain-data description of one sort job — the single construction
/// point for engines across the CLI, crash-matrix harness, and server.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Engine to run.
    pub engine: EngineKind,
    /// Records to generate and sort.
    pub records: u64,
    /// Seed for both input generation and the engine's placement RNG.
    pub seed: u64,
    /// Disks.
    pub d: usize,
    /// Records per block.
    pub b: usize,
    /// Memory, in records.
    pub m: usize,
    /// SRM start-disk policy (ignored by DSM).
    pub placement: Placement,
    /// Run-formation strategy (SRM; DSM always uses memory loads).
    pub formation: RunFormation,
    /// Use the pipelined (split-phase) merge engine.
    pub pipeline: bool,
    /// Forecast-driven read-ahead depth for the pipelined SRM engine
    /// (0 = demand reads only; ignored when `pipeline` is off).
    pub read_ahead: usize,
    /// Per-job execution deadline in milliseconds, checked at pass
    /// boundaries: overruns checkpoint, then abort.
    pub deadline_ms: Option<u64>,
    /// Transient-fault injection rate per disk (absorbed by the
    /// server's retry layer).
    pub fault_rate: f64,
    /// Seed for the fault model.
    pub fault_seed: u64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            engine: EngineKind::Srm,
            records: 20_000,
            seed: 0xC11_5EED,
            d: 2,
            b: 8,
            m: 512,
            placement: Placement::Random,
            formation: RunFormation::MemoryLoad { fraction: 0.5 },
            pipeline: false,
            read_ahead: 0,
            deadline_ms: None,
            fault_rate: 0.0,
            fault_seed: 0xFA_017,
        }
    }
}

impl JobSpec {
    /// The job's array geometry.
    pub fn geometry(&self) -> Result<Geometry, JobError> {
        Geometry::new(self.d, self.b, self.m).map_err(JobError::Disk)
    }

    /// Validate everything a server must reject up front.
    pub fn validate(&self) -> Result<(), JobError> {
        if self.records == 0 {
            return Err(JobError::Config("records must be positive".into()));
        }
        if !(0.0..1.0).contains(&self.fault_rate) {
            return Err(JobError::Config(format!(
                "fault-rate {} outside [0, 1)",
                self.fault_rate
            )));
        }
        let geom = self.geometry()?;
        match self.engine {
            EngineKind::Srm => geom.srm_merge_order().map(|_| ()).map_err(JobError::Disk),
            EngineKind::Dsm => geom.dsm_merge_order().map(|_| ()).map_err(JobError::Disk),
        }
    }

    /// The job's memory price in records — the quantity admission
    /// control sums against the server's `M`.  For SRM this is the
    /// Definition-3 buffer partition (`M/B = 2R + 4D + RD/B` blocks,
    /// rendered in records); for DSM, the full memory load its striped
    /// merge and formation passes use.
    pub fn budget_records(&self) -> Result<u64, JobError> {
        let geom = self.geometry()?;
        match self.engine {
            EngineKind::Srm => {
                let budget = MemoryBudget::for_geometry(geom).map_err(JobError::Disk)?;
                Ok((budget.total() * geom.b) as u64)
            }
            EngineKind::Dsm => Ok(geom.m as u64),
        }
    }

    /// The SRM engine configuration this spec describes.
    pub fn srm_config(&self) -> SrmConfig {
        SrmConfig {
            placement: self.placement,
            run_formation: self.formation,
            seed: self.seed,
        }
    }

    /// Build the SRM engine — THE one way drivers construct it.
    pub fn srm_sorter(&self) -> SrmSorter {
        SrmSorter::new(self.srm_config())
            .with_pipeline(self.pipeline)
            .with_read_ahead(self.read_ahead)
    }

    /// Build the DSM engine.
    pub fn dsm_sorter(&self) -> DsmSorter {
        DsmSorter::new(DsmConfig::default()).with_pipeline(self.pipeline)
    }

    /// Build the job, optionally wiring an interrupt flag (the drain /
    /// cancel / deadline hook) into the engine.
    pub fn build(&self, interrupt: Option<InterruptFlag>) -> AnyJob {
        match self.engine {
            EngineKind::Srm => {
                let mut s = self.srm_sorter();
                if let Some(f) = interrupt {
                    s = s.with_interrupt(f);
                }
                AnyJob::Srm(SrmJob::new(s))
            }
            EngineKind::Dsm => {
                let mut s = self.dsm_sorter();
                if let Some(f) = interrupt {
                    s = s.with_interrupt(f);
                }
                AnyJob::Dsm(DsmJob::new(s))
            }
        }
    }

    /// Deterministically regenerate this job's input records.
    pub fn input_records(&self) -> Vec<U64Record> {
        generate_records(self.records, self.seed)
    }

    /// Key=value pairs, the shared wire/file encoding.
    pub fn to_pairs(&self) -> Vec<(&'static str, String)> {
        let formation = match self.formation {
            RunFormation::MemoryLoad { .. } => "load".to_string(),
            RunFormation::ParallelMemoryLoad { threads, .. } => format!("parload:{threads}"),
            RunFormation::ReplacementSelection => "rs".to_string(),
        };
        let mut pairs = vec![
            ("engine", self.engine.as_str().to_string()),
            ("records", self.records.to_string()),
            ("seed", self.seed.to_string()),
            ("d", self.d.to_string()),
            ("b", self.b.to_string()),
            ("m", self.m.to_string()),
            (
                "placement",
                match self.placement {
                    Placement::Random => "random".to_string(),
                    Placement::Staggered => "staggered".to_string(),
                },
            ),
            ("formation", formation),
            ("pipeline", u8::from(self.pipeline).to_string()),
            ("read-ahead", self.read_ahead.to_string()),
            ("fault-rate", self.fault_rate.to_string()),
            ("fault-seed", self.fault_seed.to_string()),
        ];
        if let Some(ms) = self.deadline_ms {
            pairs.push(("deadline-ms", ms.to_string()));
        }
        pairs
    }

    /// Parse `key=value` pairs (unknown keys are rejected; missing keys
    /// fall back to [`JobSpec::default`]).
    pub fn from_pairs<'a>(
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<Self, JobError> {
        let mut spec = JobSpec::default();
        let bad = |k: &str, v: &str| JobError::Config(format!("bad value `{v}` for `{k}`"));
        for (k, v) in pairs {
            match k {
                "engine" | "algo" => {
                    spec.engine = match v {
                        "srm" => EngineKind::Srm,
                        "dsm" => EngineKind::Dsm,
                        _ => return Err(bad(k, v)),
                    }
                }
                "records" => spec.records = v.parse().map_err(|_| bad(k, v))?,
                "seed" => spec.seed = v.parse().map_err(|_| bad(k, v))?,
                "d" => spec.d = v.parse().map_err(|_| bad(k, v))?,
                "b" => spec.b = v.parse().map_err(|_| bad(k, v))?,
                "m" => spec.m = v.parse().map_err(|_| bad(k, v))?,
                "placement" => {
                    spec.placement = match v {
                        "random" => Placement::Random,
                        "staggered" => Placement::Staggered,
                        _ => return Err(bad(k, v)),
                    }
                }
                "formation" => {
                    spec.formation = match v.split_once(':') {
                        None if v == "load" => RunFormation::MemoryLoad { fraction: 0.5 },
                        None if v == "rs" => RunFormation::ReplacementSelection,
                        Some(("parload", t)) => RunFormation::ParallelMemoryLoad {
                            fraction: 0.5,
                            threads: t.parse().map_err(|_| bad(k, v))?,
                        },
                        _ => return Err(bad(k, v)),
                    }
                }
                "pipeline" => {
                    spec.pipeline = match v {
                        "1" | "true" => true,
                        "0" | "false" => false,
                        _ => return Err(bad(k, v)),
                    }
                }
                "read-ahead" => spec.read_ahead = v.parse().map_err(|_| bad(k, v))?,
                "deadline-ms" => spec.deadline_ms = Some(v.parse().map_err(|_| bad(k, v))?),
                "fault-rate" => spec.fault_rate = v.parse().map_err(|_| bad(k, v))?,
                "fault-seed" => spec.fault_seed = v.parse().map_err(|_| bad(k, v))?,
                other => return Err(JobError::Config(format!("unknown job key `{other}`"))),
            }
        }
        Ok(spec)
    }

    /// Multi-line `key=value` rendering for the durable spec file.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.to_pairs() {
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
            out.push('\n');
        }
        out
    }

    /// Parse [`JobSpec::encode`] output.
    pub fn decode(text: &str) -> Result<Self, JobError> {
        let pairs: Vec<(&str, &str)> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| {
                l.split_once('=')
                    .ok_or_else(|| JobError::Io(format!("bad spec line `{l}`")))
            })
            .collect::<Result<_, _>>()?;
        Self::from_pairs(pairs)
    }
}

/// The standard job input: `records` pseudo-random u64 keys from
/// `seed`, matching the CLI's generator — so a job is fully described
/// by its spec and any two runs of it sort identical data.
pub fn generate_records(records: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..records).map(|_| U64Record(rng.random())).collect()
}

/// FNV-1a over the little-endian key bytes in sequence order: the
/// byte-identity fingerprint used to compare a resumed job's output
/// against an uninterrupted run's.
pub fn digest_keys(keys: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for k in keys {
        for b in k.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The expected output digest of a job: generate its input, sort in
/// host memory, digest.  What the disks must agree with.
pub fn expected_digest(spec: &JobSpec) -> u64 {
    let mut keys: Vec<u64> = spec.input_records().iter().map(|r| r.0).collect();
    keys.sort_unstable();
    digest_keys(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdisk::MemDiskArray;

    #[test]
    fn spec_roundtrips_through_encoding() {
        let spec = JobSpec {
            engine: EngineKind::Dsm,
            records: 1234,
            seed: 99,
            d: 3,
            b: 4,
            m: 240,
            placement: Placement::Staggered,
            formation: RunFormation::ParallelMemoryLoad {
                fraction: 0.5,
                threads: 2,
            },
            pipeline: true,
            read_ahead: 4,
            deadline_ms: Some(5000),
            fault_rate: 0.01,
            fault_seed: 7,
        };
        let decoded = JobSpec::decode(&spec.encode()).unwrap();
        assert_eq!(decoded, spec);
        // Protocol-style pairs parse the same way.
        let encoded = spec.encode();
        let pairs: Vec<(&str, &str)> = encoded
            .lines()
            .filter_map(|l| l.split_once('='))
            .collect();
        assert_eq!(JobSpec::from_pairs(pairs).unwrap(), spec);
    }

    #[test]
    fn bad_spec_values_are_rejected() {
        assert!(JobSpec::from_pairs([("engine", "quantum")]).is_err());
        assert!(JobSpec::from_pairs([("records", "many")]).is_err());
        assert!(JobSpec::from_pairs([("no-such-key", "1")]).is_err());
        let zero = JobSpec {
            records: 0,
            ..JobSpec::default()
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn run_descriptors_roundtrip() {
        let striped = JobRun::Striped(StripedRun {
            start_disk: pdisk::DiskId(1),
            len_blocks: 9,
            records: 33,
            base_offsets: vec![4, 0, 7],
        });
        assert_eq!(JobRun::decode(&striped.encode()).unwrap(), striped);
        let logical = JobRun::Logical(dsm::LogicalRun {
            start_stripe: 2,
            len_stripes: 5,
            records: 40,
        });
        assert_eq!(JobRun::decode(&logical.encode()).unwrap(), logical);
        assert!(JobRun::decode("conical 1 2 3").is_err());
    }

    #[test]
    fn srm_budget_is_the_definition_3_partition() {
        let spec = JobSpec::default();
        let geom = spec.geometry().unwrap();
        let budget = MemoryBudget::for_geometry(geom).unwrap();
        assert_eq!(
            spec.budget_records().unwrap(),
            (budget.total() * geom.b) as u64
        );
        let dsm = JobSpec {
            engine: EngineKind::Dsm,
            ..JobSpec::default()
        };
        assert_eq!(dsm.budget_records().unwrap(), geom.m as u64);
    }

    #[test]
    fn both_engines_sort_through_the_trait() {
        for engine in [EngineKind::Srm, EngineKind::Dsm] {
            let spec = JobSpec {
                engine,
                records: 3000,
                d: 2,
                b: 4,
                m: 96,
                ..JobSpec::default()
            };
            let geom = spec.geometry().unwrap();
            let mut array: MemDiskArray<U64Record> = MemDiskArray::new(geom);
            let data = spec.input_records();
            let job = spec.build(None);
            let input = job.stage(&mut array, &data).unwrap();
            let mut passes = Vec::new();
            let outcome = job
                .run(&mut array, &input, None, &mut |p| passes.push(p))
                .unwrap();
            assert_eq!(outcome.records, 3000);
            assert!(passes.contains(&0), "formation boundary must be observed");
            let out = Sorter::<U64Record>::output(&job, &mut array, &outcome.run).unwrap();
            let got = digest_keys(out.iter().map(|r| r.0));
            assert_eq!(got, expected_digest(&spec), "engine {engine:?}");
        }
    }

    #[test]
    fn interrupt_via_build_flows_through_the_trait() {
        let spec = JobSpec {
            records: 3000,
            d: 2,
            b: 4,
            m: 96,
            ..JobSpec::default()
        };
        let mut array: MemDiskArray<U64Record> = MemDiskArray::new(spec.geometry().unwrap());
        let data = spec.input_records();
        let flag = InterruptFlag::new();
        flag.trigger();
        let job = spec.build(Some(flag));
        let input = job.stage(&mut array, &data).unwrap();
        let r = job.run(&mut array, &input, None, &mut |_| {});
        assert!(matches!(r, Err(JobError::Interrupted)));
    }
}
