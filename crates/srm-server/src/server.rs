//! The job server: durable job directories, a bounded worker pool,
//! admission control, deadlines, cancellation, and drain/restart.
//!
//! ## Durability layout
//!
//! Every job owns a directory `jobs_dir/job-NNNNNN/`:
//!
//! ```text
//! job-000001/
//!   spec       job description (JobSpec key=value encoding), atomic
//!   input      staged-input run descriptor, written before the sort
//!   disks/     the FileDiskArray backend (survives crashes)
//!   manifest   PR-5 checkpoint manifest (journaled at pass boundaries)
//!   done       terminal marker: digest + report (atomic rename)
//!   fail       terminal marker: kind=cancelled|deadline|failed
//! ```
//!
//! Everything the server knows is reconstructible from this layout:
//! [`JobServer::open`] scans it, marks jobs with a terminal marker as
//! finished, and re-queues the rest in id order.  A re-queued job whose
//! manifest survives resumes from its last checkpoint byte-identically
//! (the spec pins the data seed and the placement RNG; the manifest
//! pins the pass and the RNG fast-forward count).  A re-queued job
//! without a manifest re-sorts its staged input from scratch — same
//! spec, same bytes.
//!
//! ## Admission invariant
//!
//! Workers claim strictly from the queue head, and only after
//! [`Admission::try_admit`] accepts the job's Definition-3 price; so at
//! every instant the summed budgets of running jobs fit the configured
//! capacity, and jobs start in submission order.

use crate::drain::{DrainReport, ShutdownFlag};
use crate::job::{expected_digest, digest_keys, AnyJob, JobError, JobRun, JobSpec, Sorter};
use crate::queue::Admission;
use pdisk::{
    DiskArray, FaultModel, FaultyDiskArray, FileDiskArray, InterruptFlag, RetryPolicy,
    RetryingDiskArray, TracingDiskArray, U64Record,
};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long a worker sleeps between queue polls (the vendored
/// `parking_lot` has no condvar, so coordination is polling).
const WORKER_POLL: Duration = Duration::from_millis(10);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the durable job directories.
    pub jobs_dir: PathBuf,
    /// Server memory `M`, in records — what admission control sums
    /// Definition-3 job budgets against.
    pub capacity: u64,
    /// Worker threads (concurrent jobs never exceed this OR the
    /// admission capacity, whichever binds first).
    pub workers: usize,
    /// Queued (not yet running) jobs beyond which SUBMIT is refused
    /// with a queue-full rejection.
    pub queue_depth: usize,
    /// Per-I/O delay injected into each job's file backend, to make
    /// concurrency observable in tests.
    pub io_delay: Duration,
    /// Retry policy absorbing each job's transient faults.
    pub retry: RetryPolicy,
    /// Trace every job's I/O and replay it through the model checker;
    /// a violation fails the job.
    pub check_model: bool,
    /// Fault-injection hook: after this many successful job-store spec
    /// writes, further SUBMITs fail as if the store volume hit ENOSPC.
    /// The refusal must be a clean typed admission error that takes no
    /// queue slot; the server keeps serving and draining.  `None` (the
    /// default) disables the hook.
    pub store_nospace_after: Option<u64>,
}

impl ServerConfig {
    /// Defaults: capacity 8192 records, 2 workers, queue depth 16, no
    /// injected delay, default retry policy, model checking off.
    pub fn new(jobs_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            jobs_dir: jobs_dir.into(),
            capacity: 8192,
            workers: 2,
            queue_depth: 16,
            io_delay: Duration::ZERO,
            retry: RetryPolicy::default(),
            check_model: false,
            store_nospace_after: None,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue for admission.
    Queued,
    /// Admitted and sorting on a worker.
    Running,
    /// Interrupted by a drain at a checkpoint boundary; a restarted
    /// server resumes it byte-identically.
    Suspended,
    /// Completed and verified.
    Done,
    /// Cancelled by request (checkpointed first if it was running).
    Cancelled,
    /// Overran its deadline: checkpointed, then aborted.
    DeadlineExceeded,
    /// Failed with an error.
    Failed,
}

impl JobState {
    /// Whether the state is final (the job will never run again).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::DeadlineExceeded | JobState::Failed
        )
    }

    /// Wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Suspended => "suspended",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline-exceeded",
            JobState::Failed => "failed",
        }
    }
}

/// Point-in-time public view of one job.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id (assigned at submit, stable across restarts).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job's full specification.
    pub spec: JobSpec,
    /// Admission price in records (the Definition-3 budget).
    pub cost: u64,
    /// Last pass boundary reached (0 = formation).
    pub passes: u64,
    /// FNV-1a digest of the sorted output keys, once done.
    pub digest: Option<u64>,
    /// Human-readable detail (error text, cancellation reason).
    pub detail: String,
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Configured memory capacity, in records.
    pub capacity: u64,
    /// Memory admitted right now, in records.
    pub admitted: u64,
    /// High-water mark of `admitted` since the server opened.
    pub peak_admitted: u64,
    /// Jobs waiting in the queue.
    pub queued: u64,
    /// Jobs running on workers.
    pub running: u64,
    /// Jobs completed and verified.
    pub done: u64,
    /// Jobs suspended by a drain.
    pub suspended: u64,
    /// Jobs cancelled or deadline-aborted.
    pub cancelled: u64,
    /// Jobs failed.
    pub failed: u64,
}

/// Why a SUBMIT was refused.  Marked for srmlint's protocol pass: every
/// refusal must map to a wire code in `submit_error_line`, with no
/// catch-all to silently swallow a new variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
#[srmlint::protocol]
pub enum SubmitError {
    /// The server is draining and admits no new work.
    Draining,
    /// The job's budget alone exceeds the server's capacity; it could
    /// never run here.
    TooLarge {
        /// The job's Definition-3 price in records.
        cost: u64,
        /// The server's capacity in records.
        capacity: u64,
    },
    /// The bounded queue is full — the 429 of this protocol.
    QueueFull {
        /// The configured queue depth that is exhausted.
        depth: usize,
    },
    /// The spec failed validation.
    Invalid(String),
    /// The job store is out of space (ENOSPC).  Unlike [`Self::Io`]
    /// this is not worth retrying as-is: the client must wait for the
    /// operator to free space.  The refused job takes no queue slot.
    NoSpace(String),
    /// The job directory could not be persisted.
    Io(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Draining => write!(f, "server is draining"),
            SubmitError::TooLarge { cost, capacity } => write!(
                f,
                "job needs {cost} records of memory but the server only has {capacity}"
            ),
            SubmitError::QueueFull { depth } => {
                write!(f, "queue full (depth {depth}); retry later")
            }
            SubmitError::Invalid(m) => write!(f, "invalid job: {m}"),
            SubmitError::NoSpace(m) => {
                write!(f, "job store out of space: {m}; free space and resubmit")
            }
            SubmitError::Io(m) => write!(f, "cannot persist job: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Internal per-job record.
#[derive(Debug)]
struct Job {
    spec: JobSpec,
    cost: u64,
    state: JobState,
    flag: InterruptFlag,
    cancel_requested: bool,
    deadline_hit: bool,
    passes: u64,
    digest: Option<u64>,
    detail: String,
}

impl Job {
    fn status(&self, id: u64) -> JobStatus {
        JobStatus {
            id,
            state: self.state,
            spec: self.spec.clone(),
            cost: self.cost,
            passes: self.passes,
            digest: self.digest,
            detail: self.detail.clone(),
        }
    }
}

#[derive(Debug)]
struct State {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    admission: Admission,
    next_id: u64,
    draining: bool,
    running: usize,
}

#[derive(Debug)]
struct Inner {
    cfg: ServerConfig,
    state: Mutex<State>,
    shutdown: ShutdownFlag,
    /// Successful job-store spec writes, for the
    /// [`ServerConfig::store_nospace_after`] injection hook.
    store_writes: std::sync::atomic::AtomicU64,
}

impl Inner {
    fn state(&self) -> pdisk::lockwitness::Witnessed<MutexGuard<'_, State>> {
        // A worker panicking mid-update cannot leave partial state: every
        // critical section is a handful of field writes.  Recover the guard.
        pdisk::lockwitness::guard(
            "srm_server::server::Inner.state",
            self.state.lock().unwrap_or_else(|p| p.into_inner()),
        )
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.cfg.jobs_dir.join(format!("job-{id:06}"))
    }
}

/// The sort-as-a-service job server.
#[derive(Debug)]
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Write `contents` to `path` atomically (temp + fsync + rename), the
/// same discipline as the PR-5 checkpoint journal.
fn atomic_write(path: &Path, contents: &str) -> Result<(), JobError> {
    atomic_write_raw(path, contents)
        .map_err(|e| JobError::Io(format!("write {}: {e}", path.display())))
}

/// [`atomic_write`] preserving the raw [`std::io::Error`], so callers
/// that classify by kind (ENOSPC vs. everything else) can do so.
fn atomic_write_raw(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

fn read_marker(path: &Path) -> Option<BTreeMap<String, String>> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(
        text.lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

impl JobServer {
    /// Open (or create) a server over `cfg.jobs_dir`: acquire the
    /// single-server lock, scan the durable job directories, re-queue
    /// every non-terminal job in id order, and start the worker pool.
    pub fn open(cfg: ServerConfig) -> Result<Self, JobError> {
        if cfg.workers == 0 {
            return Err(JobError::Config("server needs at least one worker".into()));
        }
        std::fs::create_dir_all(&cfg.jobs_dir)
            .map_err(|e| JobError::Io(format!("create {}: {e}", cfg.jobs_dir.display())))?;
        acquire_lock(&cfg.jobs_dir)?;

        let mut jobs = BTreeMap::new();
        let entries = std::fs::read_dir(&cfg.jobs_dir)
            .map_err(|e| JobError::Io(format!("scan {}: {e}", cfg.jobs_dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let dir = entry.path();
            let spec_text = std::fs::read_to_string(dir.join("spec"))
                .map_err(|e| JobError::Io(format!("read {}/spec: {e}", dir.display())))?;
            let spec = JobSpec::decode(&spec_text)?;
            let cost = spec.budget_records()?;
            let (state, digest, detail) = if let Some(done) = read_marker(&dir.join("done")) {
                let digest = done.get("digest").and_then(|d| d.parse().ok());
                (JobState::Done, digest, String::new())
            } else if let Some(fail) = read_marker(&dir.join("fail")) {
                let state = match fail.get("kind").map(String::as_str) {
                    Some("cancelled") => JobState::Cancelled,
                    Some("deadline") => JobState::DeadlineExceeded,
                    _ => JobState::Failed,
                };
                let detail = fail.get("detail").cloned().unwrap_or_default();
                (state, None, detail)
            } else {
                (JobState::Queued, None, String::new())
            };
            jobs.insert(
                id,
                Job {
                    spec,
                    cost,
                    state,
                    flag: InterruptFlag::new(),
                    cancel_requested: false,
                    deadline_hit: false,
                    passes: 0,
                    digest,
                    detail,
                },
            );
        }
        // BTreeMap iteration is id order, so restart preserves FIFO.
        let queue: VecDeque<u64> = jobs
            .iter()
            .filter(|(_, j)| j.state == JobState::Queued)
            .map(|(id, _)| *id)
            .collect();
        let next_id = jobs.keys().next_back().map_or(1, |max| max + 1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs,
                queue,
                admission: Admission::new(cfg.capacity),
                next_id,
                draining: false,
                running: 0,
            }),
            shutdown: ShutdownFlag::new(),
            cfg,
            store_writes: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(JobServer {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// The flag that requests a server-wide drain-and-stop; share it
    /// with signal handlers and the network front end.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.inner.shutdown.clone()
    }

    /// Server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Submit a job.  Validates the spec, prices it, persists the job
    /// directory, and enqueues it FIFO.  Refusals are explicit:
    /// [`SubmitError::TooLarge`] can never run here,
    /// [`SubmitError::QueueFull`] is the bounded-queue 429.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        spec.validate()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        let cost = spec
            .budget_records()
            .map_err(|e| SubmitError::Invalid(e.to_string()))?;
        let mut st = self.inner.state();
        if st.draining || self.inner.shutdown.is_set() {
            return Err(SubmitError::Draining);
        }
        if !st.admission.ever_fits(cost) {
            return Err(SubmitError::TooLarge {
                cost,
                capacity: st.admission.capacity(),
            });
        }
        if st.queue.len() >= self.inner.cfg.queue_depth {
            return Err(SubmitError::QueueFull {
                depth: self.inner.cfg.queue_depth,
            });
        }
        let id = st.next_id;
        let dir = self.inner.job_dir(id);
        // The injected ENOSPC fires *before* the directory is created:
        // a refused submission must leave no queue slot and no partial
        // job directory behind, so the server stays clean and drains.
        if let Some(limit) = self.inner.cfg.store_nospace_after {
            use std::sync::atomic::Ordering;
            if self.inner.store_writes.fetch_add(1, Ordering::SeqCst) >= limit {
                return Err(SubmitError::NoSpace(format!(
                    "injected ENOSPC on job store {}",
                    self.inner.cfg.jobs_dir.display()
                )));
            }
        }
        let persist = std::fs::create_dir_all(&dir)
            .and_then(|()| atomic_write_raw(&dir.join("spec"), &spec.encode()));
        if let Err(e) = persist {
            // Best-effort cleanup: an unpersisted job directory must not
            // confuse a future restart scan.
            let _ = std::fs::remove_dir_all(&dir);
            let msg = format!("persist {}: {e}", dir.display());
            return Err(if e.kind() == std::io::ErrorKind::StorageFull {
                SubmitError::NoSpace(msg)
            } else {
                SubmitError::Io(msg)
            });
        }
        st.next_id += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                cost,
                state: JobState::Queued,
                flag: InterruptFlag::new(),
                cancel_requested: false,
                deadline_hit: false,
                passes: 0,
                digest: None,
                detail: String::new(),
            },
        );
        st.queue.push_back(id);
        Ok(id)
    }

    /// Status of one job, if it exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.inner.state().jobs.get(&id).map(|j| j.status(id))
    }

    /// Status of every job, in id order.
    pub fn list(&self) -> Vec<JobStatus> {
        self.inner
            .state()
            .jobs
            .iter()
            .map(|(id, j)| j.status(*id))
            .collect()
    }

    /// Cancel a job.  Queued jobs cancel immediately; running jobs are
    /// interrupted at their next checkpoint boundary (the checkpoint is
    /// journaled first).  Returns `false` for unknown or already
    /// terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let marker = {
            let mut st = self.inner.state();
            let Some(job) = st.jobs.get_mut(&id) else {
                return false;
            };
            match job.state {
                JobState::Queued | JobState::Suspended => {
                    job.state = JobState::Cancelled;
                    job.detail = "cancelled before running".into();
                    st.queue.retain(|q| *q != id);
                    true
                }
                JobState::Running => {
                    job.cancel_requested = true;
                    job.flag.trigger();
                    return true;
                }
                _ => return false,
            }
        };
        if marker {
            let dir = self.inner.job_dir(id);
            let _ = atomic_write(
                &dir.join("fail"),
                "kind=cancelled\ndetail=cancelled before running\n",
            );
        }
        true
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServerStats {
        let st = self.inner.state();
        let mut s = ServerStats {
            capacity: st.admission.capacity(),
            admitted: st.admission.admitted(),
            peak_admitted: st.admission.peak(),
            queued: st.queue.len() as u64,
            running: st.running as u64,
            ..ServerStats::default()
        };
        for job in st.jobs.values() {
            match job.state {
                JobState::Done => s.done += 1,
                JobState::Suspended => s.suspended += 1,
                JobState::Cancelled | JobState::DeadlineExceeded => s.cancelled += 1,
                JobState::Failed => s.failed += 1,
                _ => {}
            }
        }
        s
    }

    /// Drain: stop admitting, interrupt every running job at its next
    /// checkpoint boundary, and wait until no job is running.  Queued
    /// jobs stay queued (durably) for the next server.
    pub fn drain(&self) -> DrainReport {
        {
            let mut st = self.inner.state();
            st.draining = true;
            for job in st.jobs.values() {
                if job.state == JobState::Running {
                    job.flag.trigger();
                }
            }
        }
        loop {
            {
                let st = self.inner.state();
                if st.running == 0 {
                    break;
                }
            }
            std::thread::sleep(WORKER_POLL);
        }
        let stats = self.stats();
        DrainReport {
            completed: stats.done,
            suspended: stats.suspended,
            cancelled: stats.cancelled,
            failed: stats.failed,
            queued: stats.queued,
        }
    }

    /// Drain, stop the workers, release the server lock, and report.
    pub fn shutdown(&self) -> DrainReport {
        let report = self.drain();
        self.inner.shutdown.trigger();
        let handles: Vec<_> = {
            let mut w = pdisk::lockwitness::guard(
                "srm_server::server::JobServer.workers",
                self.workers.lock().unwrap_or_else(|p| p.into_inner()),
            );
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(self.inner.cfg.jobs_dir.join("server.lock"));
        report
    }
}

/// Take the single-server lock on `jobs_dir`, reclaiming stale locks
/// left by dead processes (checked via `/proc`).
fn acquire_lock(jobs_dir: &Path) -> Result<(), JobError> {
    let lock = jobs_dir.join("server.lock");
    if let Ok(text) = std::fs::read_to_string(&lock) {
        if let Ok(pid) = text.trim().parse::<u32>() {
            // A live pid refuses the open even when it is our own: two
            // servers over one jobs dir are wrong no matter where they
            // run.  `shutdown` releases the lock; dead owners are
            // reclaimed.
            if Path::new(&format!("/proc/{pid}")).exists() {
                return Err(JobError::Io(format!(
                    "jobs dir {} is owned by a live server (pid {pid})",
                    jobs_dir.display()
                )));
            }
        }
    }
    atomic_write(&lock, &format!("{}\n", std::process::id()))
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        if inner.shutdown.is_set() {
            return;
        }
        let claimed = {
            let mut st = inner.state();
            if st.draining {
                None
            } else {
                // Strict FIFO: only the head is considered, so a large
                // job is never starved by smaller ones slipping past it.
                // Claim and drain are serialized by the state mutex: a
                // drain either sees this job still queued (and leaves it
                // for the next server) or already Running with the fresh
                // flag it will trigger.
                match st.queue.front().copied() {
                    Some(id) => {
                        let cost = st.jobs.get(&id).map_or(0, |j| j.cost);
                        if st.admission.try_admit(cost) {
                            st.queue.pop_front();
                            st.running += 1;
                            if let Some(job) = st.jobs.get_mut(&id) {
                                job.state = JobState::Running;
                                job.flag = InterruptFlag::new();
                                job.cancel_requested = false;
                                job.deadline_hit = false;
                            }
                            Some((id, cost))
                        } else {
                            None
                        }
                    }
                    None => None,
                }
            }
        };
        match claimed {
            Some((id, cost)) => execute(inner, id, cost),
            None => std::thread::sleep(WORKER_POLL),
        }
    }
}

/// Run one claimed job to a terminal or suspended state and write its
/// durable marker.
fn execute(inner: &Arc<Inner>, id: u64, cost: u64) {
    let (spec, flag) = {
        let st = inner.state();
        match st.jobs.get(&id) {
            Some(job) => (job.spec.clone(), job.flag.clone()),
            None => return,
        }
    };
    let result = run_job(inner, id, &spec, flag);
    let dir = inner.job_dir(id);
    let marker: Option<(String, String)>;
    {
        let mut st = inner.state();
        st.running -= 1;
        st.admission.release(cost);
        let Some(job) = st.jobs.get_mut(&id) else {
            return;
        };
        match result {
            Ok(digest) => {
                job.state = JobState::Done;
                job.digest = Some(digest);
                job.detail.clear();
                marker = None; // `done` was written inside run_job
            }
            Err(JobError::Interrupted) => {
                if job.cancel_requested {
                    job.state = JobState::Cancelled;
                    job.detail = "cancelled at a checkpoint boundary".into();
                    marker = Some(("cancelled".into(), job.detail.clone()));
                } else if job.deadline_hit {
                    job.state = JobState::DeadlineExceeded;
                    job.detail = "deadline overrun: checkpointed, then aborted".into();
                    marker = Some(("deadline".into(), job.detail.clone()));
                } else {
                    // A drain stopped it: suspended, resumable on restart.
                    job.state = JobState::Suspended;
                    job.detail = "suspended by drain; checkpoint journaled".into();
                    marker = None;
                }
            }
            Err(e) => {
                job.state = JobState::Failed;
                job.detail = e.to_string();
                marker = Some(("failed".into(), job.detail.clone()));
            }
        }
    }
    if let Some((kind, detail)) = marker {
        let _ = atomic_write(&dir.join("fail"), &format!("kind={kind}\ndetail={detail}\n"));
    }
}

/// Build (or reopen) the job's world and sort.  Returns the verified
/// output digest on completion.
fn run_job(inner: &Arc<Inner>, id: u64, spec: &JobSpec, flag: InterruptFlag) -> Result<u64, JobError> {
    let dir = inner.job_dir(id);
    let disks = dir.join("disks");
    let manifest = dir.join("manifest");
    let input_path = dir.join("input");
    let geom = spec.geometry()?;
    let job = spec.build(Some(flag));

    // Resume only when both halves of the crashed world survive: the
    // staged input descriptor and a loadable checkpoint generation.
    let resume = input_path.exists() && Sorter::<U64Record>::checkpoint_present(&job, &manifest)?;
    let (file, input) = if resume {
        let f: FileDiskArray<U64Record> = FileDiskArray::open(geom, &disks)?;
        let text = std::fs::read_to_string(&input_path)
            .map_err(|e| JobError::Io(format!("read {}: {e}", input_path.display())))?;
        (f, JobRun::decode(text.trim())?)
    } else {
        // Partial leftovers (a crash before the first checkpoint) are
        // wiped; the job re-stages deterministically from its spec.
        let _ = std::fs::remove_dir_all(&disks);
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_file(manifest.with_extension("prev"));
        let mut f: FileDiskArray<U64Record> = FileDiskArray::create(geom, &disks)?;
        let data = spec.input_records();
        let input = job.stage(&mut f, &data)?;
        f.sync()?;
        atomic_write(&input_path, &input.encode())?;
        (f, input)
    };
    file.set_io_delay(inner.cfg.io_delay);

    // The protected stack every job runs on: retries over injected
    // transient faults over the durable file backend.  With the spec's
    // fault rate at 0 the fault layer is a no-op passthrough, so one
    // stack shape serves both faulty and clean jobs.
    let faulty = FaultyDiskArray::new(
        file,
        FaultModel::random(spec.fault_seed).with_rate(spec.fault_rate),
    );
    let mut stack = RetryingDiskArray::new(faulty, inner.cfg.retry);

    let started = Instant::now();
    let deadline = spec.deadline_ms.map(Duration::from_millis);
    let inner_obs = Arc::clone(inner);
    let mut observer = move |pass: u64| {
        let mut st = inner_obs.state();
        if let Some(j) = st.jobs.get_mut(&id) {
            j.passes = pass;
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    j.deadline_hit = true;
                    j.flag.trigger();
                }
            }
        }
    };

    let digest = if inner.cfg.check_model {
        let mut traced = TracingDiskArray::new(stack);
        let digest = sort_and_digest(&job, &mut traced, &input, &manifest, &mut observer)?;
        let trace = traced.take_trace();
        modelcheck::check_trace(geom, &trace)
            .map_err(|v| JobError::Model(v.to_string()))?;
        digest
    } else {
        sort_and_digest(&job, &mut stack, &input, &manifest, &mut observer)?
    };

    let expected = expected_digest(spec);
    if digest != expected {
        return Err(JobError::Engine(format!(
            "output digest {digest:#018x} != expected {expected:#018x}"
        )));
    }
    Ok(digest)
}

/// Sort (or resume), read the output back through the same stack, and
/// digest it.  On completion the `done` marker is journaled before the
/// caller flips in-memory state, so a crash between the two leaves a
/// resumable-but-finished job, never a lost result.
fn sort_and_digest<A: DiskArray<U64Record>>(
    job: &AnyJob,
    array: &mut A,
    input: &JobRun,
    manifest: &Path,
    observer: &mut dyn FnMut(u64),
) -> Result<u64, JobError> {
    let outcome = job.run(array, input, Some(manifest), observer)?;
    let out = Sorter::<U64Record>::output(job, array, &outcome.run)?;
    let digest = digest_keys(out.iter().map(|r| r.0));
    let done = format!(
        "digest={digest}\nrecords={}\nruns-formed={}\nmerge-passes={}\nmerge-order={}\nrun={}\n",
        outcome.records,
        outcome.runs_formed,
        outcome.merge_passes,
        outcome.merge_order,
        outcome.run.encode(),
    );
    atomic_write(&manifest.with_file_name("done"), &done)?;
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::EngineKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srm-server-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_spec(seed: u64) -> JobSpec {
        JobSpec {
            engine: EngineKind::Srm,
            records: 1500,
            seed,
            d: 2,
            b: 4,
            m: 96,
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_run_and_report_one_job() {
        let dir = tmp_dir("one");
        let mut cfg = ServerConfig::new(&dir);
        cfg.workers = 1;
        let server = JobServer::open(cfg).unwrap();
        let id = server.submit(small_spec(7)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let s = server.status(id).unwrap();
            if s.state.is_terminal() {
                assert_eq!(s.state, JobState::Done, "detail: {}", s.detail);
                assert_eq!(s.digest, Some(expected_digest(&small_spec(7))));
                break;
            }
            assert!(Instant::now() < deadline, "job stuck: {:?}", s.state);
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_and_overflow_submissions_are_refused() {
        let dir = tmp_dir("refuse");
        let mut cfg = ServerConfig::new(&dir);
        cfg.capacity = 10; // far below any real budget
        cfg.queue_depth = 0;
        let server = JobServer::open(cfg).unwrap();
        match server.submit(small_spec(1)) {
            Err(SubmitError::TooLarge { cost, capacity }) => {
                assert!(cost > capacity);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_depth_is_bounded() {
        let dir = tmp_dir("depth");
        let spec = small_spec(3);
        let mut cfg = ServerConfig::new(&dir);
        cfg.workers = 1;
        cfg.queue_depth = 1;
        // Exactly one job's budget: the second job queues, the third
        // overflows the depth-1 queue.
        cfg.capacity = spec.budget_records().unwrap();
        cfg.io_delay = Duration::from_millis(2); // keep job 1 running a while
        let server = JobServer::open(cfg).unwrap();
        let first = server.submit(spec.clone()).unwrap();
        // Wait until the worker claims job 1, so the queue is empty again.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().running == 0 {
            assert!(Instant::now() < deadline, "job 1 never started");
            std::thread::sleep(Duration::from_millis(5));
        }
        let second = server.submit(small_spec(4)).unwrap();
        match server.submit(small_spec(5)) {
            Err(SubmitError::QueueFull { depth: 1 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_ne!(first, second);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_server_on_same_dir_is_refused() {
        let dir = tmp_dir("lock");
        let server = JobServer::open(ServerConfig::new(&dir)).unwrap();
        let err = JobServer::open(ServerConfig::new(&dir));
        assert!(err.is_err(), "live lock must refuse a second server");
        server.shutdown();
        // After shutdown the lock is released and reopening works.
        let again = JobServer::open(ServerConfig::new(&dir)).unwrap();
        again.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
