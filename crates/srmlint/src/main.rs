//! `srmlint` CLI: run the workspace analysis directly, optionally
//! cross-checking a runtime lock-order witness log.
//!
//! ```text
//! srmlint [--root DIR] [--verify-witness LOG]
//! ```
//!
//! `cargo xtask lint` wraps the same library for day-to-day use; this
//! binary exists for CI's witness step and for running the analyzer
//! against an arbitrary checkout.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut witness: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--verify-witness" => witness = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: srmlint [--root DIR] [--verify-witness LOG]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`; see --help");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let mut analysis = srmlint::analyze_workspace(&root);

    if let Some(log_path) = &witness {
        match std::fs::read_to_string(log_path) {
            Ok(log) => {
                let report = srmlint::locks::verify_witness(
                    &analysis.graph,
                    log_path,
                    &log,
                    &mut analysis.findings,
                );
                println!(
                    "srmlint: witness: {} label(s), {} order(s) observed; static \
                     graph has {} node(s), {} edge(s); {} node(s) and {} edge(s) \
                     unobserved by tests",
                    report.labels_observed,
                    report.orders_observed,
                    report.nodes_static,
                    report.edges_static,
                    report.unobserved_nodes.len(),
                    report.unobserved_edges.len(),
                );
                for n in &report.unobserved_nodes {
                    println!("srmlint: witness: note: static lock `{n}` never observed at runtime");
                }
                for (a, b) in &report.unobserved_edges {
                    println!(
                        "srmlint: witness: note: static may-hold edge `{a}` → `{b}` \
                         never observed at runtime"
                    );
                }
            }
            Err(e) => {
                eprintln!("cannot read witness log {}: {e}", log_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    srmlint::relativize(&mut analysis.findings, &root);
    for f in &analysis.findings {
        println!("{f}");
    }
    if analysis.findings.is_empty() {
        println!("srmlint: {} files clean", analysis.files);
        ExitCode::SUCCESS
    } else {
        println!(
            "srmlint: {} finding(s) in {} files",
            analysis.findings.len(),
            analysis.files
        );
        ExitCode::FAILURE
    }
}

/// `CARGO_MANIFEST_DIR` is `crates/srmlint`, two levels below the
/// workspace root; fall back to the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(|a| a.to_path_buf()).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}
