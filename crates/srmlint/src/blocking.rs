//! Blocking-in-worker pass.
//!
//! Disk-worker and heartbeat threads are latency budgets, not general
//! executors: a worker stuck in an unbounded `recv()` or a stray
//! filesystem call stalls one disk of a parallel-write group, which
//! (per the striping model) stalls *every* disk in the group.  The
//! pass walks everything reachable from fns annotated
//! `#[srmlint::worker_entry]` (closures inside the entry count as its
//! body) and flags calls from a blocklist of `std::io`/channel
//! blocking primitives.  A fn annotated `#[srmlint::blessed_seam]` may
//! make *direct* blocking calls — that is the sanctioned
//! submit/complete seam (the positioned reads/writes, fsync, and the
//! job-queue `recv` of `pdisk`'s I/O workers) — but its callees are
//! still traversed.  `thread::sleep` is deliberately allowed: the
//! workers use it to emulate device service time.  One-off exceptions
//! use `// srmlint::allow(blocking)` on the call line.

use crate::calls::{call_sites, Callee, FnId, Index};
use crate::model::ItemKind;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method/function names that block the calling thread.
const BLOCKING: &[&str] = &[
    "recv", // unbounded channel receive; recv_timeout is fine
    "join",
    "read_to_string",
    "read_to_end",
    "read_line",
    "read_exact",
    "read_exact_at",
    "write_all_at",
    "sync_all",
    "sync_data",
    "accept",
    "wait",
    "stdin",
];

/// Path-qualified blocking calls: (qualifier, name).
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
    ("fs", "remove_file"),
    ("fs", "rename"),
    ("fs", "create_dir_all"),
    ("fs", "metadata"),
];

pub fn run(idx: &Index<'_>, findings: &mut Vec<Finding>) {
    // Entry points, with the entry's name for the report.
    let entries: Vec<FnId> = idx
        .all_fns()
        .filter(|&id| idx.item(id).has_attr("srmlint::worker_entry"))
        .collect();
    if entries.is_empty() {
        return;
    }

    // BFS the call graph from each entry, remembering which entry
    // reached each fn first (for the message).
    let mut reached: BTreeMap<FnId, String> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &e in &entries {
        let name = idx.item(e).name.clone();
        if reached.insert(e, name).is_none() {
            queue.push_back(e);
        }
    }
    while let Some(id) = queue.pop_front() {
        let (f, it) = (idx.file(id), idx.item(id));
        let ItemKind::Fn { body: Some(b), .. } = it.kind else {
            continue;
        };
        let via = reached
            .get(&id)
            .cloned()
            .unwrap_or_default();
        for site in call_sites(f, b) {
            for callee in idx.resolve(&site.callee, it.impl_of.as_deref()) {
                if let std::collections::btree_map::Entry::Vacant(e) = reached.entry(callee) {
                    e.insert(via.clone());
                    queue.push_back(callee);
                }
            }
        }
    }

    // Scan every reached fn for blocking calls.
    let mut seen: BTreeSet<(std::path::PathBuf, u32, String)> = BTreeSet::new();
    for (&id, entry) in &reached {
        let (f, it) = (idx.file(id), idx.item(id));
        let blessed = it.has_attr("srmlint::blessed_seam");
        let ItemKind::Fn { body: Some(b), .. } = it.kind else {
            continue;
        };
        for site in call_sites(f, b) {
            let name = site.callee.name().to_string();
            let is_blocking = match &site.callee {
                Callee::Path { qual, name } => BLOCKING_PATHS
                    .iter()
                    .any(|(q, n)| q == qual && n == name)
                    || BLOCKING.contains(&name.as_str()),
                _ => BLOCKING.contains(&name.as_str()),
            };
            if !is_blocking || blessed {
                continue;
            }
            if f.has_directive(site.line, "srmlint::allow(blocking)") {
                continue;
            }
            if seen.insert((f.path.clone(), site.line, name.clone())) {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: site.line,
                    rule: "blocking",
                    message: format!(
                        "blocking call `{name}` in `{fn_name}` is reachable from \
                         worker entry `{entry}` outside a blessed seam; workers \
                         must stay non-blocking (#[srmlint::blessed_seam] or \
                         // srmlint::allow(blocking) if intentional)",
                        fn_name = it.name
                    ),
                });
            }
        }
    }
}
