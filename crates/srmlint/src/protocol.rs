//! Protocol-exhaustiveness pass.
//!
//! Enums annotated `#[srmlint::protocol]` are message vocabularies
//! (`srm-dist`'s `Msg`, the server line protocol's `Request`).  Any
//! non-test `match` whose arms name a variant of a protocol enum is a
//! dispatch point, and a dispatch point must be *literally* exhaustive:
//! every variant named, no `_ =>` and no bare-binding arm to swallow a
//! message kind.  `rustc` cannot enforce this — a wildcard arm is
//! perfectly well-typed, which is exactly how an unhandled message
//! silently becomes a dropped message.  Matches that are genuinely not
//! dispatch (e.g. `if let`, or a `match` on something else entirely)
//! are untouched; a deliberate partial match can opt out with
//! `// srmlint::allow(protocol)` on the `match` line.

use crate::calls::Index;
use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

pub fn run(files: &[SourceFile], idx: &Index<'_>, findings: &mut Vec<Finding>) {
    // Protocol vocabularies: enum name → variant set.
    let mut protocols: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        for it in &f.items {
            if let ItemKind::Enum { variants } = &it.kind {
                if it.has_attr("srmlint::protocol") {
                    protocols.insert(it.name.clone(), variants.iter().cloned().collect());
                }
            }
        }
    }
    if protocols.is_empty() {
        return;
    }

    for id in idx.all_fns() {
        let (f, it) = (idx.file(id), idx.item(id));
        if it.is_test {
            continue;
        }
        let ItemKind::Fn { body: Some(body), .. } = it.kind else {
            continue;
        };
        let mut i = body.0;
        while i < body.1.min(f.toks.len()) {
            if matches!(&f.toks[i].kind, TokKind::Ident(k) if k == "match") {
                check_match(f, i, body.1, &protocols, findings);
            }
            i += 1;
        }
    }
}

/// Analyze the `match` whose keyword is at token `kw`; returns nothing
/// but records findings.  Nested matches are found by the caller's
/// linear scan — arm-body tokens are skipped here when collecting
/// patterns, so a nested match's variants never leak into the outer
/// match's coverage.
fn check_match(
    f: &SourceFile,
    kw: usize,
    end: usize,
    protocols: &BTreeMap<String, BTreeSet<String>>,
    findings: &mut Vec<Finding>,
) {
    let toks = &f.toks;
    let match_line = toks[kw].line;
    // Scrutinee runs to the first `{` at bracket depth 0 (struct
    // literals are not legal in scrutinee position without parens).
    let mut i = kw + 1;
    let mut depth = 0i32;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= end {
        return;
    }
    let body_open = i;

    // Walk the arms: pattern tokens up to `=>` at depth 0, then skip
    // the arm body.
    let mut covered: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut wildcard: Option<u32> = None;
    i = body_open + 1;
    'arms: while i < end {
        // End of match?
        if let TokKind::Punct('}') = &toks[i].kind {
            break;
        }
        // Pattern: scan to `=>` at local depth 0.
        let pat_start = i;
        let mut depth = 0i32;
        let mut guard_at: Option<usize> = None;
        while i < end {
            match &toks[i].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    if depth == 0 {
                        break 'arms; // closing `}` of the match
                    }
                    depth -= 1;
                }
                TokKind::Ident(g) if g == "if" && depth == 0 && guard_at.is_none() => {
                    guard_at = Some(i);
                }
                TokKind::Punct('=')
                    if depth == 0
                        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('>'))) =>
                {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if i >= end {
            break;
        }
        let pat_end = guard_at.unwrap_or(i);
        let pat = &toks[pat_start..pat_end];
        // Qualified variant references `Enum::Variant` in the pattern.
        for w in 0..pat.len().saturating_sub(3) {
            if let (TokKind::Ident(e), TokKind::Punct(':'), TokKind::Punct(':'), TokKind::Ident(v)) =
                (&pat[w].kind, &pat[w + 1].kind, &pat[w + 2].kind, &pat[w + 3].kind)
            {
                if let Some(vars) = protocols.get(e) {
                    if vars.contains(v) {
                        covered.entry(e.clone()).or_default().insert(v.clone());
                    }
                }
            }
        }
        // Wildcard / bare-binding arm: the pattern is a single `_` or a
        // single lowercase identifier (no `::`, no literal).
        let word_toks: Vec<&TokKind> = pat
            .iter()
            .map(|t| &t.kind)
            .filter(|k| !matches!(k, TokKind::Punct('|')))
            .collect();
        if let [TokKind::Ident(one)] = word_toks.as_slice() {
            let is_variant_like = one
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase());
            if !is_variant_like {
                wildcard = Some(toks[pat_start].line);
            }
        }

        // Skip `=>` and the arm body.
        i += 2;
        if i < end && matches!(toks[i].kind, TokKind::Punct('{')) {
            let mut d = 0i32;
            while i < end {
                match &toks[i].kind {
                    TokKind::Punct('{') => d += 1,
                    TokKind::Punct('}') => {
                        d -= 1;
                        if d == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            let mut d = 0i32;
            while i < end {
                match &toks[i].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => d -= 1,
                    TokKind::Punct('}') => {
                        if d == 0 {
                            break; // match closes without trailing comma
                        }
                        d -= 1;
                    }
                    TokKind::Punct(',') if d == 0 => break,
                    _ => {}
                }
                i += 1;
            }
        }
        if i < end && matches!(toks[i].kind, TokKind::Punct(',')) {
            i += 1;
        }
    }

    if covered.is_empty() {
        return; // not a protocol dispatch
    }
    if f.has_directive(match_line, "srmlint::allow(protocol)") {
        return;
    }
    for (enum_name, seen) in covered {
        let all = &protocols[&enum_name];
        let missing: Vec<&String> = all.iter().filter(|v| !seen.contains(*v)).collect();
        if let Some(wl) = wildcard {
            findings.push(Finding {
                path: f.path.clone(),
                line: wl,
                rule: "protocol",
                message: format!(
                    "dispatch on protocol enum `{enum_name}` has a catch-all arm; \
                     name every variant so a new message kind cannot be silently \
                     swallowed (missing: {})",
                    if missing.is_empty() {
                        "none — delete the arm".to_string()
                    } else {
                        missing
                            .iter()
                            .map(|s| s.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    }
                ),
            });
        } else if !missing.is_empty() {
            findings.push(Finding {
                path: f.path.clone(),
                line: match_line,
                rule: "protocol",
                message: format!(
                    "dispatch on protocol enum `{enum_name}` does not handle \
                     variant(s): {}",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}
