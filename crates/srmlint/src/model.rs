//! Item/scope model: a lightweight parse of one Rust source file.
//!
//! The parser is intentionally shallow — it recognizes the item
//! skeleton (modules, impls, fns with body extents, structs with typed
//! fields, enums with variants) and records everything else as opaque
//! token spans.  That is exactly enough for the passes: they reason
//! about *names* (lock fields, protocol variants, call targets) and
//! *extents* (fn bodies, test regions), never about full expressions
//! or types.
//!
//! `#[cfg(test)]` masking happens at item granularity: an item (or
//! `mod`) carrying `#[cfg(test)]`/`#[test]` marks its whole token
//! extent as test-only, and passes that exempt test code consult those
//! spans.  Because the underlying lexer makes string literals atomic,
//! a `}` inside a literal can never desynchronize the extent tracking
//! — the failure mode the old line-based linter had to dance around.

use crate::lexer::{lex, Directive, Tok, TokKind};
use std::path::{Path, PathBuf};

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute (or workspace-relative) path, used verbatim in findings.
    pub path: PathBuf,
    /// Cargo package name as written (dashes preserved), e.g. `srm-dist`.
    pub crate_name: String,
    /// Module path of the file root, e.g. `srm_dist::net`.
    pub module: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Comment directives (`lint:allow(...)`, `srmlint::...`).
    pub directives: Vec<Directive>,
    /// All items, flattened (nested items carry their full module path).
    pub items: Vec<Item>,
    /// Token-index ranges `[start, end)` that are test-only code.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Is token index `i` inside test-only code?
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// Is there a directive with exactly `text` on `line`?
    pub fn has_directive(&self, line: u32, text: &str) -> bool {
        self.directives.iter().any(|d| d.line == line && d.text == text)
    }

    /// First directive on `line` starting with `prefix`, if any.
    pub fn directive_arg(&self, line: u32, prefix: &str) -> Option<String> {
        self.directives.iter().find_map(|d| {
            if d.line != line {
                return None;
            }
            let rest = d.text.strip_prefix(prefix)?;
            let rest = rest.strip_prefix('(')?;
            Some(rest.strip_suffix(')').unwrap_or(rest).to_string())
        })
    }
}

/// A named item.
#[derive(Debug)]
pub struct Item {
    pub name: String,
    /// Full module path, e.g. `pdisk::pool` (inline `mod`s appended).
    pub module: String,
    /// Enclosing `impl`/`trait` type name (last path segment), if any.
    pub impl_of: Option<String>,
    /// 1-based line of the item keyword.
    pub line: u32,
    pub is_pub: bool,
    /// Item is inside `#[cfg(test)]` scope or carries `#[test]`.
    pub is_test: bool,
    /// Normalized attribute texts, e.g. `srmlint::leaf`, `non_exhaustive`,
    /// `cfg(test)`, `derive(Debug,Clone)`.
    pub attrs: Vec<String>,
    pub kind: ItemKind,
    /// Token range `[start, end)` of the whole item including attrs.
    pub extent: (usize, usize),
}

impl Item {
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a == name || a.starts_with(&format!("{name}(")))
    }
}

#[derive(Debug)]
pub enum ItemKind {
    Fn {
        /// Rendered return-type text (empty if none).
        ret: String,
        /// Token range `[open+1, close)` of the body, if the fn has one.
        body: Option<(usize, usize)>,
    },
    Struct {
        fields: Vec<Field>,
    },
    Enum {
        variants: Vec<String>,
    },
    /// `mod`, `use`, `const`, `static`, `type`, macros — name may be empty.
    Other,
}

#[derive(Debug)]
pub struct Field {
    /// Field name; tuple fields are `"0"`, `"1"`, ….
    pub name: String,
    /// Rendered type text, e.g. `Arc<Mutex<PoolInner<R>>>`.
    pub ty: String,
    /// 1-based line of the field.
    pub line: u32,
}

/// Render a token slice back to compact text (`Arc<Mutex<Foo>>`,
/// `&'static Mutex<BTreeSet<PathBuf>>`): a space is inserted only where
/// two word-like tokens would otherwise fuse.
pub fn render(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let piece = match &t.kind {
            TokKind::Ident(s) => s.clone(),
            TokKind::Num(s) => s.clone(),
            TokKind::Lifetime(s) => format!("'{s}"),
            TokKind::Literal(s) => format!("\"{s}\""),
            TokKind::Punct(c) => c.to_string(),
        };
        let fuse = out
            .chars()
            .next_back()
            .is_some_and(|p| p.is_alphanumeric() || p == '_')
            && piece
                .chars()
                .next()
                .is_some_and(|n| n.is_alphanumeric() || n == '_');
        if fuse {
            out.push(' ');
        }
        out.push_str(&piece);
    }
    out
}

/// Last path-segment type name of a rendered or token-level type, e.g.
/// `pdisk::pool::BufferPool<R>` → `BufferPool`; `&'a mut Foo` → `Foo`.
/// Only identifiers at angle-bracket depth 0 count.
pub fn short_type_name(toks: &[Tok]) -> Option<String> {
    let mut depth = 0i32;
    let mut last = None;
    let mut prev_punct = ' ';
    for t in toks {
        match &t.kind {
            TokKind::Punct('<') => depth += 1,
            // `->` does not close a generic.
            TokKind::Punct('>') if prev_punct != '-' => depth -= 1,
            TokKind::Ident(s)
                if depth == 0 && !matches!(s.as_str(), "dyn" | "mut" | "impl" | "const") =>
            {
                last = Some(s.clone());
            }
            _ => {}
        }
        prev_punct = match t.kind {
            TokKind::Punct(c) => c,
            _ => ' ',
        };
    }
    last
}

// ─── parser ──────────────────────────────────────────────────────────────

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokKind> {
        self.t.get(self.i).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&TokKind> {
        self.t.get(self.i + off).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.t
            .get(self.i)
            .or_else(|| self.t.last())
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokKind::Punct(p)) if *p == c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokKind::Ident(i)) if i == s)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat_ident(&mut self) -> Option<String> {
        if let Some(TokKind::Ident(s)) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Skip a balanced `open`…`close` group whose opener is at the
    /// cursor; returns the index one past the closer.  Literal tokens
    /// are atomic, so this cannot be fooled by delimiter characters in
    /// strings.
    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.is_punct(open) {
            return;
        }
        let mut depth = 0i32;
        while self.i < self.t.len() {
            match self.peek() {
                Some(TokKind::Punct(c)) if *c == open => depth += 1,
                Some(TokKind::Punct(c)) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a generic parameter list `<...>` if present.  `>` preceded
    /// by `-` (an `->` inside an `Fn()` bound) does not close the list.
    fn skip_generics(&mut self) {
        if !self.is_punct('<') {
            return;
        }
        let mut depth = 0i32;
        let mut prev = ' ';
        while self.i < self.t.len() {
            match self.peek() {
                Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct('>')) if prev != '-' => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            prev = match self.peek() {
                Some(TokKind::Punct(c)) => *c,
                _ => ' ',
            };
            self.bump();
        }
    }

    /// Collect one `#[...]` or `#![...]` attribute at the cursor into
    /// normalized text (tokens re-rendered, outer brackets stripped).
    /// Returns None if the cursor is not on an attribute.
    fn eat_attr(&mut self) -> Option<String> {
        if !self.is_punct('#') {
            return None;
        }
        let mut j = self.i + 1;
        if matches!(self.t.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
            j += 1;
        }
        if !matches!(self.t.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
            return None;
        }
        self.i = j;
        let start = self.i + 1;
        self.skip_balanced('[', ']');
        let end = self.i.saturating_sub(1);
        Some(render_compact(&self.t[start..end]))
    }
}

/// Like [`render`] but with no spaces at all — attribute texts compare
/// against exact strings like `cfg(test)` and `srmlint::leaf`.
fn render_compact(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        match &t.kind {
            TokKind::Ident(s) => {
                if out
                    .chars()
                    .next_back()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_')
                {
                    out.push(' ');
                }
                out.push_str(s);
            }
            TokKind::Num(s) => out.push_str(s),
            TokKind::Lifetime(s) => {
                out.push('\'');
                out.push_str(s);
            }
            TokKind::Literal(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            TokKind::Punct(c) => out.push(*c),
        }
    }
    out
}

struct Ctx {
    module: String,
    impl_of: Option<String>,
    in_test: bool,
}

/// Parse the token stream of one file into items.
pub fn parse_items(
    toks: &[Tok],
    module: &str,
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    let mut p = Parser { t: toks, i: 0 };
    let ctx = Ctx {
        module: module.to_string(),
        impl_of: None,
        in_test: false,
    };
    parse_block(&mut p, toks.len(), &ctx, items, test_spans);
}

fn parse_block(
    p: &mut Parser<'_>,
    end: usize,
    ctx: &Ctx,
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    while p.i < end {
        let start = p.i;
        // Attributes (inner `#![...]` ones are consumed but not attached).
        let mut attrs = Vec::new();
        while p.i < end {
            if let Some(a) = p.eat_attr() {
                attrs.push(a);
            } else {
                break;
            }
        }
        let is_test_attr = attrs
            .iter()
            .any(|a| a == "test" || a.starts_with("cfg(test") || a.starts_with("cfg(all(test"));
        let is_test = ctx.in_test || is_test_attr;

        // Visibility.
        let mut is_pub = false;
        if p.is_ident("pub") {
            is_pub = true;
            p.bump();
            if p.is_punct('(') {
                p.skip_balanced('(', ')');
            }
        }
        // Leading fn modifiers.
        while p.is_ident("const") && matches!(p.peek_at(1), Some(TokKind::Ident(n)) if n == "fn" || n == "unsafe" || n == "async" || n == "extern")
            || p.is_ident("unsafe") && matches!(p.peek_at(1), Some(TokKind::Ident(n)) if n == "fn" || n == "extern")
            || p.is_ident("async")
        {
            p.bump();
        }
        if p.is_ident("extern") {
            // `extern "C" fn` prefix or an `extern` block/`extern crate`.
            if matches!(p.peek_at(1), Some(TokKind::Literal(_)))
                && matches!(p.peek_at(2), Some(TokKind::Ident(n)) if n == "fn")
            {
                p.bump();
                p.bump();
            }
        }

        let line = p.line();
        match p.peek().cloned() {
            Some(TokKind::Ident(kw)) => match kw.as_str() {
                "mod" => {
                    p.bump();
                    let name = p.eat_ident().unwrap_or_default();
                    if p.is_punct('{') {
                        let body_start = p.i;
                        p.skip_balanced('{', '}');
                        let body_end = p.i;
                        let sub = Ctx {
                            module: format!("{}::{}", ctx.module, name),
                            impl_of: None,
                            in_test: is_test,
                        };
                        let mut inner = Parser {
                            t: p.t,
                            i: body_start + 1,
                        };
                        parse_block(&mut inner, body_end.saturating_sub(1), &sub, items, test_spans);
                    } else if p.is_punct(';') {
                        p.bump();
                    }
                    push_item(
                        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
                        ItemKind::Other, (start, p.i),
                    );
                }
                "fn" => {
                    p.bump();
                    parse_fn(p, ctx, start, line, is_pub, is_test, attrs, items, test_spans);
                }
                "struct" | "union" => {
                    p.bump();
                    parse_struct(p, ctx, start, line, is_pub, is_test, attrs, items, test_spans);
                }
                "enum" => {
                    p.bump();
                    parse_enum(p, ctx, start, line, is_pub, is_test, attrs, items, test_spans);
                }
                "impl" => {
                    p.bump();
                    p.skip_generics();
                    // First type; an `impl Trait for Type` uses Type.
                    let ty_start = p.i;
                    let mut for_at = None;
                    while p.i < end && !p.is_punct('{') {
                        if p.is_ident("for") {
                            for_at = Some(p.i);
                        }
                        if p.is_ident("where") {
                            break;
                        }
                        p.bump();
                    }
                    let ty_end = p.i;
                    while p.i < end && !p.is_punct('{') {
                        p.bump();
                    }
                    let ty_range = match for_at {
                        Some(f) => &p.t[f + 1..ty_end],
                        None => &p.t[ty_start..ty_end],
                    };
                    let ty = short_type_name(ty_range).unwrap_or_default();
                    let body_start = p.i;
                    p.skip_balanced('{', '}');
                    let sub = Ctx {
                        module: ctx.module.clone(),
                        impl_of: Some(ty),
                        in_test: is_test,
                    };
                    let mut inner = Parser {
                        t: p.t,
                        i: body_start + 1,
                    };
                    parse_block(&mut inner, p.i.saturating_sub(1), &sub, items, test_spans);
                    if is_test {
                        test_spans.push((start, p.i));
                    }
                }
                "trait" => {
                    p.bump();
                    let name = p.eat_ident().unwrap_or_default();
                    while p.i < end && !p.is_punct('{') {
                        p.bump();
                    }
                    let body_start = p.i;
                    p.skip_balanced('{', '}');
                    let sub = Ctx {
                        module: ctx.module.clone(),
                        impl_of: Some(name.clone()),
                        in_test: is_test,
                    };
                    let mut inner = Parser {
                        t: p.t,
                        i: body_start + 1,
                    };
                    parse_block(&mut inner, p.i.saturating_sub(1), &sub, items, test_spans);
                    push_item(
                        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
                        ItemKind::Other, (start, p.i),
                    );
                }
                "use" | "type" => {
                    p.bump();
                    skip_to_semi(p, end);
                    push_item(
                        items, test_spans, String::new(), ctx, line, is_pub, is_test, attrs,
                        ItemKind::Other, (start, p.i),
                    );
                }
                "static" | "const" => {
                    p.bump();
                    let name = p.eat_ident().unwrap_or_default();
                    skip_to_semi(p, end);
                    push_item(
                        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
                        ItemKind::Other, (start, p.i),
                    );
                }
                "macro_rules" => {
                    p.bump(); // macro_rules
                    if p.is_punct('!') {
                        p.bump();
                    }
                    let name = p.eat_ident().unwrap_or_default();
                    p.skip_balanced('{', '}');
                    push_item(
                        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
                        ItemKind::Other, (start, p.i),
                    );
                }
                "extern" => {
                    // `extern crate x;` or `extern { ... }`.
                    p.bump();
                    if p.is_punct('{') {
                        p.skip_balanced('{', '}');
                    } else {
                        skip_to_semi(p, end);
                    }
                }
                _ => {
                    // Unknown at item position (macro invocation etc.):
                    // advance past it conservatively.
                    p.bump();
                    if p.is_punct('!') {
                        p.bump();
                        let _ = p.eat_ident();
                        if p.is_punct('(') {
                            p.skip_balanced('(', ')');
                            if p.is_punct(';') {
                                p.bump();
                            }
                        } else if p.is_punct('{') {
                            p.skip_balanced('{', '}');
                        } else if p.is_punct('[') {
                            p.skip_balanced('[', ']');
                            if p.is_punct(';') {
                                p.bump();
                            }
                        }
                    }
                    if is_test {
                        test_spans.push((start, p.i));
                    }
                }
            },
            Some(_) => p.bump(),
            None => break,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_item(
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
    name: String,
    ctx: &Ctx,
    line: u32,
    is_pub: bool,
    is_test: bool,
    attrs: Vec<String>,
    kind: ItemKind,
    extent: (usize, usize),
) {
    if is_test {
        test_spans.push(extent);
    }
    items.push(Item {
        name,
        module: ctx.module.clone(),
        impl_of: ctx.impl_of.clone(),
        line,
        is_pub,
        is_test,
        attrs,
        kind,
        extent,
    });
}

/// Skip to just past the next `;` at brace/paren depth 0 (initializers
/// may contain blocks and calls).
fn skip_to_semi(p: &mut Parser<'_>, end: usize) {
    let mut depth = 0i32;
    while p.i < end {
        match p.peek() {
            Some(TokKind::Punct('{')) | Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                depth += 1
            }
            Some(TokKind::Punct('}')) | Some(TokKind::Punct(')')) | Some(TokKind::Punct(']')) => {
                depth -= 1
            }
            Some(TokKind::Punct(';')) if depth <= 0 => {
                p.bump();
                return;
            }
            _ => {}
        }
        p.bump();
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    p: &mut Parser<'_>,
    ctx: &Ctx,
    start: usize,
    line: u32,
    is_pub: bool,
    is_test: bool,
    attrs: Vec<String>,
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    let name = p.eat_ident().unwrap_or_default();
    p.skip_generics();
    p.skip_balanced('(', ')');
    // Return type: tokens between `->` and the body/`;`/`where`.
    let mut ret = String::new();
    if p.is_punct('-') && matches!(p.peek_at(1), Some(TokKind::Punct('>'))) {
        p.bump();
        p.bump();
        let ret_start = p.i;
        let mut depth = 0i32;
        let mut prev = ' ';
        while p.i < p.t.len() {
            match p.peek() {
                Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct('>')) if prev != '-' => depth -= 1,
                Some(TokKind::Punct('{')) | Some(TokKind::Punct(';')) if depth <= 0 => break,
                Some(TokKind::Ident(w)) if w == "where" && depth <= 0 => break,
                _ => {}
            }
            prev = match p.peek() {
                Some(TokKind::Punct(c)) => *c,
                _ => ' ',
            };
            p.bump();
        }
        ret = render(&p.t[ret_start..p.i]);
    }
    // `where` clause (no braces can appear before the body's `{`).
    while p.i < p.t.len() && !p.is_punct('{') && !p.is_punct(';') {
        p.bump();
    }
    let body = if p.is_punct('{') {
        let open = p.i;
        p.skip_balanced('{', '}');
        Some((open + 1, p.i.saturating_sub(1)))
    } else {
        if p.is_punct(';') {
            p.bump();
        }
        None
    };
    push_item(
        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
        ItemKind::Fn { ret, body }, (start, p.i),
    );
}

#[allow(clippy::too_many_arguments)]
fn parse_struct(
    p: &mut Parser<'_>,
    ctx: &Ctx,
    start: usize,
    line: u32,
    is_pub: bool,
    is_test: bool,
    attrs: Vec<String>,
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    let name = p.eat_ident().unwrap_or_default();
    p.skip_generics();
    while p.i < p.t.len() && !p.is_punct('{') && !p.is_punct('(') && !p.is_punct(';') {
        p.bump(); // `where` clause
    }
    let mut fields = Vec::new();
    if p.is_punct('{') {
        let open = p.i;
        p.skip_balanced('{', '}');
        let close = p.i.saturating_sub(1);
        parse_named_fields(p.t, open + 1, close, &mut fields);
    } else if p.is_punct('(') {
        let open = p.i;
        p.skip_balanced('(', ')');
        let close = p.i.saturating_sub(1);
        parse_tuple_fields(p.t, open + 1, close, &mut fields);
        if p.is_punct(';') {
            p.bump();
        }
    } else if p.is_punct(';') {
        p.bump();
    }
    push_item(
        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
        ItemKind::Struct { fields }, (start, p.i),
    );
}

fn parse_named_fields(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Field>) {
    let mut p = Parser { t: toks, i: start };
    while p.i < end {
        while p.eat_attr().is_some() {}
        if p.is_ident("pub") {
            p.bump();
            if p.is_punct('(') {
                p.skip_balanced('(', ')');
            }
        }
        let line = p.line();
        let Some(name) = p.eat_ident() else {
            p.bump();
            continue;
        };
        if !p.is_punct(':') {
            continue;
        }
        p.bump();
        let ty_start = p.i;
        skip_type_to(&mut p, end, ',');
        let ty = render(&toks[ty_start..p.i.min(end)]);
        out.push(Field { name, ty, line });
        if p.i < end && p.is_punct(',') {
            p.bump();
        }
    }
}

fn parse_tuple_fields(toks: &[Tok], start: usize, end: usize, out: &mut Vec<Field>) {
    let mut p = Parser { t: toks, i: start };
    let mut idx = 0usize;
    while p.i < end {
        while p.eat_attr().is_some() {}
        if p.is_ident("pub") {
            p.bump();
            if p.is_punct('(') {
                p.skip_balanced('(', ')');
            }
        }
        if p.i >= end {
            break;
        }
        let line = p.line();
        let ty_start = p.i;
        skip_type_to(&mut p, end, ',');
        let ty = render(&toks[ty_start..p.i.min(end)]);
        if !ty.is_empty() {
            out.push(Field {
                name: idx.to_string(),
                ty,
                line,
            });
            idx += 1;
        }
        if p.i < end && p.is_punct(',') {
            p.bump();
        }
    }
}

/// Advance past one type, stopping at `stop` (or `end`) at depth 0.
fn skip_type_to(p: &mut Parser<'_>, end: usize, stop: char) {
    let mut depth = 0i32;
    let mut prev = ' ';
    while p.i < end {
        match p.peek() {
            Some(TokKind::Punct('<')) | Some(TokKind::Punct('(')) | Some(TokKind::Punct('['))
            | Some(TokKind::Punct('{')) => depth += 1,
            Some(TokKind::Punct('>')) if prev != '-' => depth -= 1,
            Some(TokKind::Punct(')')) | Some(TokKind::Punct(']')) | Some(TokKind::Punct('}')) => {
                depth -= 1
            }
            Some(TokKind::Punct(c)) if *c == stop && depth <= 0 => return,
            _ => {}
        }
        prev = match p.peek() {
            Some(TokKind::Punct(c)) => *c,
            _ => ' ',
        };
        p.bump();
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_enum(
    p: &mut Parser<'_>,
    ctx: &Ctx,
    start: usize,
    line: u32,
    is_pub: bool,
    is_test: bool,
    attrs: Vec<String>,
    items: &mut Vec<Item>,
    test_spans: &mut Vec<(usize, usize)>,
) {
    let name = p.eat_ident().unwrap_or_default();
    p.skip_generics();
    while p.i < p.t.len() && !p.is_punct('{') {
        p.bump();
    }
    let open = p.i;
    p.skip_balanced('{', '}');
    let close = p.i.saturating_sub(1);
    let mut variants = Vec::new();
    let mut v = Parser {
        t: p.t,
        i: open + 1,
    };
    while v.i < close {
        while v.eat_attr().is_some() {}
        if v.i >= close {
            break;
        }
        if let Some(vn) = v.eat_ident() {
            variants.push(vn);
            // Payload / discriminant, then the separating comma.
            if v.is_punct('(') {
                v.skip_balanced('(', ')');
            } else if v.is_punct('{') {
                v.skip_balanced('{', '}');
            }
            if v.is_punct('=') {
                // Discriminant expression up to `,` at depth 0.
                skip_type_to(&mut v, close, ',');
            }
            if v.is_punct(',') {
                v.bump();
            }
        } else {
            v.bump();
        }
    }
    push_item(
        items, test_spans, name, ctx, line, is_pub, is_test, attrs,
        ItemKind::Enum { variants }, (start, p.i),
    );
}

// ─── file loading ────────────────────────────────────────────────────────

/// Module path for a file at `rel` (relative to the crate's `src/`),
/// e.g. `pool.rs` → `pdisk::pool`; `lib.rs` → `pdisk`.
pub fn module_of(crate_name: &str, rel: &Path) -> String {
    let krate = crate_name.replace('-', "_");
    let mut parts = vec![krate];
    let comps: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    for (i, comp) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if last {
            let stem = comp.strip_suffix(".rs").unwrap_or(comp);
            if !matches!(stem, "lib" | "main" | "mod") {
                parts.push(stem.to_string());
            }
        } else if comp != "bin" {
            parts.push(comp.clone());
        }
    }
    parts.join("::")
}

/// Parse one source file.  Lex errors become a pseudo-item-free file
/// with the error recorded by the caller (via the returned Result).
pub fn parse_file(
    path: &Path,
    crate_name: &str,
    module: &str,
    text: &str,
) -> Result<SourceFile, crate::lexer::LexError> {
    let lexed = lex(text)?;
    let mut items = Vec::new();
    let mut test_spans = Vec::new();
    parse_items(&lexed.toks, module, &mut items, &mut test_spans);
    Ok(SourceFile {
        path: path.to_path_buf(),
        crate_name: crate_name.to_string(),
        module: module.to_string(),
        toks: lexed.toks,
        directives: lexed.directives,
        items,
        test_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        parse_file(Path::new("x.rs"), "demo", "demo", src).unwrap()
    }

    #[test]
    fn struct_fields_with_types() {
        let f = parse("pub struct Pool { inner: Arc<Mutex<PoolInner<R>>>, n: usize }");
        let ItemKind::Struct { fields } = &f.items[0].kind else {
            panic!("not a struct: {:?}", f.items)
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "inner");
        assert!(fields[0].ty.contains("Mutex<"), "{}", fields[0].ty);
        assert_eq!(fields[1].ty, "usize");
    }

    #[test]
    fn tuple_struct_fields_are_numbered() {
        let f = parse("pub struct Clock(Arc<Mutex<ClockState>>);");
        let ItemKind::Struct { fields } = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(fields[0].name, "0");
        assert!(fields[0].ty.contains("Mutex<"));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let f = parse(
            "pub enum Msg { Stage { seq: u64, last: bool }, Ack(u64), Done, Code = 3 }",
        );
        let ItemKind::Enum { variants } = &f.items[0].kind else {
            panic!()
        };
        assert_eq!(variants, &["Stage", "Ack", "Done", "Code"]);
    }

    #[test]
    fn impl_methods_get_type_context() {
        let f = parse("impl<R: Record> BufferPool<R> { fn lock(&self) -> MutexGuard<'_, PoolInner<R>> { self.inner.lock() } }");
        let m = f.items.iter().find(|i| i.name == "lock").unwrap();
        assert_eq!(m.impl_of.as_deref(), Some("BufferPool"));
        let ItemKind::Fn { ret, body } = &m.kind else {
            panic!()
        };
        assert!(ret.contains("MutexGuard"), "{ret}");
        assert!(body.is_some());
    }

    #[test]
    fn trait_impl_uses_the_self_type() {
        let f = parse("impl fmt::Display for Finding { fn fmt(&self) {} }");
        let m = f.items.iter().find(|i| i.name == "fmt").unwrap();
        assert_eq!(m.impl_of.as_deref(), Some("Finding"));
    }

    #[test]
    fn cfg_test_mod_masks_its_extent() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  const S: &str = \"}\";\n  fn t() { x.unwrap(); }\n}\nfn live2() {}";
        let f = parse(src);
        let live2 = f.items.iter().find(|i| i.name == "live2").unwrap();
        assert!(!live2.is_test, "brace in test-mod string broke masking");
        let t = f.items.iter().find(|i| i.name == "t").unwrap();
        assert!(t.is_test);
        assert!(f.is_test_tok(t.extent.0));
        assert!(!f.is_test_tok(live2.extent.0));
    }

    #[test]
    fn attrs_are_normalized() {
        let f = parse("#[srmlint::leaf]\n#[non_exhaustive]\npub enum FooError { A }");
        assert!(f.items[0].has_attr("srmlint::leaf"));
        assert!(f.items[0].has_attr("non_exhaustive"));
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_of("pdisk", Path::new("lib.rs")), "pdisk");
        assert_eq!(module_of("srm-dist", Path::new("net.rs")), "srm_dist::net");
        assert_eq!(module_of("pdisk", Path::new("sub/mod.rs")), "pdisk::sub");
        assert_eq!(module_of("pdisk", Path::new("sub/x.rs")), "pdisk::sub::x");
    }

    #[test]
    fn nested_mod_extends_module_path() {
        let f = parse("mod inner { pub fn g() {} }");
        let g = f.items.iter().find(|i| i.name == "g").unwrap();
        assert_eq!(g.module, "demo::inner");
    }

    #[test]
    fn free_fn_return_type_with_static_mutex() {
        let f = parse("fn open_dirs() -> &'static Mutex<BTreeSet<PathBuf>> { todo!() }");
        let ItemKind::Fn { ret, .. } = &f.items[0].kind else {
            panic!()
        };
        assert!(ret.contains("Mutex<"), "{ret}");
    }
}

