//! Call-site extraction and name resolution over the item model.
//!
//! Resolution is deliberately *syntactic*: a call is bound to a
//! workspace function when the receiver shape makes the target
//! unambiguous (`self.m()`, `Type::f()`, `self.field.m()` via the
//! field's declared type, `helper().m()` via the helper's return
//! type).  A method call on an arbitrary expression resolves only if
//! its name is unique among all workspace functions — anything looser
//! would invent call edges through `std` methods that happen to share
//! a name.  The lock pass layers a may-analysis on top (see
//! `locks.rs`): for ambiguous receivers it unions every candidate that
//! could acquire a lock, which over-approximates holds but never
//! misses one.

use crate::model::{Item, ItemKind, SourceFile};
use std::collections::BTreeMap;

/// Identifies a fn item: index of (file, item) in the workspace.
pub type FnId = (usize, usize);

/// The receiver shape of a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `self.name(...)`.
    SelfMethod(String),
    /// `self.field.name(...)` (or `self.0.name(...)`).
    FieldMethod { field: String, name: String },
    /// `helper(...).name(...)` — method on the result of a free call.
    CallResultMethod { helper: String, name: String },
    /// `Qual::name(...)` — `Qual` is the last path segment before the fn.
    Path { qual: String, name: String },
    /// `name(...)` with no qualifier.
    Free(String),
    /// `expr.name(...)` with an unrecognized receiver.
    Method(String),
}

impl Callee {
    pub fn name(&self) -> &str {
        match self {
            Callee::SelfMethod(n)
            | Callee::Free(n)
            | Callee::Method(n)
            | Callee::FieldMethod { name: n, .. }
            | Callee::CallResultMethod { name: n, .. }
            | Callee::Path { name: n, .. } => n,
        }
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the called name.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    pub callee: Callee,
}

const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "fn", "move", "let", "else",
    "break", "continue", "where", "unsafe", "async", "dyn", "impl", "ref", "mut", "box", "await",
];

/// Extract every call site in `body` (a token range of `file`).
/// Macro invocations (`name!(...)`) are not calls and are skipped by
/// construction (the `!` sits between the name and the parenthesis).
pub fn call_sites(file: &SourceFile, body: (usize, usize)) -> Vec<CallSite> {
    use crate::lexer::TokKind::*;
    let toks = &file.toks;
    let (start, end) = body;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let Ident(name) = &toks[i].kind else {
            continue;
        };
        if NOT_CALLS.contains(&name.as_str()) {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.kind), Some(Punct('('))) {
            continue;
        }
        let callee = if i >= 1 && matches!(toks[i - 1].kind, Punct('.')) {
            // Method call: classify the receiver.
            match (i >= 2).then(|| &toks[i - 2].kind) {
                Some(Ident(r)) if r == "self" => Callee::SelfMethod(name.clone()),
                Some(Ident(f)) | Some(Num(f))
                    if i >= 4
                        && matches!(toks[i - 3].kind, Punct('.'))
                        && matches!(&toks[i - 4].kind, Ident(s) if s == "self") =>
                {
                    Callee::FieldMethod {
                        field: f.clone(),
                        name: name.clone(),
                    }
                }
                Some(Punct(')')) => {
                    // `helper().name(` — walk back over the balanced
                    // parens to the helper's name.
                    let mut depth = 0i32;
                    let mut j = i - 2;
                    let helper = loop {
                        match &toks[j].kind {
                            Punct(')') => depth += 1,
                            Punct('(') => {
                                depth -= 1;
                                if depth == 0 {
                                    break match (j >= 1).then(|| &toks[j - 1].kind) {
                                        Some(Ident(h)) => Some(h.clone()),
                                        _ => None,
                                    };
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            break None;
                        }
                        j -= 1;
                    };
                    match helper {
                        Some(h) => Callee::CallResultMethod {
                            helper: h,
                            name: name.clone(),
                        },
                        None => Callee::Method(name.clone()),
                    }
                }
                _ => Callee::Method(name.clone()),
            }
        } else if i >= 2
            && matches!(toks[i - 1].kind, Punct(':'))
            && matches!(toks[i - 2].kind, Punct(':'))
        {
            match (i >= 3).then(|| &toks[i - 3].kind) {
                Some(Ident(q)) => Callee::Path {
                    qual: q.clone(),
                    name: name.clone(),
                },
                _ => Callee::Free(name.clone()),
            }
        } else {
            Callee::Free(name.clone())
        };
        out.push(CallSite {
            tok: i,
            line: toks[i].line,
            callee,
        });
    }
    out
}

/// Cross-file index of fn items, struct fields, and enums.
pub struct Index<'a> {
    pub files: &'a [SourceFile],
    /// (impl-type or "", fn name) → fn ids.  Free fns use "".
    fns: BTreeMap<(String, String), Vec<FnId>>,
    /// fn name → all fn ids with that name (methods and free).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// struct name → (file idx, item idx).
    structs: BTreeMap<String, Vec<(usize, usize)>>,
}

impl<'a> Index<'a> {
    pub fn build(files: &'a [SourceFile]) -> Self {
        let mut fns: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut structs: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ii, it) in f.items.iter().enumerate() {
                match &it.kind {
                    ItemKind::Fn { .. } => {
                        let key = (
                            it.impl_of.clone().unwrap_or_default(),
                            it.name.clone(),
                        );
                        fns.entry(key).or_default().push((fi, ii));
                        by_name.entry(it.name.clone()).or_default().push((fi, ii));
                    }
                    ItemKind::Struct { .. } => {
                        structs.entry(it.name.clone()).or_default().push((fi, ii));
                    }
                    _ => {}
                }
            }
        }
        Index {
            files,
            fns,
            by_name,
            structs,
        }
    }

    pub fn item(&self, id: FnId) -> &Item {
        &self.files[id.0].items[id.1]
    }

    pub fn file(&self, id: FnId) -> &SourceFile {
        &self.files[id.0]
    }

    /// All fn items, with their ids.
    pub fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.by_name.values().flatten().copied()
    }

    /// Fns named `name` (any impl context).
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fns named `name` in impl context `ty` ("" = free).
    pub fn fns_in(&self, ty: &str, name: &str) -> &[FnId] {
        self.fns
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The declared type text of `Struct.field`, if the struct is known.
    pub fn field_ty(&self, strukt: &str, field: &str) -> Option<&str> {
        for &(fi, ii) in self.structs.get(strukt)? {
            if let ItemKind::Struct { fields } = &self.files[fi].items[ii].kind {
                if let Some(f) = fields.iter().find(|f| f.name == field) {
                    return Some(&f.ty);
                }
            }
        }
        None
    }

    /// The struct `Item` (with its file) declaring `name`, if unique.
    pub fn struct_item(&self, name: &str) -> Option<(&SourceFile, &Item)> {
        let ids = self.structs.get(name)?;
        let &(fi, ii) = ids.first()?;
        Some((&self.files[fi], &self.files[fi].items[ii]))
    }

    /// Strict resolution of one call to workspace fns.  `ctx_impl` is
    /// the impl-type context of the *calling* fn.  Returns an empty
    /// slice-vec when the target is outside the workspace or ambiguous.
    pub fn resolve(&self, callee: &Callee, ctx_impl: Option<&str>) -> Vec<FnId> {
        match callee {
            Callee::SelfMethod(n) => match ctx_impl {
                Some(ty) => self.fns_in(ty, n).to_vec(),
                None => Vec::new(),
            },
            Callee::Path { qual, name } => {
                let ty = if qual == "Self" {
                    ctx_impl.unwrap_or("")
                } else {
                    qual
                };
                let hits = self.fns_in(ty, name);
                if !hits.is_empty() {
                    return hits.to_vec();
                }
                // `module::free_fn(...)` — the qualifier is a module.
                self.unique_free(name)
            }
            Callee::Free(n) => self.unique_free(n),
            Callee::FieldMethod { field, name } => {
                let Some(ty) = ctx_impl.and_then(|t| self.field_ty(t, field)) else {
                    return Vec::new();
                };
                let lexed = match crate::lexer::lex(ty) {
                    Ok(l) => l,
                    Err(_) => return Vec::new(),
                };
                match crate::model::short_type_name(&lexed.toks) {
                    Some(short) => self.fns_in(&short, name).to_vec(),
                    None => Vec::new(),
                }
            }
            Callee::CallResultMethod { helper, name } => {
                // Resolve the helper, then the method on its return type.
                for id in self.unique_free(helper) {
                    if let ItemKind::Fn { ret, .. } = &self.item(id).kind {
                        if let Ok(l) = crate::lexer::lex(ret) {
                            if let Some(short) = crate::model::short_type_name(&l.toks) {
                                let hits = self.fns_in(&short, name);
                                if !hits.is_empty() {
                                    return hits.to_vec();
                                }
                            }
                        }
                    }
                }
                Vec::new()
            }
            Callee::Method(n) => {
                // Unambiguous-name fallback only.
                let hits = self.fns_named(n);
                if hits.len() == 1 {
                    hits.to_vec()
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn unique_free(&self, name: &str) -> Vec<FnId> {
        let hits = self.fns_in("", name);
        if hits.len() == 1 {
            hits.to_vec()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::parse_file;
    use std::path::Path;

    fn ws(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(m, s)| parse_file(Path::new(&format!("{m}.rs")), "demo", m, s).unwrap())
            .collect()
    }

    #[test]
    fn extracts_receiver_shapes() {
        let files = ws(&[(
            "a",
            "impl T { fn f(&self) { self.g(); self.inner.lock(); open_dirs().lock(); Qual::h(); free(); x.other(); } }",
        )]);
        let it = files[0]
            .items
            .iter()
            .find(|i| i.name == "f")
            .unwrap();
        let ItemKind::Fn { body: Some(b), .. } = it.kind else {
            panic!()
        };
        let calls = call_sites(&files[0], b);
        let shapes: Vec<_> = calls.iter().map(|c| c.callee.clone()).collect();
        assert!(shapes.contains(&Callee::SelfMethod("g".into())));
        assert!(shapes.contains(&Callee::FieldMethod {
            field: "inner".into(),
            name: "lock".into()
        }));
        assert!(shapes.contains(&Callee::CallResultMethod {
            helper: "open_dirs".into(),
            name: "lock".into()
        }));
        assert!(shapes.contains(&Callee::Path {
            qual: "Qual".into(),
            name: "h".into()
        }));
        assert!(shapes.contains(&Callee::Free("free".into())));
        assert!(shapes.contains(&Callee::Method("other".into())));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let files = ws(&[("a", "fn f() { if (x) {} println!(\"{x}\"); matches!(x, Y); }")]);
        let it = &files[0].items[0];
        let ItemKind::Fn { body: Some(b), .. } = it.kind else {
            panic!()
        };
        assert!(call_sites(&files[0], b).is_empty());
    }

    #[test]
    fn resolves_through_field_types() {
        let files = ws(&[(
            "a",
            "struct Owner { helper: Helper }\n\
             struct Helper;\n\
             impl Helper { fn work(&self) {} }\n\
             impl Owner { fn go(&self) { self.helper.work(); } }",
        )]);
        let idx = Index::build(&files);
        let hits = idx.resolve(
            &Callee::FieldMethod {
                field: "helper".into(),
                name: "work".into(),
            },
            Some("Owner"),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.item(hits[0]).name, "work");
    }

    #[test]
    fn ambiguous_bare_methods_do_not_resolve() {
        let files = ws(&[(
            "a",
            "impl A { fn run(&self) {} }\nimpl B { fn run(&self) {} }\nfn f() { x.run(); }",
        )]);
        let idx = Index::build(&files);
        assert!(idx.resolve(&Callee::Method("run".into()), None).is_empty());
    }
}
