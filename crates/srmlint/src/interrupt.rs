//! Interrupt-safety pass.
//!
//! PR 5's contract: an interrupted sort must be resumable, which means
//! any code path that *observes* `InterruptFlag` and bails with an
//! `Interrupted` error must have journaled a checkpoint first —
//! otherwise the "graceful" interruption loses work a crash would have
//! kept.  The vocabulary:
//!
//! - `#[srmlint::interrupt_observer]` — a fn that reads the flag and
//!   returns `Interrupted` (e.g. `check_interrupt`).
//! - `#[srmlint::checkpoint]` — a fn that durably journals progress
//!   (e.g. the pass-boundary `snapshot` helpers).
//!
//! Rules:
//!
//! 1. Every call to an observer must be lexically preceded, in the same
//!    fn body, by a call to a checkpoint fn (callers that are
//!    themselves observers or checkpoints are exempt — they are links
//!    in the chain, not ends of it).
//! 2. Any fn that both calls `.is_set()` and names `Interrupted` is
//!    observing the flag, and must therefore carry one of the two
//!    annotations (or `// srmlint::allow(interrupt)` on its `fn` line)
//!    so rule 1 can see through it.

use crate::calls::{call_sites, FnId, Index};
use crate::lexer::TokKind;
use crate::model::ItemKind;
use crate::Finding;
use std::collections::BTreeSet;

pub fn run(idx: &Index<'_>, findings: &mut Vec<Finding>) {
    let observers: BTreeSet<FnId> = idx
        .all_fns()
        .filter(|&id| idx.item(id).has_attr("srmlint::interrupt_observer"))
        .collect();
    let checkpoints: BTreeSet<FnId> = idx
        .all_fns()
        .filter(|&id| idx.item(id).has_attr("srmlint::checkpoint"))
        .collect();

    for id in idx.all_fns() {
        let (f, it) = (idx.file(id), idx.item(id));
        if it.is_test {
            continue;
        }
        let ItemKind::Fn { body: Some(b), .. } = it.kind else {
            continue;
        };
        let annotated = observers.contains(&id) || checkpoints.contains(&id);

        // Rule 2: undeclared observers.
        if !annotated && !f.has_directive(it.line, "srmlint::allow(interrupt)") {
            let mut calls_is_set = false;
            let mut names_interrupted = false;
            for i in b.0..b.1.min(f.toks.len()) {
                if let TokKind::Ident(n) = &f.toks[i].kind {
                    if n == "is_set"
                        && matches!(
                            f.toks.get(i + 1).map(|t| &t.kind),
                            Some(TokKind::Punct('('))
                        )
                    {
                        calls_is_set = true;
                    }
                    if n == "Interrupted" {
                        names_interrupted = true;
                    }
                }
            }
            if calls_is_set && names_interrupted {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: it.line,
                    rule: "interrupt",
                    message: format!(
                        "`{}` observes InterruptFlag and returns Interrupted but is \
                         not annotated #[srmlint::interrupt_observer] (or \
                         #[srmlint::checkpoint]); the interrupt-safety pass cannot \
                         track it",
                        it.name
                    ),
                });
            }
        }

        // Rule 1: observer calls need a preceding checkpoint call.
        if annotated {
            continue; // links in the chain are checked at their callers
        }
        let mut checkpointed = false;
        for site in call_sites(f, b) {
            let targets = idx.resolve(&site.callee, it.impl_of.as_deref());
            if targets.iter().any(|t| checkpoints.contains(t)) {
                checkpointed = true;
                continue;
            }
            if targets.iter().any(|t| observers.contains(t)) {
                if f.has_directive(site.line, "srmlint::allow(interrupt)") {
                    continue;
                }
                if !checkpointed {
                    findings.push(Finding {
                        path: f.path.clone(),
                        line: site.line,
                        rule: "interrupt",
                        message: format!(
                            "`{}` observes InterruptFlag here without a preceding \
                             checkpoint in `{}`; returning Interrupted now would \
                             lose resumable progress (call a #[srmlint::checkpoint] \
                             fn first)",
                            site.callee.name(),
                            it.name
                        ),
                    });
                }
            }
        }
    }
}
