//! A real (if lightweight) Rust lexer.
//!
//! This is the piece that retires the old `cargo xtask lint` line
//! scanner's known false positives: string literals — including raw
//! strings (`r#"…"#`), byte strings, and multi-line strings — become
//! single opaque tokens, so a `{` or `// …` inside one can never be
//! mistaken for structure.  Comments are dropped, except that lint
//! directives embedded in them (`// lint:allow(panic)`,
//! `// srmlint::lock(...)`) are preserved as [`Directive`]s so the
//! passes can honor in-place suppressions and field annotations.
//!
//! The lexer is deliberately permissive about things the passes never
//! look at (numeric suffixes, exotic escapes): it only has to token
//! ize the workspace's own sources, and an unterminated literal is
//! reported as a [`LexError`] rather than guessed around.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// What the token is.
    pub kind: TokKind,
}

/// Token kinds.  Multi-character operators are emitted as their
/// constituent [`TokKind::Punct`] characters; the parser re-assembles
/// the few it cares about (`::`, `->`, `=>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, de-prefixed).
    Ident(String),
    /// A lifetime (`'a`), name without the quote.
    Lifetime(String),
    /// Any string-like literal (string, raw string, byte string, char,
    /// byte); the *unescaped-as-written* body, quotes stripped.  The
    /// passes only ever compare whole literal bodies (witness labels),
    /// so escapes are left as-is.
    Literal(String),
    /// A numeric literal, as written.
    Num(String),
    /// One punctuation character.
    Punct(char),
}

/// A lint directive found in a comment, attached to the line it is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The directive text, e.g. `lint:allow(panic)` or
    /// `srmlint::lock(srm_dist::net::NetState)`.
    pub text: String,
}

/// A lexing failure (unterminated literal or comment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the offending construct starts.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// The output of [`lex`]: tokens plus the comment directives.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Directives harvested from comments, in source order.
    pub directives: Vec<Directive>,
}

impl Lexed {
    /// Directives whose text starts with `prefix`, on exactly `line`.
    pub fn directives_on(&self, line: u32) -> impl Iterator<Item = &Directive> {
        self.directives.iter().filter(move |d| d.line == line)
    }
}

/// Extract any lint directives from one comment body.
fn harvest_directives(body: &str, line: u32, out: &mut Vec<Directive>) {
    for marker in ["lint:allow(", "srmlint::"] {
        let mut rest = body;
        let mut _off = 0;
        while let Some(at) = rest.find(marker) {
            let tail = &rest[at..];
            // The directive runs to the end of its parenthesized
            // argument (if any) or to the next whitespace.
            let text = match tail.find('(') {
                Some(p) if !tail[..p].contains(char::is_whitespace) => {
                    match tail[p..].find(')') {
                        Some(close) => &tail[..p + close + 1],
                        None => tail.split_whitespace().next().unwrap_or(tail),
                    }
                }
                _ => tail.split_whitespace().next().unwrap_or(tail),
            };
            out.push(Directive {
                line,
                text: text.to_string(),
            });
            rest = &tail[text.len().max(1)..];
            _off += at + text.len().max(1);
        }
    }
}

/// Tokenize `src`.  Comments vanish (directives survive), string-like
/// literals become single opaque tokens, and everything else keeps its
/// starting line for findings.
pub fn lex(src: &str) -> Result<Lexed, LexError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    // Count newlines in b[from..to], advancing `line`.
    fn bump_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    while i < b.len() {
        let c = b[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (also doc `///` and `//!`).
        if c == '/' && b.get(i + 1) == Some(&b'/') {
            let end = b[i..]
                .iter()
                .position(|&c| c == b'\n')
                .map(|p| i + p)
                .unwrap_or(b.len());
            let body = &src[i + 2..end];
            harvest_directives(body, line, &mut out.directives);
            i = end;
            continue;
        }
        // Block comment, nestable.
        if c == '/' && b.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            if depth > 0 {
                return Err(LexError {
                    line: start_line,
                    msg: "unterminated block comment".into(),
                });
            }
            harvest_directives(&src[i + 2..j.saturating_sub(2)], start_line, &mut out.directives);
            i = j;
            continue;
        }
        // Raw strings: r"…", r#"…"#, br#"…"#, with any number of #s.
        if c == 'r' || c == 'b' {
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            if b.get(j) == Some(&b'r') {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while b.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&b'"') {
                    let start_line = line;
                    let body_start = k + 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut m = body_start;
                    loop {
                        if m + closer.len() > b.len() {
                            return Err(LexError {
                                line: start_line,
                                msg: "unterminated raw string".into(),
                            });
                        }
                        if &b[m..m + closer.len()] == closer.as_slice() {
                            break;
                        }
                        m += 1;
                    }
                    out.toks.push(Tok {
                        line: start_line,
                        kind: TokKind::Literal(src[body_start..m].to_string()),
                    });
                    bump_lines(b, body_start, m, &mut line);
                    i = m + closer.len();
                    continue;
                }
            }
            // else: plain ident starting with r/b — falls through below.
        }
        // String / byte-string literal.
        if c == '"' || (c == 'b' && b.get(i + 1) == Some(&b'"')) {
            let start_line = line;
            let open = if c == 'b' { i + 1 } else { i };
            let mut j = open + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    b'\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            if j >= b.len() {
                return Err(LexError {
                    line: start_line,
                    msg: "unterminated string literal".into(),
                });
            }
            out.toks.push(Tok {
                line: start_line,
                kind: TokKind::Literal(src[open + 1..j].to_string()),
            });
            i = j + 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // A lifetime is 'ident NOT followed by a closing quote;
            // everything else after ' is a char literal.
            let next = b.get(i + 1).copied();
            let is_lifetime = match next {
                Some(n) if (n as char).is_alphabetic() || n == b'_' => {
                    // 'a' is a char; 'ab / 'a> / 'a, are lifetimes.
                    let mut k = i + 1;
                    while k < b.len() && ((b[k] as char).is_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    b.get(k) != Some(&b'\'')
                }
                _ => false,
            };
            if is_lifetime {
                let mut k = i + 1;
                while k < b.len() && ((b[k] as char).is_alphanumeric() || b[k] == b'_') {
                    k += 1;
                }
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Lifetime(src[i + 1..k].to_string()),
                });
                i = k;
                continue;
            }
            // Char literal (possibly escaped, e.g. '\u{7d}').
            let start_line = line;
            let mut j = i + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'\'' => break,
                    _ => j += 1,
                }
            }
            if j >= b.len() {
                return Err(LexError {
                    line: start_line,
                    msg: "unterminated char literal".into(),
                });
            }
            out.toks.push(Tok {
                line: start_line,
                kind: TokKind::Literal(src[i + 1..j].to_string()),
            });
            i = j + 1;
            continue;
        }
        // Raw identifier `r#name` (raw *strings* were handled above).
        if c == 'r'
            && b.get(i + 1) == Some(&b'#')
            && b.get(i + 2).is_some_and(|&n| (n as char).is_alphabetic() || n == b'_')
        {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && ((b[j] as char).is_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident(src[start..j].to_string()),
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < b.len() && ((b[j] as char).is_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            let mut name = &src[start..j];
            if let Some(stripped) = name.strip_prefix("r#") {
                name = stripped;
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Ident(name.to_string()),
            });
            i = j;
            continue;
        }
        // Raw identifier `r#name` (r consumed above would have matched
        // ident path; handle the prefix here).
        if c == '#' && i > 0 && b[i - 1] == b'r' {
            // unreachable in practice: `r#ident` is consumed by the
            // ident arm (r, then #). Treat `#` as punct below.
        }
        // Numeric literal: digits plus permissive tail (0x.., 1_000u64,
        // 1.5e-3).  A trailing range `1..` must not eat the dots.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < b.len() {
                let ch = b[j] as char;
                let float_dot = ch == '.'
                    && b.get(j + 1).is_some_and(|&n| (n as char).is_ascii_digit())
                    && b.get(j.wrapping_sub(1)).is_some_and(|&p| (p as char).is_ascii_digit());
                let exp_sign = (ch == '+' || ch == '-')
                    && j > start
                    && (b[j - 1] == b'e' || b[j - 1] == b'E');
                if ch.is_ascii_alphanumeric() || ch == '_' || float_dot || exp_sign {
                    j += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                line,
                kind: TokKind::Num(src[start..j].to_string()),
            });
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        out.toks.push(Tok {
            line,
            kind: TokKind::Punct(c),
        });
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn braces_in_strings_are_opaque() {
        let l = lex("const S: &str = \"}\";\nfn f() {}").unwrap();
        let braces: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct('{') | TokKind::Punct('}')))
            .collect();
        assert_eq!(braces.len(), 2, "only the fn body braces count: {l:?}");
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let l = lex("let s = r#\"a \"quoted\" } brace\"#; let t = 1;").unwrap();
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Literal("a \"quoted\" } brace".into())));
        assert!(!l
            .toks
            .iter()
            .any(|t| matches!(t.kind, TokKind::Punct('}'))));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let l = lex("let s = \"line\none\n}\";\nfn g() {}").unwrap();
        let g = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("g".into()))
            .unwrap();
        assert_eq!(g.line, 4);
    }

    #[test]
    fn comments_vanish_but_directives_survive() {
        let l = lex("x(); // lint:allow(panic) justified\n/* srmlint::leaf */ y();").unwrap();
        assert_eq!(l.directives.len(), 2);
        assert_eq!(l.directives[0].text, "lint:allow(panic)");
        assert_eq!(l.directives[0].line, 1);
        assert_eq!(l.directives[1].text, "srmlint::leaf");
        assert!(!l.toks.iter().any(|t| t.kind == TokKind::Ident("justified".into())));
    }

    #[test]
    fn directive_with_argument_is_captured_whole() {
        let l = lex("state: M, // srmlint::lock(srm_dist::net::NetState)\n").unwrap();
        assert_eq!(l.directives[0].text, "srmlint::lock(srm_dist::net::NetState)");
    }

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = '}'; let u = '\\u{7d}'; }").unwrap();
        assert!(toks
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime("a".into())));
        assert!(toks.toks.iter().any(|t| t.kind == TokKind::Literal("}".into())));
        // The char-literal braces must not appear as puncts.
        let opens = toks
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct('{')))
            .count();
        assert_eq!(opens, 1);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}").unwrap();
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Ident("fn".into())));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let l = lex("for i in 0..10 {}").unwrap();
        let dots = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct('.')))
            .count();
        assert_eq!(dots, 2);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Num("0".into())));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Num("10".into())));
        // But real float literals stay whole.
        let f = lex("let x = 1.5e-3;").unwrap();
        assert!(f.toks.iter().any(|t| t.kind == TokKind::Num("1.5e-3".into())));
    }

    #[test]
    fn unterminated_literals_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("let s = r#\"oops\"").is_err());
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn raw_identifiers_are_deprefixed() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }
}
