//! Lock-order pass: build the inter-procedural may-hold graph and
//! reject cycles, leaf violations, and unwitnessed acquisition sites.
//!
//! ## Model
//!
//! A **lock node** is a `Mutex`/`RwLock` the workspace can acquire:
//! either a struct field whose declared type contains `Mutex<`/`RwLock<`
//! (node id `module::Struct.field`, overridable with a
//! `// srmlint::lock(<id>)` comment directive on the field — two fields
//! sharing one directive id are one node), or a free function returning
//! a reference to one (node id `module::fn_name`, e.g.
//! `pdisk::file::open_dirs`).
//!
//! An **acquisition site** is a `.lock()`/`.read()`/`.write()` call
//! whose receiver resolves to a node, or a call to a **guard helper** —
//! a fn whose return type contains `MutexGuard`/`RwLock*Guard`/
//! `Witnessed` and which acquires exactly one node directly (e.g.
//! `BufferPool::lock`).
//!
//! Guard lifetime is approximated lexically: a `let`-bound guard lives
//! to the end of its enclosing block, an un-bound (temporary) guard to
//! the end of its statement, and `drop(name)` releases a named guard
//! early.  A **may-hold edge** `A → B` is recorded when B is acquired
//! (directly, or anywhere inside a callee, via a fixpoint over lock
//! footprints) while A is held.  Cycles in the edge set and any edge
//! out of a `#[srmlint::leaf]` node are reported.
//!
//! ## Witness
//!
//! Every direct acquisition in the concurrent crates must wrap its
//! guard in `pdisk::lockwitness::guard("<node-id>", …)` with the label
//! string equal to the node id the analyzer computes (rule `witness`),
//! so the runtime witness and the static graph speak the same names.
//! [`verify_witness`] then cross-checks a recorded witness log: every
//! observed label must be a known node and every observed acquisition
//! order must be a static edge — each side must explain the other.

use crate::calls::{call_sites, CallSite, Callee, FnId, Index};
use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Crates (package names, dashes as written) whose lock discipline the
/// pass enforces on a workspace run; fixtures analyses pass `None` to
/// cover every crate found.
pub const LOCK_CRATES: &[&str] = &["pdisk", "srm-server", "srm-dist"];

/// The static lock-order graph, exposed for `--verify-witness`.
#[derive(Debug, Default, Clone)]
pub struct LockGraph {
    /// Node id → is it a leaf lock?
    pub nodes: BTreeMap<String, bool>,
    /// (held, acquired) → one representative site.
    pub edges: BTreeMap<(String, String), (PathBuf, u32)>,
}

#[derive(Debug)]
enum Event {
    Acquire {
        node: String,
        tok: usize,
        line: u32,
        held: Vec<String>,
        /// Direct field/static acquisition (needs witness wrapping), as
        /// opposed to a guard-helper call.
        direct: bool,
    },
    Call {
        site: CallSite,
        held: Vec<String>,
    },
}

/// Run the lock pass.  `crate_filter: None` analyzes all crates.
pub fn run(
    files: &[SourceFile],
    idx: &Index<'_>,
    crate_filter: Option<&[&str]>,
    findings: &mut Vec<Finding>,
) -> LockGraph {
    let in_scope = |f: &SourceFile| {
        crate_filter.is_none_or(|cs| cs.contains(&f.crate_name.as_str()))
    };

    // ── node discovery ──────────────────────────────────────────────
    // (struct name, field name) → node; accessor fn name → node.
    let mut field_nodes: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut accessor_nodes: BTreeMap<String, String> = BTreeMap::new();
    let mut graph = LockGraph::default();
    for f in files.iter().filter(|f| in_scope(f)) {
        for it in &f.items {
            match &it.kind {
                ItemKind::Struct { fields } => {
                    for fld in fields {
                        if !(fld.ty.contains("Mutex<") || fld.ty.contains("RwLock<")) {
                            continue;
                        }
                        let id = f
                            .directive_arg(fld.line, "srmlint::lock")
                            .unwrap_or_else(|| {
                                format!("{}::{}.{}", it.module, it.name, fld.name)
                            });
                        let leaf = f.has_directive(fld.line, "srmlint::leaf");
                        field_nodes
                            .insert((it.name.clone(), fld.name.clone()), id.clone());
                        *graph.nodes.entry(id).or_insert(false) |= leaf;
                    }
                }
                ItemKind::Fn { ret, .. }
                    if it.impl_of.is_none()
                        && (ret.contains("Mutex<") || ret.contains("RwLock<")) =>
                {
                    let id = format!("{}::{}", it.module, it.name);
                    let leaf = it.has_attr("srmlint::leaf");
                    accessor_nodes.insert(it.name.clone(), id.clone());
                    *graph.nodes.entry(id).or_insert(false) |= leaf;
                }
                _ => {}
            }
        }
    }

    // ── per-fn events ───────────────────────────────────────────────
    // Two scan phases: phase A sees only direct acquisitions, which is
    // enough to identify guard helpers (a fn returning a guard that
    // directly acquires exactly one node); phase B re-scans with the
    // helper map so a call like `let g = self.lock();` enters the
    // caller's held-set for the guard's let-bound lifetime.
    let fn_ids: Vec<FnId> = idx
        .all_fns()
        .filter(|&id| {
            let (f, it) = (idx.file(id), idx.item(id));
            in_scope(f) && !it.is_test && matches!(it.kind, ItemKind::Fn { body: Some(_), .. })
        })
        .collect();
    let scan_all = |helpers: &BTreeMap<FnId, String>| -> BTreeMap<FnId, Vec<Event>> {
        let mut out = BTreeMap::new();
        for &id in &fn_ids {
            let (f, it) = (idx.file(id), idx.item(id));
            let ItemKind::Fn { body: Some(b), .. } = it.kind else {
                continue;
            };
            out.insert(
                id,
                scan_body(
                    f, b, it.impl_of.as_deref(), &field_nodes, &accessor_nodes, idx, helpers,
                ),
            );
        }
        out
    };
    let events_a = scan_all(&BTreeMap::new());

    // Guard helpers: ret type mentions a guard, exactly one direct node.
    let mut helper_node: BTreeMap<FnId, String> = BTreeMap::new();
    for &id in &fn_ids {
        let it = idx.item(id);
        let ItemKind::Fn { ret, .. } = &it.kind else {
            continue;
        };
        if !(ret.contains("Guard") || ret.contains("Witnessed")) {
            continue;
        }
        let direct: BTreeSet<&String> = events_a[&id]
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        if direct.len() == 1 {
            let node = (*direct.iter().next().unwrap_or(&&String::new())).clone();
            let leaf = it.has_attr("srmlint::leaf");
            if leaf {
                if let Some(flag) = graph.nodes.get_mut(&node) {
                    *flag = true;
                }
            }
            helper_node.insert(id, node);
        }
    }
    let events = scan_all(&helper_node);

    // ── footprints to fixpoint ──────────────────────────────────────
    // footprint(fn) = nodes it may acquire, directly or transitively.
    let helper_node = &helper_node;
    let resolve_lock = |callee: &Callee, ctx: Option<&str>, footprints: &BTreeMap<FnId, BTreeSet<String>>| -> Vec<FnId> {
        let strict = idx.resolve(callee, ctx);
        if !strict.is_empty() {
            return strict;
        }
        // May-analysis fallback: an unresolvable method receiver binds
        // to every workspace method of that name that can acquire a
        // lock — over-approximate, never miss.
        if let Callee::Method(n) = callee {
            return idx
                .fns_named(n)
                .iter()
                .copied()
                .filter(|id| {
                    footprints.get(id).is_some_and(|s| !s.is_empty())
                        || helper_node.contains_key(id)
                })
                .collect();
        }
        Vec::new()
    };

    let mut footprints: BTreeMap<FnId, BTreeSet<String>> = BTreeMap::new();
    for &id in &fn_ids {
        let direct: BTreeSet<String> = events[&id]
            .iter()
            .filter_map(|e| match e {
                Event::Acquire { node, .. } => Some(node.clone()),
                _ => None,
            })
            .collect();
        footprints.insert(id, direct);
    }
    loop {
        let mut changed = false;
        for &id in &fn_ids {
            let ctx = idx.item(id).impl_of.clone();
            let mut add = BTreeSet::new();
            for ev in &events[&id] {
                if let Event::Call { site, .. } = ev {
                    for callee in resolve_lock(&site.callee, ctx.as_deref(), &footprints) {
                        if let Some(hn) = helper_node.get(&callee) {
                            add.insert(hn.clone());
                        }
                        if let Some(fp) = footprints.get(&callee) {
                            add.extend(fp.iter().cloned());
                        }
                    }
                }
            }
            if let Some(fp) = footprints.get_mut(&id) {
                let before = fp.len();
                fp.extend(add);
                changed |= fp.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // ── edges ───────────────────────────────────────────────────────
    for &id in &fn_ids {
        let f = idx.file(id);
        let ctx = idx.item(id).impl_of.clone();
        for ev in &events[&id] {
            match ev {
                Event::Acquire { node, line, held, .. } => {
                    for h in held {
                        graph
                            .edges
                            .entry((h.clone(), node.clone()))
                            .or_insert_with(|| (f.path.clone(), *line));
                    }
                }
                Event::Call { site, held } => {
                    if held.is_empty() {
                        continue;
                    }
                    for callee in resolve_lock(&site.callee, ctx.as_deref(), &footprints) {
                        let mut acq: BTreeSet<String> = footprints
                            .get(&callee)
                            .cloned()
                            .unwrap_or_default();
                        if let Some(hn) = helper_node.get(&callee) {
                            acq.insert(hn.clone());
                        }
                        for h in held {
                            for b in &acq {
                                if b != h {
                                    graph
                                        .edges
                                        .entry((h.clone(), b.clone()))
                                        .or_insert_with(|| (f.path.clone(), site.line));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ── leaf violations ─────────────────────────────────────────────
    for ((a, b), (path, line)) in &graph.edges {
        if graph.nodes.get(a).copied().unwrap_or(false) {
            findings.push(Finding {
                path: path.clone(),
                line: *line,
                rule: "lock-order",
                message: format!(
                    "lock `{b}` acquired while holding leaf lock `{a}` \
                     (#[srmlint::leaf] forbids nesting under it)"
                ),
            });
        }
    }

    // ── cycles ──────────────────────────────────────────────────────
    for cycle in find_cycles(&graph) {
        let desc: Vec<String> = cycle
            .iter()
            .map(|(a, b)| {
                let (p, l) = &graph.edges[&(a.clone(), b.clone())];
                format!("`{a}` → `{b}` at {}:{l}", p.display())
            })
            .collect();
        let (p0, l0) = &graph.edges[&cycle[0]];
        findings.push(Finding {
            path: p0.clone(),
            line: *l0,
            rule: "lock-order",
            message: format!("lock-order cycle: {}", desc.join("; ")),
        });
    }

    // ── witness wrapping ────────────────────────────────────────────
    // Only meaningful for the real workspace crates that link pdisk's
    // witness; fixture analyses (filter = None) skip it.
    if crate_filter.is_some() {
        for &id in &fn_ids {
            let f = idx.file(id);
            for ev in &events[&id] {
                let Event::Acquire { node, tok, line, direct: true, .. } = ev else {
                    continue;
                };
                if f.has_directive(*line, "srmlint::allow(witness)") {
                    continue;
                }
                if !stmt_has_literal(f, *tok, node) {
                    findings.push(Finding {
                        path: f.path.clone(),
                        line: *line,
                        rule: "witness",
                        message: format!(
                            "acquisition of `{node}` is not wrapped in \
                             lockwitness::guard(\"{node}\", …); the runtime witness \
                             cannot see it (or use // srmlint::allow(witness))"
                        ),
                    });
                }
            }
        }
    }

    graph
}

/// Does the statement containing token `tok` contain a string literal
/// exactly equal to `want`?  The statement span is bounded by the
/// nearest `;`/`{`/`}` on each side.
fn stmt_has_literal(f: &SourceFile, tok: usize, want: &str) -> bool {
    let is_boundary =
        |k: &TokKind| matches!(k, TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}'));
    let mut lo = tok;
    while lo > 0 && !is_boundary(&f.toks[lo - 1].kind) {
        lo -= 1;
    }
    let mut hi = tok;
    while hi < f.toks.len() && !is_boundary(&f.toks[hi].kind) {
        hi += 1;
    }
    f.toks[lo..hi]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Literal(s) if s == want))
}

/// Scan one fn body into ordered acquire/call events with held-sets.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    f: &SourceFile,
    body: (usize, usize),
    ctx_impl: Option<&str>,
    field_nodes: &BTreeMap<(String, String), String>,
    accessor_nodes: &BTreeMap<String, String>,
    idx: &Index<'_>,
    helpers: &BTreeMap<FnId, String>,
) -> Vec<Event> {
    struct Held {
        node: String,
        /// `Some(d)`: a let-bound guard alive until depth drops below d;
        /// `None`: a temporary alive until the end of the statement.
        block_depth: Option<i32>,
        binding: Option<String>,
    }

    let calls: BTreeMap<usize, CallSite> = call_sites(f, body)
        .into_iter()
        .map(|c| (c.tok, c))
        .collect();

    let (start, end) = body;
    let mut events = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let mut stmt_let: Option<String> = None; // binding name of current `let`
    let mut i = start;
    while i < end.min(f.toks.len()) {
        match &f.toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.block_depth.is_none_or(|d| d <= depth));
                // A block edge also ends any pending statement.
                held.retain(|h| h.block_depth.is_some());
                stmt_let = None;
            }
            TokKind::Punct(';') => {
                held.retain(|h| h.block_depth.is_some());
                stmt_let = None;
            }
            TokKind::Ident(kw) if kw == "let" => {
                stmt_let = match f.toks.get(i + 1).map(|t| &t.kind) {
                    Some(TokKind::Ident(n)) if n != "mut" => Some(n.clone()),
                    Some(TokKind::Ident(_)) => match f.toks.get(i + 2).map(|t| &t.kind) {
                        Some(TokKind::Ident(n)) => Some(n.clone()),
                        _ => Some(String::new()),
                    },
                    _ => Some(String::new()),
                };
            }
            TokKind::Ident(_) => {
                if let Some(site) = calls.get(&i) {
                    // Early release: drop(name).
                    if site.callee == Callee::Free("drop".into()) {
                        if let Some(TokKind::Ident(arg)) = f.toks.get(i + 2).map(|t| &t.kind) {
                            if matches!(f.toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Punct(')')))
                            {
                                if let Some(pos) = held
                                    .iter()
                                    .rposition(|h| h.binding.as_deref() == Some(arg))
                                {
                                    held.remove(pos);
                                }
                            }
                        }
                    }
                    let snapshot: Vec<String> = held.iter().map(|h| h.node.clone()).collect();
                    let direct =
                        acquisition_node(site, ctx_impl, field_nodes, accessor_nodes);
                    // A precisely-resolved call to a guard helper is an
                    // acquisition of the helper's node at this site.
                    let via_helper = if direct.is_none() && !helpers.is_empty() {
                        let targets = idx.resolve(&site.callee, ctx_impl);
                        match targets.as_slice() {
                            [one] => helpers.get(one).cloned(),
                            _ => None,
                        }
                    } else {
                        None
                    };
                    if let Some(node) = direct.clone().or(via_helper) {
                        events.push(Event::Acquire {
                            node: node.clone(),
                            tok: i,
                            line: site.line,
                            held: snapshot,
                            direct: direct.is_some(),
                        });
                        held.push(Held {
                            node,
                            block_depth: stmt_let.is_some().then_some(depth),
                            binding: stmt_let.clone().filter(|s| !s.is_empty()),
                        });
                    } else {
                        events.push(Event::Call {
                            site: site.clone(),
                            held: snapshot,
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    events
}

/// Direct acquisition: `.lock()`/`.read()`/`.write()` on a known lock
/// field or accessor result.
fn acquisition_node(
    site: &CallSite,
    ctx_impl: Option<&str>,
    field_nodes: &BTreeMap<(String, String), String>,
    accessor_nodes: &BTreeMap<String, String>,
) -> Option<String> {
    let name = site.callee.name();
    if !matches!(name, "lock" | "read" | "write") {
        return None;
    }
    match &site.callee {
        Callee::FieldMethod { field, .. } => {
            field_nodes.get(&(ctx_impl?.to_string(), field.clone())).cloned()
        }
        Callee::CallResultMethod { helper, .. } => accessor_nodes.get(helper).cloned(),
        _ => None,
    }
}

/// Every elementary cycle's edge list — found via DFS from each node;
/// deduplicated by edge set.  Graphs here are tiny (a handful of lock
/// nodes), so simplicity beats asymptotics.
fn find_cycles(graph: &LockGraph) -> Vec<Vec<(String, String)>> {
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (a, b) in graph.edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut seen_cycles: BTreeSet<Vec<(String, String)>> = BTreeSet::new();
    for start in adj.keys().copied() {
        // DFS bounded by node count; find a path start → … → start.
        let mut stack: Vec<(&String, Vec<(String, String)>)> = vec![(start, Vec::new())];
        while let Some((at, path)) = stack.pop() {
            if path.len() > graph.nodes.len() + 1 {
                continue;
            }
            for &next in adj.get(at).map(Vec::as_slice).unwrap_or(&[]) {
                let mut p = path.clone();
                p.push((at.clone(), next.clone()));
                if next == start {
                    // Normalize rotation so each cycle is reported once.
                    let mut norm = p.clone();
                    if let Some(min_at) = norm
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.0.clone())
                        .map(|(i, _)| i)
                    {
                        norm.rotate_left(min_at);
                    }
                    if seen_cycles.insert(norm.clone()) {
                        // keep
                    }
                } else if !path.iter().any(|(a, _)| a == next) {
                    stack.push((next, p));
                }
            }
        }
    }
    seen_cycles.into_iter().collect()
}

// ─── witness verification ────────────────────────────────────────────────

/// Outcome of cross-checking a runtime witness log against the graph.
#[derive(Debug, Default)]
pub struct WitnessReport {
    pub labels_observed: usize,
    pub orders_observed: usize,
    pub nodes_static: usize,
    pub edges_static: usize,
    pub unobserved_nodes: Vec<String>,
    pub unobserved_edges: Vec<(String, String)>,
}

/// Check `log` (lines `lock\t<label>` / `order\t<held>\t<acquired>`)
/// against the static graph.  Violations — an unknown label, or an
/// observed order with no static edge — become findings; static
/// nodes/edges no test exercised are reported informationally in the
/// returned [`WitnessReport`].
pub fn verify_witness(
    graph: &LockGraph,
    log_path: &std::path::Path,
    log: &str,
    findings: &mut Vec<Finding>,
) -> WitnessReport {
    let mut labels: BTreeSet<&str> = BTreeSet::new();
    let mut orders: BTreeSet<(&str, &str)> = BTreeSet::new();
    for (lineno, line) in log.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("lock"), Some(label), None) => {
                labels.insert(label);
            }
            (Some("order"), Some(a), Some(b)) => {
                labels.insert(a);
                labels.insert(b);
                orders.insert((a, b));
            }
            _ => {
                findings.push(Finding {
                    path: log_path.to_path_buf(),
                    line: (lineno + 1) as u32,
                    rule: "witness",
                    message: format!("malformed witness record: {line:?}"),
                });
            }
        }
    }
    for label in &labels {
        if !graph.nodes.contains_key(*label) {
            findings.push(Finding {
                path: log_path.to_path_buf(),
                line: 0,
                rule: "witness",
                message: format!(
                    "runtime witnessed lock `{label}` that the static analysis \
                     does not know; the analyzer failed to explain the run"
                ),
            });
        }
    }
    for (a, b) in &orders {
        if !graph.edges.contains_key(&(a.to_string(), b.to_string())) {
            findings.push(Finding {
                path: log_path.to_path_buf(),
                line: 0,
                rule: "witness",
                message: format!(
                    "runtime witnessed order `{a}` then `{b}` has no static \
                     may-hold edge; the analyzer failed to explain the run"
                ),
            });
        }
    }
    WitnessReport {
        labels_observed: labels.len(),
        orders_observed: orders.len(),
        nodes_static: graph.nodes.len(),
        edges_static: graph.edges.len(),
        unobserved_nodes: graph
            .nodes
            .keys()
            .filter(|n| !labels.contains(n.as_str()))
            .cloned()
            .collect(),
        unobserved_edges: graph
            .edges
            .keys()
            .filter(|(a, b)| !orders.contains(&(a.as_str(), b.as_str())))
            .cloned()
            .collect(),
    }
}
