//! `srmlint` — the workspace's concurrency & protocol static analyzer.
//!
//! Parses every crate's sources into a lightweight syntax/scope model
//! ([`model`], on the lexer in [`lexer`]) and runs cross-crate passes:
//!
//! - [`locks`] — extracts every `Mutex`/`RwLock` acquisition site,
//!   builds the inter-procedural may-hold graph across `pdisk`,
//!   `srm-server`, and `srm-dist`, and rejects cycles, acquisitions
//!   under a `#[srmlint::leaf]` lock, and acquisition sites the
//!   runtime lock witness cannot see.  [`locks::verify_witness`]
//!   cross-checks a recorded witness log against the static graph.
//! - [`protocol`] — every dispatch `match` over a
//!   `#[srmlint::protocol]` enum (`Msg`, `Request`) names every
//!   variant; no `_ =>` swallowing a message kind.
//! - [`blocking`] — no `std::io`/channel-blocking calls reachable from
//!   `#[srmlint::worker_entry]` threads outside blessed seams.
//! - [`interrupt`] — every path observing `InterruptFlag` checkpoints
//!   before returning `Interrupted`.
//! - [`legacy`] — the original `xtask lint` rules (`no-panic`, `cast`,
//!   `non-exhaustive`, `backend`), re-based onto the lexer so string
//!   literals can no longer desynchronize them; plus the `unsafe`
//!   crate-root rule here.
//!
//! `cargo xtask lint` remains the entry point (the `xtask` binary
//! calls [`analyze_workspace`]); `cargo run -p srmlint` exposes the
//! same analysis plus `--verify-witness` directly.

#![forbid(unsafe_code)]

pub mod blocking;
pub mod calls;
pub mod interrupt;
pub mod legacy;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod protocol;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, printed as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: PathBuf,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A finished analysis: findings plus the artifacts `--verify-witness`
/// needs.
pub struct Analysis {
    pub findings: Vec<Finding>,
    /// Number of `.rs` files analyzed.
    pub files: usize,
    /// The static lock-order graph.
    pub graph: locks::LockGraph,
    /// Every `#[srmlint::worker_entry]` function found, as
    /// `module::name` — the roots the blocking and interrupt passes
    /// patrol.  Tests pin this list so a new thread spawn site cannot
    /// silently escape coverage.
    pub worker_entries: Vec<String>,
}

/// Analyze the workspace rooted at `root` (its `crates/*/src` trees),
/// with the lock pass scoped to the concurrent crates
/// ([`locks::LOCK_CRATES`]).
pub fn analyze_workspace(root: &Path) -> Analysis {
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    analyze_crate_dirs(&crate_dirs, Some(locks::LOCK_CRATES))
}

/// Analyze an explicit list of crate directories (each containing a
/// `Cargo.toml` and `src/`).  `lock_crates: None` runs the lock pass
/// over every crate found — used for the violation fixtures.
pub fn analyze_crate_dirs(crate_dirs: &[PathBuf], lock_crates: Option<&[&str]>) -> Analysis {
    let mut findings = Vec::new();
    let mut files_parsed: Vec<model::SourceFile> = Vec::new();
    let mut files = 0usize;

    for crate_dir in crate_dirs {
        let crate_name = package_name(crate_dir);
        lint_crate_root(crate_dir, &mut findings);
        let src = crate_dir.join("src");
        let mut sources = Vec::new();
        collect_rs_files(&src, &mut sources);
        sources.sort();
        for path in sources {
            let Ok(text) = std::fs::read_to_string(&path) else {
                findings.push(Finding {
                    path: path.clone(),
                    line: 0,
                    rule: "io",
                    message: "source file is unreadable".into(),
                });
                continue;
            };
            files += 1;
            let rel = path.strip_prefix(&src).unwrap_or(&path);
            let module = model::module_of(&crate_name, rel);
            match model::parse_file(&path, &crate_name, &module, &text) {
                Ok(sf) => files_parsed.push(sf),
                Err(e) => findings.push(Finding {
                    path: path.clone(),
                    line: e.line,
                    rule: "parse",
                    message: format!("cannot lex source file: {e}"),
                }),
            }
        }
    }

    for f in &files_parsed {
        legacy::run(f, &mut findings);
    }
    let idx = calls::Index::build(&files_parsed);
    let graph = locks::run(&files_parsed, &idx, lock_crates, &mut findings);
    protocol::run(&files_parsed, &idx, &mut findings);
    blocking::run(&idx, &mut findings);
    interrupt::run(&idx, &mut findings);
    let mut worker_entries: Vec<String> = idx
        .all_fns()
        .filter(|&id| idx.item(id).has_attr("srmlint::worker_entry"))
        .map(|id| {
            let it = idx.item(id);
            format!("{}::{}", it.module, it.name)
        })
        .collect();
    worker_entries.sort();
    worker_entries.dedup();

    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule))
    });
    Analysis {
        findings,
        files,
        graph,
        worker_entries,
    }
}

/// The `package.name` from a crate's `Cargo.toml` (fallback: dir name).
fn package_name(crate_dir: &Path) -> String {
    let manifest = std::fs::read_to_string(crate_dir.join("Cargo.toml")).unwrap_or_default();
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return rest.trim().trim_matches('"').to_string();
                }
            }
        }
    }
    crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Rule `unsafe`: the crate root (lib.rs, else main.rs) must carry
/// `#![forbid(unsafe_code)]`.
fn lint_crate_root(crate_dir: &Path, findings: &mut Vec<Finding>) {
    let root = ["lib.rs", "main.rs"]
        .iter()
        .map(|f| crate_dir.join("src").join(f))
        .find(|p| p.is_file());
    let Some(root) = root else {
        findings.push(Finding {
            path: crate_dir.to_path_buf(),
            line: 0,
            rule: "unsafe",
            message: "crate has no src/lib.rs or src/main.rs".into(),
        });
        return;
    };
    let text = std::fs::read_to_string(&root).unwrap_or_default();
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            path: root,
            line: 1,
            rule: "unsafe",
            message: "crate root is missing #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Render findings with paths relative to `root` (stable across
/// checkouts), in-place.
pub fn relativize(findings: &mut [Finding], root: &Path) {
    for f in findings {
        if let Ok(rel) = f.path.strip_prefix(root) {
            f.path = rel.to_path_buf();
        }
    }
}
