//! The original `cargo xtask lint` rules, re-based onto the lexer and
//! item model.  Semantics are preserved — same rule names, messages,
//! and `// lint:allow(...)` suppression markers — but the scan now
//! runs on real tokens, so string literals (raw, multi-line, braces
//! inside) and comments can no longer produce false positives or
//! desynchronize the `#[cfg(test)]` masking.
//!
//! 1. `no-panic` — panic-free crates' non-test code must not call
//!    `.unwrap()` / `.expect(...)` / `panic!` / `unreachable!` /
//!    `todo!` / `unimplemented!`.
//! 2. `cast` — no `as` narrowing inside a `DiskId(...)` construction.
//! 3. `non-exhaustive` — public `*Error` enums carry
//!    `#[non_exhaustive]` (test code included: a public enum in a test
//!    cfg is still API of that cfg).
//! 4. `backend` — trait-only crates must not name a concrete
//!    `DiskArray` backend in non-test code.
//!
//! (Rule 5, `unsafe` — crate roots carry `#![forbid(unsafe_code)]` —
//! stays a per-crate file check in `lib.rs`.)

use crate::lexer::TokKind;
use crate::model::{ItemKind, SourceFile};
use crate::Finding;

/// Crates whose non-test code must be panic-free (rule `no-panic`).
/// Binaries (`srm-cli`, `xtask`) and the benchmark harness may abort on
/// their own errors; libraries must propagate typed ones.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "pdisk",
    "srm-core",
    "dsm",
    "occupancy",
    "analysis",
    "modelcheck",
    "srm-server",
    "srm-dist",
    "srmlint",
    "srmlint-macros",
];

/// Crates that must not name a concrete storage backend (rule `backend`).
pub const TRAIT_ONLY_CRATES: &[&str] = &["srm-core", "dsm"];

pub fn run(f: &SourceFile, findings: &mut Vec<Finding>) {
    let panic_free = PANIC_FREE_CRATES.contains(&f.crate_name.as_str());
    let trait_only = TRAIT_ONLY_CRATES.contains(&f.crate_name.as_str());

    // Rule `non-exhaustive` — on the item model, test code included.
    for it in &f.items {
        if let ItemKind::Enum { .. } = it.kind {
            if it.is_pub && it.name.ends_with("Error") && !it.has_attr("non_exhaustive") {
                findings.push(Finding {
                    path: f.path.clone(),
                    line: it.line,
                    rule: "non-exhaustive",
                    message: format!(
                        "public error enum `{}` is not #[non_exhaustive]",
                        it.name
                    ),
                });
            }
        }
    }

    // Token rules, skipping test extents.
    let toks = &f.toks;
    for i in 0..toks.len() {
        if f.is_test_tok(i) {
            continue;
        }
        let line = toks[i].line;
        let TokKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        let next_is = |off: usize, c: char| {
            matches!(toks.get(i + off).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
        };
        let prev_is_dot = i > 0 && matches!(toks[i - 1].kind, TokKind::Punct('.'));

        if panic_free && !f.has_directive(line, "lint:allow(panic)") {
            let needle = match name.as_str() {
                "unwrap" if prev_is_dot && next_is(1, '(') && next_is(2, ')') => Some(".unwrap()"),
                "expect" if prev_is_dot && next_is(1, '(') => Some(".expect("),
                "panic" if next_is(1, '!') => Some("panic!"),
                "unreachable" if next_is(1, '!') => Some("unreachable!"),
                "todo" if next_is(1, '!') && next_is(2, '(') => Some("todo!("),
                "unimplemented" if next_is(1, '!') && next_is(2, '(') => Some("unimplemented!("),
                _ => None,
            };
            if let Some(needle) = needle {
                findings.push(Finding {
                    path: f.path.clone(),
                    line,
                    rule: "no-panic",
                    message: format!(
                        "`{needle}` in library non-test code; return the crate's \
                         typed error (or justify with `// lint:allow(panic)`)"
                    ),
                });
            }
        }

        if name == "DiskId" && next_is(1, '(') && !f.has_directive(line, "lint:allow(cast)") {
            // Look for an `as` inside the balanced argument list.
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct('(') => depth += 1,
                    TokKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokKind::Ident(w) if w == "as" && depth >= 1 => {
                        findings.push(Finding {
                            path: f.path.clone(),
                            line,
                            rule: "cast",
                            message: "`as` narrowing inside DiskId construction; use \
                                      DiskId::from_index / DiskId::from_mod"
                                .into(),
                        });
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }

        if trait_only
            && matches!(name.as_str(), "MemDiskArray" | "FileDiskArray")
            && !f.has_directive(line, "lint:allow(backend)")
        {
            findings.push(Finding {
                path: f.path.clone(),
                line,
                rule: "backend",
                message: format!(
                    "algorithm crate names concrete backend `{name}`; stay \
                     generic over DiskArray so no I/O bypasses IoStats"
                ),
            });
        }
    }
}
