//! The analyzer must reject the intentional-violation fixtures with
//! file:line precision — and must hold the real workspace clean.
//!
//! The fixture crates under `tests/fixtures/` are never compiled
//! (their empty `[workspace]` tables detach them, and cargo ignores
//! directories under `tests/`); srmlint parses their sources directly.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// 1-based line of the first source line containing `marker`.
fn line_of(path: &Path, marker: &str) -> u32 {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    text.lines()
        .position(|l| l.contains(marker))
        .map(|i| (i + 1) as u32)
        .unwrap_or_else(|| panic!("marker {marker:?} not found in {}", path.display()))
}

#[test]
fn lock_cycle_fixture_is_rejected_with_located_cycle() {
    let dir = fixture("lock_cycle");
    let analysis = srmlint::analyze_crate_dirs(std::slice::from_ref(&dir), None);

    let cycles: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .collect();
    assert_eq!(
        cycles.len(),
        1,
        "expected exactly one cycle finding, got: {:#?}",
        analysis.findings
    );
    let f = cycles[0];
    let lib = dir.join("src/lib.rs");
    assert_eq!(f.path, lib, "cycle must be located in the fixture source");
    // Both edges, each with its own file:line, must be named.
    assert!(
        f.message.contains("Pair.a") && f.message.contains("Pair.b"),
        "cycle must name both locks: {}",
        f.message
    );
    let ab = line_of(&lib, "// edge a -> b");
    let ba = line_of(&lib, "// edge b -> a");
    assert!(
        f.message.contains(&format!(":{ab}")) && f.message.contains(&format!(":{ba}")),
        "cycle must cite both acquisition lines {ab} and {ba}: {}",
        f.message
    );
    // The finding itself anchors on one of the two edges.
    assert!(
        f.line == ab || f.line == ba,
        "finding line {} is neither edge site ({ab}/{ba})",
        f.line
    );

    // Both locks made it into the graph verify_witness checks against.
    assert!(analysis.graph.nodes.keys().any(|n| n.ends_with("Pair.a")));
    assert!(analysis.graph.nodes.keys().any(|n| n.ends_with("Pair.b")));
    assert_eq!(analysis.graph.edges.len(), 2);
}

#[test]
fn unhandled_variant_fixture_is_rejected_at_the_match() {
    let dir = fixture("unhandled_variant");
    let analysis = srmlint::analyze_crate_dirs(std::slice::from_ref(&dir), None);

    let protocol: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "protocol")
        .collect();
    assert_eq!(
        protocol.len(),
        1,
        "expected exactly one protocol finding, got: {:#?}",
        analysis.findings
    );
    let f = protocol[0];
    let lib = dir.join("src/lib.rs");
    assert_eq!(f.path, lib);
    assert_eq!(
        f.line,
        line_of(&lib, "_ => 0"),
        "finding must point at the catch-all arm"
    );
    assert!(
        f.message.contains("Bye"),
        "the swallowed variant must be named: {}",
        f.message
    );
}

#[test]
fn witness_log_inconsistent_with_graph_is_rejected() {
    let dir = fixture("lock_cycle");
    let mut analysis = srmlint::analyze_crate_dirs(std::slice::from_ref(&dir), None);
    let node_a = analysis
        .graph
        .nodes
        .keys()
        .find(|n| n.ends_with("Pair.a"))
        .cloned()
        .unwrap();
    let node_b = analysis
        .graph
        .nodes
        .keys()
        .find(|n| n.ends_with("Pair.b"))
        .cloned()
        .unwrap();

    // Consistent log: labels known, order is a static edge.
    let before = analysis.findings.len();
    let good = format!("lock\t{node_a}\nlock\t{node_b}\norder\t{node_a}\t{node_b}\n");
    let report = srmlint::locks::verify_witness(
        &analysis.graph,
        Path::new("good.log"),
        &good,
        &mut analysis.findings,
    );
    assert_eq!(analysis.findings.len(), before, "consistent log must add no findings");
    assert_eq!(report.labels_observed, 2);
    assert_eq!(report.orders_observed, 1);
    assert_eq!(report.unobserved_edges.len(), 1); // b -> a never ran

    // Unknown label and an order with no static edge: two findings.
    let bad = format!("lock\tno::such::Lock\norder\t{node_a}\tno::such::Lock\n");
    srmlint::locks::verify_witness(
        &analysis.graph,
        Path::new("bad.log"),
        &bad,
        &mut analysis.findings,
    );
    let witness: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "witness")
        .collect();
    assert_eq!(witness.len(), 2, "findings: {witness:#?}");
    assert!(witness.iter().any(|f| f.message.contains("does not know")));
    assert!(witness.iter().any(|f| f.message.contains("no static may-hold edge")));
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap();
    let analysis = srmlint::analyze_workspace(&root);
    assert!(
        analysis.findings.is_empty(),
        "workspace must lint clean: {:#?}",
        analysis.findings
    );
    // The concurrency surface the lock pass guards: all of pdisk's,
    // srm-server's, and srm-dist's locks are known nodes.
    for node in [
        "pdisk::pool::BufferPool.inner",
        "pdisk::trace::TraceSink.buf",
        "pdisk::crash::CrashClock.0",
        "pdisk::file::open_dirs",
        "srm_dist::net::NetState",
        "srm_server::server::Inner.state",
        "srm_server::server::JobServer.workers",
    ] {
        assert!(
            analysis.graph.nodes.contains_key(node),
            "expected lock node `{node}` in graph: {:?}",
            analysis.graph.nodes
        );
    }
    // The declared leaves really are leaves.
    assert!(analysis.graph.nodes["pdisk::trace::TraceSink.buf"]);
    assert!(analysis.graph.nodes["pdisk::crash::CrashClock.0"]);
    // Every thread-spawning site is a known worker entry, so the
    // blocking and interrupt passes patrol it: the per-disk I/O
    // workers and the Merge Path segment workers.
    for entry in [
        "pdisk::file::spawn_worker",
        "srm_core::merge_path::merge_segment",
    ] {
        assert!(
            analysis.worker_entries.iter().any(|e| e == entry),
            "expected worker entry `{entry}`: {:?}",
            analysis.worker_entries
        );
    }
}
