//! Intentional lock-order cycle: `sum` acquires `a` then `b`, while
//! `diff` acquires `b` then `a`.  Two threads running them against one
//! `Pair` can deadlock — srmlint's lock pass must reject this crate
//! with a `lock-order` cycle finding naming both edges.

#![forbid(unsafe_code)]

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn new(a: u64, b: u64) -> Self {
        Pair {
            a: Mutex::new(a),
            b: Mutex::new(b),
        }
    }

    pub fn sum(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner()); // edge a -> b
        *ga + *gb
    }

    pub fn diff(&self) -> u64 {
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner()); // edge b -> a
        ga.wrapping_sub(*gb)
    }
}
