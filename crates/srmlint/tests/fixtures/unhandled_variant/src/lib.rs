//! Intentional protocol violation: `dispatch` matches a
//! `#[srmlint::protocol]` enum with a `_ =>` catch-all, silently
//! swallowing `WireMsg::Bye`.  srmlint's protocol pass must reject it.

#![forbid(unsafe_code)]

/// A toy wire vocabulary.
#[srmlint::protocol]
pub enum WireMsg {
    Put(u64),
    Get(u64),
    Bye,
}

pub fn dispatch(m: WireMsg) -> u64 {
    match m {
        WireMsg::Put(x) => x,
        WireMsg::Get(x) => x + 1,
        _ => 0, // swallows Bye — the lint must name it
    }
}
