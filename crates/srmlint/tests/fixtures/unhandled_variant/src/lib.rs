//! Intentional protocol violation: `dispatch` matches a
//! `#[srmlint::protocol]` enum with a `_ =>` catch-all, silently
//! swallowing `WireMsg::Bye`.  srmlint's protocol pass must reject it.

#![forbid(unsafe_code)]

/// A toy wire vocabulary.
#[srmlint::protocol]
pub enum WireMsg {
    Put(u64),
    Get(u64),
    Bye,
}

pub fn dispatch(m: WireMsg) -> u64 {
    match m {
        WireMsg::Put(x) => x,
        WireMsg::Get(x) => x + 1,
        _ => 0, // swallows Bye — the lint must name it
    }
}

/// The ISSUE-10 scenario: a fault taxonomy that *grew* new variants
/// (`NoSpace`, `SyncFail` — the chaos engine's additions).  The
/// exhaustive classifier names every variant, old and new, so the
/// protocol pass must accept it — proving the lint flags only the
/// genuine swallow above and not a correctly-extended vocabulary.
#[srmlint::protocol]
pub enum FaultCode {
    Transient,
    Permanent,
    NoSpace,
    SyncFail,
}

pub fn classify(c: FaultCode) -> bool {
    match c {
        FaultCode::Transient => true,
        FaultCode::Permanent => false,
        FaultCode::NoSpace => false,
        FaultCode::SyncFail => false,
    }
}

/// A deliberate partial match over the grown taxonomy opts out on the
/// `match` line — the blessed escape hatch, which must also not count
/// as a finding.
pub fn is_enospc(c: FaultCode) -> bool {
    match c { // srmlint::allow(protocol)
        FaultCode::NoSpace => true,
        _ => false,
    }
}
