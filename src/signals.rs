//! Minimal POSIX signal bridge for graceful interruption.
//!
//! The workspace takes no external dependencies, so instead of `libc`
//! or `signal-hook` this module declares the one C function it needs —
//! `signal(2)` — and keeps the handler to the only thing that is
//! async-signal-safe anyway: flipping a process-global atomic.  The
//! watcher thread ([`watch`]) bridges that atomic to an
//! [`InterruptFlag`], which the sorters check at pass boundaries
//! (journaling a checkpoint before stopping) and the job server treats
//! as a drain request.
//!
//! This is deliberately the *only* `unsafe` in the repository, and it
//! lives in the facade crate, outside the `#![forbid(unsafe_code)]`
//! algorithm crates.

use pdisk::InterruptFlag;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// `SIGINT` (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite kill, e.g. from an init system).
pub const SIGTERM: i32 = 15;

static TRIGGERED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only async-signal-safe work here: one atomic store.
    TRIGGERED.store(true, Ordering::Release);
}

// `signal(2)`: SysV semantics are fine — we never uninstall, and a
// second delivery during handling at worst re-stores the flag.
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Install the graceful-interrupt handler for `SIGINT` and `SIGTERM`.
/// Idempotent; later installs are no-ops at the process level.
pub fn install() {
    // SAFETY: `signal` is the C standard library's signal(2); the
    // handler is an `extern "C" fn` that only performs an atomic store,
    // which is async-signal-safe per POSIX.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Whether a `SIGINT`/`SIGTERM` has been delivered since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Acquire)
}

/// Reset the delivery latch (tests only; real processes are on their
/// way out once it fires).
pub fn reset() {
    TRIGGERED.store(false, Ordering::Release);
}

/// Spawn a watcher that forwards the process signal latch to `flag`
/// (e.g. a sorter's [`InterruptFlag`] or, via its inner flag, the job
/// server's `ShutdownFlag`).  The thread exits once it has forwarded a
/// trigger or when `stop` returns true.
pub fn watch(flag: InterruptFlag, stop: impl Fn() -> bool + Send + 'static) {
    std::thread::spawn(move || loop {
        if triggered() {
            flag.trigger();
            return;
        }
        if stop() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test: the latch is process-global state, so the
    // scenarios must not interleave.
    #[test]
    fn latch_forwards_to_interrupt_flags_and_watchers_stop() {
        install();
        reset();
        assert!(!triggered());

        // An unsignalled watcher honours its stop request and leaves
        // the flag alone.
        let idle = InterruptFlag::new();
        watch(idle.clone(), || true);
        std::thread::sleep(Duration::from_millis(80));
        assert!(!idle.is_set());

        // Run the handler exactly as a delivery would (it is a plain
        // `extern "C" fn` doing one atomic store) and watch it forward.
        on_signal(SIGINT);
        assert!(triggered());
        let flag = InterruptFlag::new();
        watch(flag.clone(), || false);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !flag.is_set() {
            assert!(std::time::Instant::now() < deadline, "watcher never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        reset();
    }
}
