//! # srm-repro — facade over the SRM reproduction workspace
//!
//! Re-exports the workspace crates so examples and integration tests can
//! address the whole system through one dependency:
//!
//! * [`pdisk`] — the Vitter–Shriver parallel disk model (substrate);
//! * [`occupancy`] — occupancy theory: Monte Carlo + Theorem 2 bounds;
//! * [`srm`] — the paper's contribution: forecast-and-flush mergesort;
//! * [`dsm`] — the disk-striped mergesort baseline;
//! * [`analysis`] — closed-form I/O counts and the paper's tables.
//!
//! The facade also hosts [`crashmat`], the deterministic crash-matrix
//! harness, because it exercises the whole stack (pdisk crash clocks,
//! srm-core checkpoints, modelcheck replay) and is shared between the
//! CLI's `crash-matrix` subcommand and the integration suite; and
//! [`signals`], the one `unsafe` block in the repository (a `signal(2)`
//! declaration), bridging SIGINT/SIGTERM to the engines'
//! [`pdisk::InterruptFlag`] so sorts and the job server stop at
//! checkpoint boundaries instead of mid-write.

pub mod crashmat;
pub mod signals;

pub use analysis;
pub use dsm;
pub use occupancy;
pub use pdisk;
pub use srm_core as srm;
pub use srm_server as server;
