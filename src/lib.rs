//! # srm-repro — facade over the SRM reproduction workspace
//!
//! Re-exports the workspace crates so examples and integration tests can
//! address the whole system through one dependency:
//!
//! * [`pdisk`] — the Vitter–Shriver parallel disk model (substrate);
//! * [`occupancy`] — occupancy theory: Monte Carlo + Theorem 2 bounds;
//! * [`srm`] — the paper's contribution: forecast-and-flush mergesort;
//! * [`dsm`] — the disk-striped mergesort baseline;
//! * [`analysis`] — closed-form I/O counts and the paper's tables.
//!
//! The facade also hosts [`crashmat`], the deterministic crash-matrix
//! harness, because it exercises the whole stack (pdisk crash clocks,
//! srm-core checkpoints, modelcheck replay) and is shared between the
//! CLI's `crash-matrix` subcommand and the integration suite.

pub mod crashmat;

pub use analysis;
pub use dsm;
pub use occupancy;
pub use pdisk;
pub use srm_core as srm;
