//! Deterministic crash-matrix harness: prove that a checkpointed SRM
//! sort recovers from a simulated process crash at **every** I/O
//! boundary.
//!
//! The harness is built on three pieces from the workspace:
//!
//! * [`pdisk::CrashClock`] / [`pdisk::CrashingDiskArray`] number every
//!   I/O boundary deterministically and can kill the stack at any one of
//!   them (including torn multi-disk writes where only a prefix of the
//!   stripe lands);
//! * `srm_core`'s journaled checkpoint manifests plus the `sync`
//!   durability barrier, which recovery resumes from;
//! * `modelcheck`, which replays the recovery's trace and rejects any
//!   read that falls inside a durability gap.
//!
//! One sweep ([`run_matrix`]) is: a dry run with a counting clock to
//! learn `N` (the boundary count) and the uninterrupted baseline output,
//! then for every `K` in `0..N` a fresh world is built, crashed at
//! boundary `K`, "rebooted" (the backend survives; every wrapper and all
//! volatile state is discarded), and recovered.  The sweep fails unless
//! every recovery reproduces the baseline record sequence exactly.
//!
//! Used by the `srm crash-matrix` CLI subcommand and the
//! `tests/crash_matrix.rs` integration suite.

use pdisk::trace::TracingDiskArray;
use pdisk::{
    CrashClock, CrashingDiskArray, DiskArray, FileDiskArray, Geometry, MemDiskArray,
    ParityDiskArray, PdiskError, StripedRun, U64Record,
};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmError, SrmSorter};
use srm_server::{EngineKind, JobSpec};
use std::path::{Path, PathBuf};

/// Which substrate plays the disks that survive the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// In-memory arrays: the same instance survives the reboot, exactly
    /// as platters survive a power cut.
    Mem,
    /// Real files: the crashed array is dropped (its workers drain) and
    /// the directory is reopened, exercising torn-frame detection.
    File,
}

/// One sweep's parameters.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Disk-array geometry of every run in the sweep.
    pub geom: Geometry,
    /// Sorter seed (placement RNG); fixed so the baseline and every
    /// recovery make identical placement draws.
    pub seed: u64,
    /// Drive the merges through the pipelined (split-phase) engine.
    pub pipeline: bool,
    /// Forecast read-ahead depth for the pipelined engine (0 = demand
    /// reads only) — the sweep must stay crash-clean at depth > 1,
    /// where speculative backend reads and the deeper write-behind
    /// window are live across every crash point.
    pub read_ahead: usize,
    /// Put rotating parity under the sort; the parity sidecar store
    /// persists across the crash like the disks do.
    pub parity: bool,
    /// Disk substrate.
    pub backend: Backend,
    /// Replay every recovery's trace through the model checker
    /// (including the read-inside-durability-gap invariant).
    pub check_recovery: bool,
    /// Scratch directory for manifests, parity stores, and disk files.
    pub scratch: PathBuf,
}

/// Outcome of a full sweep.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Boundaries numbered by the dry run (`N`); the sweep explored all
    /// of `0..N`.
    pub points: u64,
    /// Crash points whose recovery found a checkpoint manifest to resume
    /// from.
    pub resumed_from_checkpoint: u64,
    /// Crash points that struck before the first durable checkpoint;
    /// recovery re-sorted from the (still staged) input.
    pub fresh_restarts: u64,
}

/// The matrix's engine parameters as a server job spec — engine
/// construction goes through the same single entry point
/// ([`JobSpec::srm_sorter`]) as the CLI and the job server.
fn job_spec(cfg: &MatrixConfig) -> JobSpec {
    JobSpec {
        engine: EngineKind::Srm,
        seed: cfg.seed,
        d: cfg.geom.d,
        b: cfg.geom.b,
        m: cfg.geom.m,
        pipeline: cfg.pipeline,
        read_ahead: cfg.read_ahead,
        ..JobSpec::default()
    }
}

fn sorter(cfg: &MatrixConfig) -> SrmSorter {
    job_spec(cfg).srm_sorter()
}

/// `Ok(None)` when the sort died at the armed boundary; `Err` for any
/// real failure.
fn crash_or<T>(r: srm_core::Result<T>, k: u64) -> Result<Option<T>, String> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(SrmError::Disk(PdiskError::Crashed { .. })) => Ok(None),
        Err(e) => Err(format!("crash point {k}: unexpected failure: {e}")),
    }
}

fn read_keys<A: DiskArray<U64Record>>(array: &mut A, run: &StripedRun) -> Result<Vec<u64>, String> {
    Ok(read_run(array, run)
        .map_err(|e| format!("cannot read sorted output: {e}"))?
        .iter()
        .map(|r| r.0)
        .collect())
}

/// Complete an interrupted sort on the rebooted world and hand back the
/// output keys, optionally model-checking the recovery's own trace.
fn recover<A: DiskArray<U64Record>>(
    mut array: A,
    cfg: &MatrixConfig,
    input: &StripedRun,
    manifest: &Path,
    k: u64,
) -> Result<Vec<u64>, String> {
    let s = sorter(cfg);
    if cfg.check_recovery {
        let mut traced = TracingDiskArray::new(array);
        let (run, _) = s
            .sort_checkpointed(&mut traced, input, manifest)
            .map_err(|e| format!("crash point {k}: recovery failed: {e}"))?;
        let keys = read_keys(&mut traced, &run)?;
        let trace = traced.take_trace();
        modelcheck::check_trace(traced.geometry(), &trace)
            .map_err(|v| format!("crash point {k}: recovery trace violates the model: {v}"))?;
        Ok(keys)
    } else {
        let (run, _) = s
            .sort_checkpointed(&mut array, input, manifest)
            .map_err(|e| format!("crash point {k}: recovery failed: {e}"))?;
        read_keys(&mut array, &run)
    }
}

/// Drive one world to the crash (or to completion, for the dry run).
/// Returns `Ok(Some(run))` when the sort finished, `Ok(None)` when the
/// armed boundary fired.  The caller reads the output *after* unwrapping
/// the crash layer, so the boundary count `N` covers exactly the sort.
fn drive<A: DiskArray<U64Record>>(
    array: &mut A,
    cfg: &MatrixConfig,
    clock: &CrashClock,
    input: &StripedRun,
    manifest: &Path,
    k: u64,
) -> Result<Option<StripedRun>, String> {
    let s = sorter(cfg).with_crash_clock(clock.clone());
    match crash_or(s.sort_checkpointed(array, input, manifest), k)? {
        Some((run, _)) => Ok(Some(run)),
        None => Ok(None),
    }
}

/// One crash-and-recover cycle (or, with a counting clock, the dry run).
///
/// Returns `(output_keys, resumed_from_checkpoint)`.  Volatile state —
/// every wrapper, the parity layer's in-memory masks, the crashed
/// process's tickets — is rebuilt from scratch at the reboot; only the
/// backend (and the parity sidecar / manifest files) survives.
fn run_point(
    cfg: &MatrixConfig,
    data: &[U64Record],
    clock: CrashClock,
    k: u64,
) -> Result<(Vec<u64>, bool), String> {
    let manifest = cfg.scratch.join(format!("point-{k}.manifest"));
    srm_core::SortManifest::remove(&manifest).map_err(|e| e.to_string())?;
    let pstore = cfg.scratch.join(format!("point-{k}.parity"));
    let _ = std::fs::remove_file(&pstore);
    let ddir = cfg.scratch.join(format!("point-{k}-disks"));
    let _ = std::fs::remove_dir_all(&ddir);

    fn stage<A: DiskArray<U64Record>>(a: &mut A, data: &[U64Record]) -> Result<StripedRun, String> {
        write_unsorted_input(a, data).map_err(|e| format!("staging failed: {e}"))
    }
    let err = |e: PdiskError| e.to_string();

    // The four worlds differ only in how the stack is built and rebuilt;
    // the crash/recover protocol is identical.
    let (keys, resumed) = match (cfg.backend, cfg.parity) {
        (Backend::Mem, false) => {
            let mut mem: MemDiskArray<U64Record> = MemDiskArray::new(cfg.geom);
            let input = stage(&mut mem, data)?;
            let mut arr = CrashingDiskArray::new(mem, clock.clone());
            match drive(&mut arr, cfg, &clock, &input, &manifest, k)? {
                Some(run) => {
                    let mut mem = arr.into_inner();
                    (read_keys(&mut mem, &run)?, false)
                }
                None => {
                    let mem = arr.into_inner();
                    let resumed = manifest_present(&manifest)?;
                    (recover(mem, cfg, &input, &manifest, k)?, resumed)
                }
            }
        }
        (Backend::Mem, true) => {
            let mem: MemDiskArray<U64Record> = MemDiskArray::new(cfg.geom);
            let mut pa = ParityDiskArray::new(mem)
                .map_err(err)?
                .with_store(&pstore)
                .map_err(err)?;
            let input = stage(&mut pa, data)?;
            pa.set_crash_clock(clock.clone());
            let mut arr = CrashingDiskArray::new(pa, clock.clone());
            match drive(&mut arr, cfg, &clock, &input, &manifest, k)? {
                Some(run) => {
                    // Re-wrap without the crash clock to read the output.
                    let mem = arr.into_inner().into_inner();
                    let mut pa = ParityDiskArray::new(mem)
                        .map_err(err)?
                        .with_store(&pstore)
                        .map_err(err)?;
                    (read_keys(&mut pa, &run)?, false)
                }
                None => {
                    // Reboot: the parity layer's in-memory state dies with
                    // the process; masks and watermarks come back from the
                    // sidecar.
                    let mem = arr.into_inner().into_inner();
                    let pa = ParityDiskArray::new(mem)
                        .map_err(err)?
                        .with_store(&pstore)
                        .map_err(err)?;
                    let resumed = manifest_present(&manifest)?;
                    (recover(pa, cfg, &input, &manifest, k)?, resumed)
                }
            }
        }
        (Backend::File, false) => {
            let mut fa: FileDiskArray<U64Record> =
                FileDiskArray::create(cfg.geom, &ddir).map_err(err)?;
            let input = stage(&mut fa, data)?;
            let mut arr = CrashingDiskArray::new(fa, clock.clone());
            match drive(&mut arr, cfg, &clock, &input, &manifest, k)? {
                Some(run) => {
                    let mut fa = arr.into_inner();
                    (read_keys(&mut fa, &run)?, false)
                }
                None => {
                    // Reboot: drop the crashed array (its workers drain),
                    // then reopen the directory — torn-frame detection
                    // runs here.
                    drop(arr);
                    let fa: FileDiskArray<U64Record> =
                        FileDiskArray::open(cfg.geom, &ddir).map_err(err)?;
                    let resumed = manifest_present(&manifest)?;
                    (recover(fa, cfg, &input, &manifest, k)?, resumed)
                }
            }
        }
        (Backend::File, true) => {
            let fa: FileDiskArray<U64Record> =
                FileDiskArray::create(cfg.geom, &ddir).map_err(err)?;
            let mut pa = ParityDiskArray::new(fa)
                .map_err(err)?
                .with_store(&pstore)
                .map_err(err)?;
            let input = stage(&mut pa, data)?;
            pa.set_crash_clock(clock.clone());
            let mut arr = CrashingDiskArray::new(pa, clock.clone());
            match drive(&mut arr, cfg, &clock, &input, &manifest, k)? {
                Some(run) => {
                    let fa = arr.into_inner().into_inner();
                    let mut pa = ParityDiskArray::new(fa)
                        .map_err(err)?
                        .with_store(&pstore)
                        .map_err(err)?;
                    (read_keys(&mut pa, &run)?, false)
                }
                None => {
                    drop(arr);
                    let fa: FileDiskArray<U64Record> =
                        FileDiskArray::open(cfg.geom, &ddir).map_err(err)?;
                    let pa = ParityDiskArray::new(fa)
                        .map_err(err)?
                        .with_store(&pstore)
                        .map_err(err)?;
                    let resumed = manifest_present(&manifest)?;
                    (recover(pa, cfg, &input, &manifest, k)?, resumed)
                }
            }
        }
    };
    let _ = std::fs::remove_dir_all(&ddir);
    let _ = std::fs::remove_file(&pstore);
    srm_core::SortManifest::remove(&manifest).map_err(|e| e.to_string())?;
    Ok((keys, resumed))
}

/// Whether a valid checkpoint generation survived the crash.
fn manifest_present(path: &Path) -> Result<bool, String> {
    srm_core::SortManifest::load_latest(path)
        .map(|m| m.is_some())
        .map_err(|e| format!("manifest unreadable after crash: {e}"))
}

/// Dry run: number every boundary with a counting clock and capture the
/// uninterrupted baseline output.  Returns `(N, baseline_keys)`.
pub fn dry_run(cfg: &MatrixConfig, data: &[U64Record]) -> Result<(u64, Vec<u64>), String> {
    let clock = CrashClock::counting();
    let (keys, _) = run_point(cfg, data, clock.clone(), u64::MAX)?;
    Ok((clock.points(), keys))
}

/// Explore one crash point: crash at boundary `k`, reboot, recover.
/// Returns the recovered output keys and whether a checkpoint was found.
pub fn explore_point(
    cfg: &MatrixConfig,
    data: &[U64Record],
    k: u64,
) -> Result<(Vec<u64>, bool), String> {
    run_point(cfg, data, CrashClock::crash_at(k), k)
}

/// The exhaustive sweep: dry-run, then crash at every boundary `0..N`
/// and require byte-identical recovery.  `progress(k, n)` is called
/// before each point.
pub fn run_matrix(
    cfg: &MatrixConfig,
    data: &[U64Record],
    mut progress: impl FnMut(u64, u64),
) -> Result<MatrixReport, String> {
    std::fs::create_dir_all(&cfg.scratch)
        .map_err(|e| format!("cannot create scratch dir {}: {e}", cfg.scratch.display()))?;
    let (points, baseline) = dry_run(cfg, data)?;
    let mut report = MatrixReport {
        points,
        ..MatrixReport::default()
    };
    for k in 0..points {
        progress(k, points);
        let (keys, resumed) = explore_point(cfg, data, k)?;
        if keys != baseline {
            return Err(format!(
                "crash point {k}: recovered output diverges from the baseline \
                 ({} records recovered, {} expected)",
                keys.len(),
                baseline.len()
            ));
        }
        if resumed {
            report.resumed_from_checkpoint += 1;
        } else {
            report.fresh_restarts += 1;
        }
    }
    Ok(report)
}
