//! The analysis behind SRM, hands-on: dependent vs classical maximum
//! occupancy (the paper's Figure 1 and §7), plus Theorem 2's bound.
//!
//! ```text
//! cargo run --release --example occupancy_demo
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_repro::occupancy::{
    estimate_classical_max, figure1_instance, upper_bound_expected_max, DependentProblem,
};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);

    // Figure 1's instance: 5 chains of 12 balls over 4 bins.
    let (problem, starts) = figure1_instance();
    let occ = problem.throw_at(&starts);
    println!("Figure 1 dependent instance: chains {:?}", problem.chains());
    println!("bin loads at the depicted throw: {occ:?} (max = {})", occ.iter().max().unwrap());

    // Why SRM's reads stay parallel: a merge phase needs R blocks whose
    // disks form a *dependent* occupancy problem — chains land cyclically,
    // which provably spreads no worse than independent balls.
    println!("\nE[max occupancy], 100k trials each, N_b = 64 balls, D = 8 bins:");
    for (label, problem) in [
        ("64 singleton chains (classical)", DependentProblem::classical(64, 8)),
        ("16 chains of length 4", DependentProblem::uniform_chains(16, 4, 8)),
        ("8 chains of length 8 = D", DependentProblem::uniform_chains(8, 8, 8)),
        ("4 chains of length 16 > D", DependentProblem::uniform_chains(4, 16, 8)),
    ] {
        let est = problem.estimate_max(100_000, &mut rng);
        println!("  {label:<34} {est}");
    }
    println!("\nLonger chains => smaller expected maximum: cyclic placement");
    println!("reduces variance (the §7.2 conjecture, verified empirically).");

    // Theorem 2's bound vs Monte Carlo at a Table 1 cell.
    let (k, d) = (5u64, 50usize);
    let mc = estimate_classical_max(k * d as u64, d, 5_000, &mut rng);
    let bound = upper_bound_expected_max(k * d as u64, d);
    println!("\nTheorem 2 at (k={k}, D={d}): MC E[max] = {:.2}, rho* bound = {bound:.2}", mc.mean);
    println!("=> the paper's Table 1 overhead v = E[max]/k = {:.2}", mc.mean / k as f64);
}
