//! Watch SRM's I/O schedule decide, operation by operation.
//!
//! Simulates a small merge and renders the trace: each parallel read as a
//! row showing which block every disk delivered, flushes called out
//! inline, depletions marking merge progress.
//!
//! ```text
//! cargo run --release --example schedule_trace
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_repro::srm::simulator::{MergeSim, SimInput, SimPlacement, TraceEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let d = 3;
    let runs = 4;
    let mut rng = SmallRng::seed_from_u64(2);
    let input = SimInput::average_case(runs, 6, 8, d, SimPlacement::Random, &mut rng);
    println!(
        "merging {runs} runs x 6 blocks on {d} disks (start disks: {:?})\n",
        input.runs.iter().map(|r| r.start_disk).collect::<Vec<_>>()
    );
    let (stats, trace) = MergeSim::run_traced(&input)?;

    println!("op  | {:^18} | notes", "disk 0 / 1 / 2");
    println!("----|--------------------|------------------------------");
    let mut op = 0;
    let mut consumed = 0u64;
    for event in &trace {
        match event {
            TraceEvent::InitRead { runs } => {
                op += 1;
                let cells: Vec<String> = runs.iter().map(|r| format!("r{r}b0")).collect();
                println!("{op:>3} | {:<18} | step-1 initial load", cells.join(" "));
            }
            TraceEvent::ParRead { targets, flushed } => {
                op += 1;
                let mut cells = vec!["  .  ".to_string(); d];
                for &(disk, run, idx) in targets {
                    cells[disk as usize] = format!("r{run}b{idx}");
                }
                let mut note = String::new();
                if !flushed.is_empty() {
                    let victims: Vec<String> =
                        flushed.iter().map(|(r, i)| format!("r{r}b{i}")).collect();
                    note = format!("flush {} (no I/O)", victims.join(", "));
                }
                println!("{op:>3} | {:<18} | {note}", cells.join(" "));
            }
            TraceEvent::Depleted { .. } => {
                consumed += 1;
            }
        }
    }
    println!(
        "\n{} reads ({} initial), {} blocks fetched, {} flushed, {} blocks merged",
        stats.schedule.total_reads(),
        stats.schedule.init_reads,
        stats.schedule.blocks_read,
        stats.schedule.blocks_flushed,
        consumed
    );
    println!("overhead v = {:.3} (1.0 = perfectly parallel reads)", stats.overhead_v);
    Ok(())
}
