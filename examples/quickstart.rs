//! Quickstart: sort a million records on four simulated parallel disks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use srm_repro::pdisk::{Geometry, MemDiskArray, U64Record};
use srm_repro::srm::sort::write_unsorted_input;
use srm_repro::srm::{read_run, SrmSorter};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The machine: D = 4 disks, blocks of B = 64 records, M = 8192
    // records of internal memory (Vitter–Shriver's parallel disk model).
    let geom = Geometry::new(4, 64, 8192)?;
    let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);

    // A million random records, staged on disk as an unsorted striped file.
    let mut rng = SmallRng::seed_from_u64(1);
    let records: Vec<U64Record> = (0..1_000_000).map(|_| U64Record(rng.random())).collect();
    let input = write_unsorted_input(&mut disks, &records)?;

    // Sort it.  SrmSorter picks the merge order from the memory formula
    // M/B >= 2R + 4D + RD/B and stripes every run from a random start disk.
    let (sorted, report) = SrmSorter::default().sort(&mut disks, &input)?;

    println!("sorted {} records", report.records);
    println!("merge order R = {}", report.merge_order);
    println!(
        "runs formed = {}, merge passes = {}",
        report.runs_formed, report.merge_passes
    );
    println!("I/O: {}", report.io);
    println!(
        "virtual flushes: {} operations evicting {} blocks (zero I/O cost)",
        report.schedule.flush_ops, report.schedule.blocks_flushed
    );

    // Check the result (reads the output back, so do it after reporting).
    let output = read_run(&mut disks, &sorted)?;
    assert!(output.windows(2).all(|w| w[0].0 <= w[1].0));
    assert_eq!(output.len(), records.len());
    println!("verification: output is sorted ✓");
    Ok(())
}
