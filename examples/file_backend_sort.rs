//! External sorting on *real files*: each simulated disk is a file, and
//! every parallel I/O operation issues its per-disk transfers concurrently
//! on dedicated worker threads.
//!
//! ```text
//! cargo run --release --example file_backend_sort
//! ```

use srm_repro::pdisk::{FileDiskArray, Geometry, KeyPayloadRecord};
use srm_repro::srm::sort::write_unsorted_input;
use srm_repro::srm::{read_run, SrmSorter};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Tuple = KeyPayloadRecord<24>; // 8-byte key + 24-byte payload

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("srm-example-{}", std::process::id()));
    let geom = Geometry::new(4, 128, 32_768)?;
    println!("creating 4 disk files under {}", dir.display());
    let mut disks: FileDiskArray<Tuple> = FileDiskArray::create(geom, &dir)?;

    // 400k records of 32 bytes: ~12.8 MB of real file data per pass.
    let mut rng = SmallRng::seed_from_u64(5);
    let records: Vec<Tuple> = (0..400_000)
        .map(|_| Tuple::with_derived_payload(rng.random()))
        .collect();
    let input = write_unsorted_input(&mut disks, &records)?;

    let start = std::time::Instant::now();
    let (sorted, report) = SrmSorter::default().sort(&mut disks, &input)?;
    println!(
        "sorted {} records in {:.2?}: {} merge passes, {}",
        report.records,
        start.elapsed(),
        report.merge_passes,
        report.io
    );

    // Verify keys AND payloads survived the trip through the files.
    let output = read_run(&mut disks, &sorted)?;
    assert!(output.windows(2).all(|w| w[0].key <= w[1].key));
    assert!(output
        .iter()
        .all(|r| *r == Tuple::with_derived_payload(r.key)));
    println!("verification: sorted, payloads intact ✓");

    for entry in std::fs::read_dir(&dir)? {
        let entry = entry?;
        println!(
            "  {} — {:.1} MB",
            entry.file_name().to_string_lossy(),
            entry.metadata()?.len() as f64 / 1e6
        );
    }
    drop(disks);
    std::fs::remove_dir_all(&dir)?;
    println!("cleaned up {}", dir.display());
    Ok(())
}
