//! The paper's headline comparison, live: sort the same file with SRM and
//! with disk-striped mergesort (DSM) under identical memory budgets, and
//! watch the I/O-operation ratio track Table 2/4 as the disk count grows.
//!
//! ```text
//! cargo run --release --example compare_srm_dsm
//! ```

use srm_repro::dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use srm_repro::pdisk::{Geometry, MemDiskArray, U64Record};
use srm_repro::srm::sort::write_unsorted_input;
use srm_repro::srm::SrmSorter;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u64 = 1_000_000;
    let k = 2; // memory per disk: small k is where SRM shines
    let b = 32;
    println!("sorting N = {n} records, k = {k}, B = {b}\n");
    println!("| D | SRM passes | DSM passes | SRM ops | DSM ops | ratio |");
    println!("|---|-----------|-----------|---------|---------|-------|");
    for d in [2usize, 4, 8, 16] {
        let geom = Geometry::for_table(k, d, b)?;
        let mut rng = SmallRng::seed_from_u64(7);
        let records: Vec<U64Record> = (0..n).map(|_| U64Record(rng.random())).collect();

        let mut srm_disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut srm_disks, &records)?;
        let (srm_out, srm) = SrmSorter::default().sort(&mut srm_disks, &input)?;

        let mut dsm_disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_stripes(&mut dsm_disks, &records)?;
        let (dsm_out, dsm) = DsmSorter::default().sort(&mut dsm_disks, &input)?;

        // Both must produce the same sorted sequence.
        let a = srm_repro::srm::read_run(&mut srm_disks, &srm_out)?;
        let c = read_logical_run(&mut dsm_disks, &dsm_out)?;
        assert_eq!(a, c, "SRM and DSM disagree on the sorted output");

        let srm_ops = srm.io.total_ops();
        let dsm_ops = dsm.io.total_ops();
        println!(
            "| {d} | {} | {} | {srm_ops} | {dsm_ops} | {:.2} |",
            srm.merge_passes,
            dsm.merge_passes,
            srm_ops as f64 / dsm_ops as f64
        );
    }
    println!("\nSRM merges R = kD runs at a time against DSM's ~k+1, so as D");
    println!("grows SRM saves whole passes — the ratio falls exactly as the");
    println!("paper's Tables 2 and 4 predict (0.5–0.8 territory).");
    println!("At D = 2 the floored merge orders coincide (R = 3 for both), so");
    println!("pass counts tie and SRM's small read overhead makes it a wash —");
    println!("the regime where the paper itself says striping is fine.");
    Ok(())
}
