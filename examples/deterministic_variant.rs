//! §8's deterministic variant: staggered start disks instead of random
//! ones.  On average-case inputs the merge simulator shows the two
//! placements performing alike; on an adversarial input the full sorter
//! still works with either placement (correctness never depends on the
//! placement — only the worst-case I/O *guarantee* does).
//!
//! ```text
//! cargo run --release --example deterministic_variant
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srm_repro::pdisk::{Geometry, MemDiskArray, U64Record};
use srm_repro::srm::simulator::{estimate_overhead_v, SimPlacement};
use srm_repro::srm::sort::write_unsorted_input;
use srm_repro::srm::{Placement, SrmConfig, SrmSorter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Average-case merge overhead, simulator, both placements.
    println!("average-case merge overhead v(k=5, D=10), 3 trials each:");
    for (label, placement) in [
        ("randomized", SimPlacement::Random),
        ("staggered ", SimPlacement::Staggered),
    ] {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = estimate_overhead_v(5, 10, 500, 1000, placement, 3, &mut rng)?;
        println!("  {label}: v = {v}");
    }

    // 2. Full sorts with both placements on one machine.
    let geom = Geometry::for_table(3, 4, 32)?;
    let mut rng = SmallRng::seed_from_u64(12);
    let records: Vec<U64Record> = (0..500_000)
        .map(|_| U64Record(rand::Rng::random(&mut rng)))
        .collect();
    println!("\nfull sorts of 500k records (k=3, D=4, B=32):");
    for (label, placement) in [
        ("randomized", Placement::Random),
        ("staggered ", Placement::Staggered),
    ] {
        let mut disks: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut disks, &records)?;
        let config = SrmConfig {
            placement,
            ..SrmConfig::default()
        };
        let (_, report) = SrmSorter::new(config).sort(&mut disks, &input)?;
        println!(
            "  {label}: {} ops total ({} reads incl. {} flush-forced rereads)",
            report.io.total_ops(),
            report.schedule.total_reads(),
            report.schedule.blocks_flushed
        );
    }
    println!("\nThe numbers agree to within noise: randomization buys the");
    println!("*worst-case* guarantee of Theorem 1, not average-case speed.");
    Ok(())
}
