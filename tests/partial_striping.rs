//! Partial striping end-to-end: when `D` outgrows `B`, clustering the
//! disks (§2.2's nod to Vitter–Shriver) restores a healthy merge order,
//! and the whole SRM sorter runs unchanged on the clustered view —
//! with logical and physical operation counts identical.

use pdisk::{ClusteredDiskArray, DiskArray, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmSorter};

fn records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

/// SRM's merge order is `R = (M − 4DB)/(2B + D)` in records; clustering
/// by `c` turns the denominator into `2cB + D/c`, a win exactly when
/// `D > 2Bc`.  With D = 64 physical disks of B = 1 (deep in the `D ≫ B`
/// regime §2.2 worries about), clustering by 4 nearly triples `R`.
#[test]
fn clustering_restores_merge_order() {
    let m = 1000;
    let flat = Geometry::new(64, 1, m).unwrap();
    let clustered = Geometry::new(16, 4, m).unwrap(); // = flat clustered by 4
    let r_flat = flat.srm_merge_order().unwrap();
    let r_clustered = clustered.srm_merge_order().unwrap();
    assert!(
        r_clustered > 2 * r_flat,
        "clustering should help: flat R = {r_flat}, clustered R = {r_clustered}"
    );
}

#[test]
fn srm_sorts_on_clustered_array() {
    let inner: MemDiskArray<U64Record> =
        MemDiskArray::new(Geometry::new(8, 4, 2048).unwrap());
    let mut array = ClusteredDiskArray::new(inner, 4).unwrap();
    assert_eq!(array.geometry().d, 2);
    assert_eq!(array.geometry().b, 16);

    let data = records(50_000, 1);
    let input = write_unsorted_input(&mut array, &data).unwrap();
    array.reset_stats();
    let (run, report) = SrmSorter::default().sort(&mut array, &input).unwrap();
    let out = read_run(&mut array, &run).unwrap();
    assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    assert_eq!(out.len(), data.len());
    assert!(report.merge_passes >= 1);
    // Physical parallelism: every logical op moved up to 8 physical
    // blocks; parallelism relative to the 8 physical disks stays high.
    let stats = array.inner().stats();
    assert!(
        stats.write_parallelism() > 7.0,
        "physical write parallelism {}",
        stats.write_parallelism()
    );
}

#[test]
fn clustered_and_flat_sorts_agree() {
    let data = records(20_000, 2);
    // Flat: 2 logical disks of B = 16 directly.
    let mut flat: MemDiskArray<U64Record> =
        MemDiskArray::new(Geometry::new(2, 16, 2048).unwrap());
    let input = write_unsorted_input(&mut flat, &data).unwrap();
    let (run, flat_report) = SrmSorter::default().sort(&mut flat, &input).unwrap();
    let flat_out = read_run(&mut flat, &run).unwrap();

    // Clustered: 8 physical disks of B = 4, clustered by 4.
    let inner: MemDiskArray<U64Record> =
        MemDiskArray::new(Geometry::new(8, 4, 2048).unwrap());
    let mut clustered = ClusteredDiskArray::new(inner, 4).unwrap();
    let input = write_unsorted_input(&mut clustered, &data).unwrap();
    let (run, clustered_report) = SrmSorter::default().sort(&mut clustered, &input).unwrap();
    let clustered_out = read_run(&mut clustered, &run).unwrap();

    // Identical logical geometry + identical seed => identical outputs
    // and identical *operation* counts (block counts differ by the
    // cluster factor: each logical block is 4 physical blocks).
    assert_eq!(flat_out, clustered_out);
    assert_eq!(flat_report.io.read_ops, clustered_report.io.read_ops);
    assert_eq!(flat_report.io.write_ops, clustered_report.io.write_ops);
    assert_eq!(
        flat_report.io.blocks_read * 4,
        clustered_report.io.blocks_read
    );
    assert_eq!(flat_report.schedule, clustered_report.schedule);
}
