//! Property-based tests for Merge Path partitioning
//! ([`srm_core::merge_path`]): for *arbitrary* sorted inputs — including
//! duplicate-heavy keys, empty and singleton sides, and split boundaries
//! that land inside long equal-key runs — the diagonal split must be the
//! exact staircase prefix, and the parallel merges must equal the serial
//! a-first merge (and the tournament-tree k-way merge they replaced)
//! record for record, at every thread count.

use pdisk::{Record, U64Record};
use proptest::collection::vec;
use proptest::prelude::*;
use srm_core::loser_tree::LoserTree;
use srm_core::{diagonal_split, merge_pair_into, par_merge_sorted_chunks};

/// Reference a-first serial two-way merge.
fn serial_merge(a: &[U64Record], b: &[U64Record]) -> Vec<U64Record> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        if j == b.len() || (i < a.len() && a[i].key() <= b[j].key()) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

/// Reference k-way merge of `records`' chunk-sized runs through the
/// tournament tree — the exact code path `par_sort_by_key` used before
/// Merge Path replaced it.
fn loser_tree_merge(records: &[U64Record], chunk: usize) -> Vec<U64Record> {
    let n = records.len();
    let mut cursors: Vec<usize> = (0..n).step_by(chunk).collect();
    if cursors.is_empty() {
        return Vec::new();
    }
    let ends: Vec<usize> = cursors.iter().map(|&s| (s + chunk).min(n)).collect();
    let initial: Vec<u64> = cursors.iter().map(|&c| records[c].key()).collect();
    let mut tree = LoserTree::new(initial);
    let mut out = Vec::with_capacity(n);
    while !tree.all_exhausted() {
        let (leaf, _) = tree.peek();
        out.push(records[cursors[leaf]]);
        cursors[leaf] += 1;
        let next = if cursors[leaf] < ends[leaf] {
            records[cursors[leaf]].key()
        } else {
            u64::MAX
        };
        tree.update(leaf, next);
    }
    out
}

/// A sorted run with aggressively duplicated keys (span 0..8), so split
/// diagonals routinely fall inside equal-key plateaus.
fn dup_heavy_run(max_len: usize) -> impl Strategy<Value = Vec<U64Record>> {
    vec(0u64..8, 0..max_len).prop_map(|mut keys| {
        keys.sort_unstable();
        keys.into_iter().map(U64Record).collect()
    })
}

/// A sorted run over the full key space.
fn wide_run(max_len: usize) -> impl Strategy<Value = Vec<U64Record>> {
    vec(any::<u64>(), 0..max_len).prop_map(|mut keys| {
        keys.sort_unstable();
        keys.into_iter().map(U64Record).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `diagonal_split(a, b, d)` returns the unique `(i, j)` on diagonal
    /// `d` whose two prefixes merge to exactly the first `d` records of
    /// the whole merge — for every diagonal of every input.
    #[test]
    fn split_is_the_exact_staircase_prefix(
        a in dup_heavy_run(120),
        b in dup_heavy_run(120),
        pct in 0usize..=100,
    ) {
        let whole = serial_merge(&a, &b);
        let n = a.len() + b.len();
        let d = n * pct / 100;
        let (i, j) = diagonal_split(&a, &b, d);
        prop_assert_eq!(i + j, d);
        prop_assert_eq!(serial_merge(&a[..i], &b[..j]), whole[..d].to_vec());
        // Cross-boundary order: nothing in the suffix may precede the
        // prefix (ties a-first, so b[j-1] < a[i] and a[i-1] <= b[j]).
        if i > 0 && j < b.len() {
            prop_assert!(a[i - 1].key() <= b[j].key());
        }
        if j > 0 && i < a.len() {
            prop_assert!(b[j - 1].key() < a[i].key());
        }
    }

    /// The parallel pair merge equals the serial a-first merge for every
    /// thread count, on duplicate-heavy inputs large enough to take the
    /// threaded path.
    #[test]
    fn pair_merge_equals_serial_at_every_thread_count(
        a in dup_heavy_run(9_000),
        b in dup_heavy_run(9_000),
        threads in 1usize..=9,
    ) {
        let expected = serial_merge(&a, &b);
        let mut out = vec![U64Record(0); a.len() + b.len()];
        merge_pair_into(&a, &b, &mut out, threads);
        prop_assert_eq!(out, expected);
    }

    /// Wide keyspace variant: near-duplicate-free inputs, arbitrary
    /// (possibly empty or singleton) sides.
    #[test]
    fn pair_merge_handles_wide_keys_and_tiny_sides(
        a in wide_run(64),
        b in wide_run(9_000),
        threads in 1usize..=9,
    ) {
        let expected = serial_merge(&a, &b);
        let mut out = vec![U64Record(0); a.len() + b.len()];
        merge_pair_into(&a, &b, &mut out, threads);
        prop_assert_eq!(out, expected);
    }

    /// The chunked pairwise reduction reproduces the tournament-tree
    /// k-way merge exactly, for arbitrary chunk sizes and thread counts.
    #[test]
    fn chunked_reduction_equals_loser_tree(
        keys in vec(0u64..16, 1..30_000),
        chunk_pct in 2usize..=100,
        threads in 1usize..=8,
    ) {
        let n = keys.len();
        let chunk = (n * chunk_pct / 100).max(1);
        let mut v: Vec<U64Record> = keys.into_iter().map(U64Record).collect();
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            v[start..end].sort_unstable_by_key(|r| r.0);
        }
        let expected = loser_tree_merge(&v, chunk);
        par_merge_sorted_chunks(&mut v, chunk, threads);
        prop_assert_eq!(v, expected);
    }
}
