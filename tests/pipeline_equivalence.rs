//! Pipelined-vs-serial equivalence suite: the pipelined engines
//! (split-phase read-ahead / write-behind) must be **observationally
//! identical** to the serial engines everywhere the repo's fault and
//! recovery machinery can see — byte-identical sorted output, identical
//! [`pdisk::IoStats`], and model-checker-clean traces — across healthy,
//! transiently-faulty, parity-protected, degraded (permanent disk
//! death), and checkpoint-resume configurations, on both the in-memory
//! and the file backend.
//!
//! This is the contract that makes pipelining safe to turn on by
//! default: every scripted fault ordinal, parity commit, reconstruction,
//! and checkpoint boundary lands at exactly the same operation in both
//! engines, because the pipelined engine *submits* operations in the
//! serial order and only overlaps their completion.

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use modelcheck::{check_stats, check_trace};
use pdisk::trace::TracingDiskArray;
use pdisk::{
    DiskArray, FaultModel, FaultOp, FaultyDiskArray, FileDiskArray, Geometry, IoStats,
    MemDiskArray, ParityDiskArray, Record, RetryPolicy, RetryingDiskArray, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmError, SrmSorter};
use std::path::PathBuf;
use std::time::Duration;

fn random_records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn encode_all(records: &[U64Record]) -> Vec<u8> {
    let mut out = vec![0u8; records.len() * U64Record::ENCODED_LEN];
    for (rec, chunk) in records.iter().zip(out.chunks_mut(U64Record::ENCODED_LEN)) {
        rec.encode(chunk);
    }
    out
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-pipeq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a full SRM sort on a freshly built array, replay the trace
/// through the model checker, and return the sorted bytes plus the
/// sort's own [`IoStats`] (snapshotted before the verification read).
fn srm_outcome<A, F>(make: F, data: &[U64Record], pipeline: bool) -> (Vec<u8>, IoStats)
where
    A: DiskArray<U64Record>,
    F: FnOnce() -> A,
{
    let mut a = TracingDiskArray::new(make());
    let geom = a.geometry();
    let input = write_unsorted_input(&mut a, data).unwrap();
    let (run, _) = SrmSorter::default()
        .with_pipeline(pipeline)
        .sort(&mut a, &input)
        .unwrap_or_else(|e| panic!("sort (pipeline={pipeline}) failed: {e}"));
    let stats = a.stats();
    let out = read_run(&mut a, &run).unwrap();
    let trace = a.take_trace();
    check_trace(geom, &trace).unwrap_or_else(|v| panic!("violation (pipeline={pipeline}): {v}"));
    check_stats(&trace, &a.stats())
        .unwrap_or_else(|v| panic!("stats drift (pipeline={pipeline}): {v}"));
    (encode_all(&out), stats)
}

/// The core assertion: serial and pipelined SRM sorts of the same data
/// on identically-constructed arrays agree byte-for-byte and op-for-op.
fn assert_srm_equivalent<A, F>(make: F, data: &[U64Record], tag: &str)
where
    A: DiskArray<U64Record>,
    F: Fn() -> A,
{
    let (serial_out, serial_io) = srm_outcome(&make, data, false);
    let (pipe_out, pipe_io) = srm_outcome(&make, data, true);
    assert_eq!(serial_out, pipe_out, "{tag}: output must be byte-identical");
    assert_eq!(serial_io, pipe_io, "{tag}: IoStats must be identical");
    // Guard against both engines agreeing on a wrong answer.
    let mut sorted = data.to_vec();
    sorted.sort();
    assert_eq!(serial_out, encode_all(&sorted), "{tag}: output must be sorted");
}

#[test]
fn healthy_srm_equivalent() {
    // A deep-merge geometry and a flush-heavy (low k = R/D) geometry, so
    // both the plain-read and the rule-2c paths are exercised.
    assert_srm_equivalent(
        || MemDiskArray::<U64Record>::new(Geometry::new(2, 4, 96).unwrap()),
        &random_records(3000, 0xE1),
        "healthy d=2",
    );
    assert_srm_equivalent(
        || MemDiskArray::<U64Record>::new(Geometry::new(4, 8, 256).unwrap()),
        &random_records(12_000, 0xE2),
        "healthy d=4 flush-heavy",
    );
}

#[test]
fn transient_faults_with_retry_equivalent() {
    // Scripted transient faults hit the same op ordinals in both engines
    // (the pipelined engine submits in serial order), so even the retry
    // counts must agree exactly.
    let geom = Geometry::new(2, 4, 96).unwrap();
    assert_srm_equivalent(
        || {
            let faulty = FaultyDiskArray::new(
                MemDiskArray::<U64Record>::new(geom),
                FaultModel::random(7).with_rate(0.01),
            );
            RetryingDiskArray::new(faulty, RetryPolicy::new(8, Duration::ZERO))
        },
        &random_records(3000, 0xE3),
        "transient faults",
    );
}

#[test]
fn parity_equivalent() {
    let geom = Geometry::new(3, 4, 120).unwrap();
    assert_srm_equivalent(
        || ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap(),
        &random_records(3000, 0xE4),
        "parity",
    );
}

#[test]
fn degraded_equivalent() {
    let geom = Geometry::new(3, 4, 120).unwrap();
    let data = random_records(3000, 0xE5);
    // Learn a mid-sort read ordinal from a clean run to aim the kill.
    let reads = {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut a, &data).unwrap();
        a.reset_stats();
        SrmSorter::default().sort(&mut a, &input).unwrap();
        a.stats().read_ops
    };
    assert_srm_equivalent(
        || {
            let faulty = FaultyDiskArray::new(
                MemDiskArray::<U64Record>::new(geom),
                FaultModel::none().kill_at(FaultOp::Read, reads / 2),
            );
            ParityDiskArray::new(faulty).unwrap()
        },
        &data,
        "degraded (disk death mid-sort)",
    );
}

#[test]
fn file_backend_equivalent() {
    // The file backend is the one with *native* async split-phase I/O
    // (per-disk worker threads), so this is where completion genuinely
    // overlaps with merging — and where equivalence is least trivial.
    let geom = Geometry::new(4, 8, 256).unwrap();
    let data = random_records(8000, 0xE6);
    let dir = unique_dir("file");
    let mut outcomes = Vec::new();
    for pipeline in [false, true] {
        let sub = dir.join(if pipeline { "pipe" } else { "serial" });
        outcomes.push(srm_outcome(
            || FileDiskArray::<U64Record>::create(geom, &sub).unwrap(),
            &data,
            pipeline,
        ));
    }
    let (serial, pipe) = (&outcomes[0], &outcomes[1]);
    assert_eq!(serial.0, pipe.0, "file backend: output must be byte-identical");
    assert_eq!(serial.1, pipe.1, "file backend: IoStats must be identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Depth-K read-ahead and multi-threaded run formation are pure
/// wall-clock knobs: on the file backend — the one whose speculative
/// prefetch cache actually acts on the hints — a pipelined sort at
/// depth 8 with 4 formation threads must be byte- and op-identical to
/// the serial engine, and its trace must replay checker-clean.
#[test]
fn deep_read_ahead_and_threads_equivalent() {
    use srm_core::run_formation::RunFormation;
    use srm_core::sort::SrmConfig;

    let geom = Geometry::new(4, 8, 256).unwrap();
    let data = random_records(8000, 0xE9);
    let dir = unique_dir("deep");
    let config = SrmConfig {
        run_formation: RunFormation::ParallelMemoryLoad { fraction: 1.0, threads: 4 },
        ..SrmConfig::default()
    };

    let drive = |pipeline: bool, depth: usize, sub: &str| -> (Vec<u8>, IoStats) {
        let sub = dir.join(sub);
        let mut a = TracingDiskArray::new(FileDiskArray::<U64Record>::create(geom, &sub).unwrap());
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let (run, _) = SrmSorter::new(config)
            .with_pipeline(pipeline)
            .with_read_ahead(depth)
            .sort(&mut a, &input)
            .unwrap_or_else(|e| panic!("sort (pipeline={pipeline} depth={depth}) failed: {e}"));
        let stats = a.stats();
        let out = read_run(&mut a, &run).unwrap();
        let trace = a.take_trace();
        check_trace(geom, &trace)
            .unwrap_or_else(|v| panic!("violation (pipeline={pipeline} depth={depth}): {v}"));
        check_stats(&trace, &a.stats())
            .unwrap_or_else(|v| panic!("stats drift (pipeline={pipeline} depth={depth}): {v}"));
        (encode_all(&out), stats)
    };

    let (serial_out, serial_io) = drive(false, 0, "serial");
    for depth in [1usize, 3, 8] {
        let (deep_out, deep_io) = drive(true, depth, &format!("deep-{depth}"));
        assert_eq!(deep_out, serial_out, "depth {depth}: output must be byte-identical");
        assert_eq!(deep_io, serial_io, "depth {depth}: IoStats must be identical");
    }
    let mut sorted = data.clone();
    sorted.sort();
    assert_eq!(serial_out, encode_all(&sorted), "output must be sorted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sort that crashes at a pass boundary and resumes from its manifest
/// must agree across engines *per session*: same crash point, same
/// resumed schedule, same final bytes, same combined stats — and every
/// session's trace replays clean.
#[test]
fn checkpoint_resume_equivalent() {
    let geom = Geometry::new(2, 4, 96).unwrap();
    let data = random_records(3000, 0xE7);
    let dir = unique_dir("resume");

    let run = |pipeline: bool| -> (Vec<u8>, IoStats) {
        let manifest = dir.join(format!("pipe-{pipeline}.manifest"));
        let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
        let input = write_unsorted_input(&mut a, &data).unwrap();

        // Session 1: crash after merge pass 1 completes.
        let sorter = SrmSorter::default().with_pipeline(pipeline);
        let crashed = sorter.sort_observed(&mut a, &input, Some(&manifest), |pass, _| {
            if pass == 1 {
                return Err(SrmError::Internal("simulated crash".into()));
            }
            Ok(())
        });
        assert!(crashed.is_err(), "session 1 (pipeline={pipeline}) must crash");
        let first = a.take_trace();
        check_trace(geom, &first)
            .unwrap_or_else(|v| panic!("session 1 violation (pipeline={pipeline}): {v}"));

        // Session 2: resume from the manifest and finish.
        let (run, _) = sorter.sort_checkpointed(&mut a, &input, &manifest).unwrap();
        let stats = a.stats();
        let out = read_run(&mut a, &run).unwrap();
        let second = a.take_trace();
        check_trace(geom, &second)
            .unwrap_or_else(|v| panic!("session 2 violation (pipeline={pipeline}): {v}"));
        let mut all = first;
        all.extend(second);
        check_stats(&all, &a.stats())
            .unwrap_or_else(|v| panic!("stats drift (pipeline={pipeline}): {v}"));
        (encode_all(&out), stats)
    };

    let (serial_out, serial_io) = run(false);
    let (pipe_out, pipe_io) = run(true);
    assert_eq!(serial_out, pipe_out, "resume: output must be byte-identical");
    assert_eq!(serial_io, pipe_io, "resume: combined IoStats must be identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// DSM counterpart of [`srm_outcome`]: sort, model-check the trace,
/// return bytes + pre-verification stats.
fn dsm_outcome<A: DiskArray<U64Record>>(
    inner: A,
    data: &[U64Record],
    pipeline: bool,
) -> (Vec<u8>, IoStats) {
    let mut a = TracingDiskArray::new(inner);
    let geom = a.geometry();
    let input = write_unsorted_stripes(&mut a, data).unwrap();
    let (run, _) = DsmSorter::default().with_pipeline(pipeline).sort(&mut a, &input).unwrap();
    let stats = a.stats();
    let out = read_logical_run(&mut a, &run).unwrap();
    let trace = a.take_trace();
    check_trace(geom, &trace).unwrap_or_else(|v| panic!("dsm violation (pipeline={pipeline}): {v}"));
    check_stats(&trace, &a.stats())
        .unwrap_or_else(|v| panic!("dsm stats drift (pipeline={pipeline}): {v}"));
    (encode_all(&out), stats)
}

#[test]
fn dsm_equivalent() {
    // DSM pipelining (striped-read double-buffering) gets the same
    // contract, healthy and under parity.
    let geom = Geometry::new(3, 4, 120).unwrap();
    let data = random_records(3000, 0xE8);

    let (serial_out, serial_io) = dsm_outcome(MemDiskArray::<U64Record>::new(geom), &data, false);
    let (pipe_out, pipe_io) = dsm_outcome(MemDiskArray::<U64Record>::new(geom), &data, true);
    assert_eq!(serial_out, pipe_out, "dsm healthy: output must be byte-identical");
    assert_eq!(serial_io, pipe_io, "dsm healthy: IoStats must be identical");

    let mk = || ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap();
    let (serial_out, serial_io) = dsm_outcome(mk(), &data, false);
    let (pipe_out, pipe_io) = dsm_outcome(mk(), &data, true);
    assert_eq!(serial_out, pipe_out, "dsm parity: output must be byte-identical");
    assert_eq!(serial_io, pipe_io, "dsm parity: IoStats must be identical");
}
