//! Failure-path coverage: when any parallel I/O operation fails, every
//! consumer (both sorters, the merge, run formation) must return an error
//! — no panic, no hang, no silent truncation.

use dsm::{write_unsorted_stripes, DsmSorter};
use pdisk::{DiskArray, FaultPlan, FaultyDiskArray, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{SrmError, SrmSorter};

fn records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn geom() -> Geometry {
    Geometry::new(2, 4, 96).unwrap()
}

/// How many ops a clean SRM sort of this input performs (to place faults
/// throughout the whole schedule, not just at the start).
fn clean_srm_ops(data: &[U64Record]) -> (u64, u64) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut a, data).unwrap();
    a.reset_stats();
    let _ = SrmSorter::default().sort(&mut a, &input).unwrap();
    (a.stats().read_ops, a.stats().write_ops)
}

#[test]
fn srm_surfaces_read_failures_everywhere() {
    let data = records(800, 1);
    let (reads, _) = clean_srm_ops(&data);
    // Probe the start, several interior points, and the very last read.
    let probes = [0, reads / 4, reads / 2, 3 * reads / 4, reads - 1];
    for &n in &probes {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, FaultPlan::read(n));
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let result = SrmSorter::default().sort(&mut a, &input);
        assert!(
            matches!(result, Err(SrmError::Disk(_))),
            "read fault at op {n} must surface as a disk error"
        );
    }
}

#[test]
fn srm_surfaces_write_failures_everywhere() {
    let data = records(800, 2);
    let (_, writes) = clean_srm_ops(&data);
    let input_writes = 800u64.div_ceil(4).div_ceil(2); // staging ops before sort
    for &n in &[0, writes / 2, writes - 1] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, FaultPlan::write(input_writes + n));
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let result = SrmSorter::default().sort(&mut a, &input);
        assert!(
            matches!(result, Err(SrmError::Disk(_))),
            "write fault at sort-op {n} must surface as a disk error"
        );
    }
}

#[test]
fn dsm_surfaces_failures() {
    let data = records(600, 3);
    for plan in [FaultPlan::read(5), FaultPlan::write(40)] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, plan);
        match write_unsorted_stripes(&mut a, &data) {
            // Staging itself may hit the write fault — that's fine too.
            Err(_) => continue,
            Ok(input) => {
                let result = DsmSorter::default().sort(&mut a, &input);
                assert!(result.is_err(), "fault {plan:?} must surface");
            }
        }
    }
}

#[test]
fn failure_then_fresh_array_still_sorts() {
    // A failed sort must not poison anything global: a new array on the
    // same process sorts fine.
    let data = records(500, 4);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = FaultyDiskArray::new(inner, FaultPlan::read(3));
    let input = write_unsorted_input(&mut a, &data).unwrap();
    assert!(SrmSorter::default().sort(&mut a, &input).is_err());

    let mut fresh: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut fresh, &data).unwrap();
    let (run, _) = SrmSorter::default().sort(&mut fresh, &input).unwrap();
    let out = srm_core::read_run(&mut fresh, &run).unwrap();
    assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
}
