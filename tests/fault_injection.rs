//! Failure-path coverage: when any parallel I/O operation fails, every
//! consumer (both sorters, the merge, run formation) must return an error
//! — no panic, no hang, no silent truncation.

use dsm::{write_unsorted_stripes, DsmError, DsmSorter};
use pdisk::{
    DiskArray, FaultModel, FaultOp, FaultPlan, FaultyDiskArray, Geometry, MemDiskArray,
    PdiskError, RetryPolicy, RetryingDiskArray, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmError, SrmSorter};

fn records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn geom() -> Geometry {
    Geometry::new(2, 4, 96).unwrap()
}

/// How many ops a clean SRM sort of this input performs (to place faults
/// throughout the whole schedule, not just at the start).
fn clean_srm_ops(data: &[U64Record]) -> (u64, u64) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut a, data).unwrap();
    a.reset_stats();
    let _ = SrmSorter::default().sort(&mut a, &input).unwrap();
    (a.stats().read_ops, a.stats().write_ops)
}

#[test]
fn srm_surfaces_read_failures_everywhere() {
    let data = records(800, 1);
    let (reads, _) = clean_srm_ops(&data);
    // Probe the start, several interior points, and the very last read.
    let probes = [0, reads / 4, reads / 2, 3 * reads / 4, reads - 1];
    for &n in &probes {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, FaultPlan::read(n));
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let result = SrmSorter::default().sort(&mut a, &input);
        assert!(
            matches!(result, Err(SrmError::Disk(_))),
            "read fault at op {n} must surface as a disk error"
        );
    }
}

#[test]
fn srm_surfaces_write_failures_everywhere() {
    let data = records(800, 2);
    let (_, writes) = clean_srm_ops(&data);
    let input_writes = 800u64.div_ceil(4).div_ceil(2); // staging ops before sort
    for &n in &[0, writes / 2, writes - 1] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, FaultPlan::write(input_writes + n));
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let result = SrmSorter::default().sort(&mut a, &input);
        assert!(
            matches!(result, Err(SrmError::Disk(_))),
            "write fault at sort-op {n} must surface as a disk error"
        );
    }
}

#[test]
fn dsm_surfaces_failures() {
    let data = records(600, 3);
    for plan in [FaultPlan::read(5), FaultPlan::write(40)] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, plan);
        match write_unsorted_stripes(&mut a, &data) {
            // Staging itself may hit the write fault — that's fine too.
            Err(_) => continue,
            Ok(input) => {
                let result = DsmSorter::default().sort(&mut a, &input);
                assert!(result.is_err(), "fault {plan:?} must surface");
            }
        }
    }
}

#[test]
fn combined_read_and_write_plan_surfaces_first_hit() {
    // One plan arming both a read and a write fault: whichever the
    // schedule reaches first aborts the sort; nothing panics.
    let data = records(800, 7);
    let (reads, writes) = clean_srm_ops(&data);
    let staging = 800u64.div_ceil(4).div_ceil(2);
    let plan = FaultPlan::read(reads / 3).and_write(staging + writes / 3);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = FaultyDiskArray::new(inner, plan);
    let input = write_unsorted_input(&mut a, &data).unwrap();
    let result = SrmSorter::default().sort(&mut a, &input);
    assert!(matches!(result, Err(SrmError::Disk(_))));
}

#[test]
fn dsm_run_formation_write_fault_surfaces() {
    // Aim a write fault inside DSM's run-formation write path: staging
    // takes ceil(600/8) = 75 write ops, so op 80 lands in formation.
    let data = records(600, 8);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = FaultyDiskArray::new(inner, FaultPlan::write(80));
    let input = write_unsorted_stripes(&mut a, &data).unwrap();
    let result = DsmSorter::default().sort(&mut a, &input);
    assert!(
        matches!(result, Err(DsmError::Disk(_))),
        "formation write fault must surface, got {result:?}"
    );
}

#[test]
fn alloc_fault_is_surfaced_not_panicked() {
    // Regression: a fault during alloc_contiguous (which backs every run
    // allocation) must propagate as an error through both sorters.
    let data = records(500, 9);
    for ordinal in [0, 5, 50] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = FaultyDiskArray::new(inner, FaultPlan::alloc(ordinal));
        match write_unsorted_input(&mut a, &data) {
            Err(SrmError::Disk(_)) => continue, // staging's own alloc hit it
            Err(other) => panic!("unexpected error class: {other:?}"),
            Ok(input) => {
                let result = SrmSorter::default().sort(&mut a, &input);
                assert!(
                    matches!(result, Err(SrmError::Disk(_))),
                    "alloc fault at ordinal {ordinal} must surface as an error"
                );
            }
        }
    }
}

#[test]
fn permanent_fault_kills_disk_for_all_later_ops() {
    // After a permanent fault, every subsequent op touching that disk
    // fails — a retry wrapper cannot resurrect it.
    let data = records(400, 10);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let faulty = FaultyDiskArray::new(inner, FaultModel::none().kill_at(FaultOp::Read, 4));
    let mut a = RetryingDiskArray::new(faulty, RetryPolicy::default());
    let input = write_unsorted_input(&mut a, &data).unwrap();
    let result = SrmSorter::default().sort(&mut a, &input);
    assert!(matches!(result, Err(SrmError::Disk(PdiskError::Fault { .. }))));
    assert_eq!(a.retries(), (0, 0), "permanent faults must not be retried");
}

#[test]
fn transient_faults_fully_absorbed_by_retry_wrapper() {
    // A 5% transient fault rate on both reads and writes: with the retry
    // wrapper the sort succeeds, output is correct, and the retries show
    // up in IoStats without polluting the logical op counts.
    let data = records(800, 11);
    let mut clean: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut clean, &data).unwrap();
    clean.reset_stats();
    let (clean_run, _) = SrmSorter::default().sort(&mut clean, &input).unwrap();
    let clean_reads = clean.stats().read_ops; // before the verification read
    let want = read_run(&mut clean, &clean_run).unwrap();

    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let faulty = FaultyDiskArray::new(inner, FaultModel::random(0xFA01).with_rate(0.05));
    let mut a = RetryingDiskArray::new(faulty, RetryPolicy::default());
    let input = write_unsorted_input(&mut a, &data).unwrap();
    a.reset_stats();
    let (run, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
    let stats = a.stats();
    assert!(stats.total_retries() > 0, "5% fault rate must trigger retries");
    // Logical op counts (successful schedule ops, retries excluded) are
    // unchanged by the fault model: `read_ops` counts only what the
    // schedule asked for, `read_retries` accounts for the recovery work.
    assert_eq!(stats.read_ops, clean_reads, "transient faults must not change the schedule");
    let got = read_run(&mut a, &run).unwrap();
    assert_eq!(got, want, "faulty-but-retried sort must match the clean sort");
}

#[test]
fn failure_then_fresh_array_still_sorts() {
    // A failed sort must not poison anything global: a new array on the
    // same process sorts fine.
    let data = records(500, 4);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = FaultyDiskArray::new(inner, FaultPlan::read(3));
    let input = write_unsorted_input(&mut a, &data).unwrap();
    assert!(SrmSorter::default().sort(&mut a, &input).is_err());

    let mut fresh: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut fresh, &data).unwrap();
    let (run, _) = SrmSorter::default().sort(&mut fresh, &input).unwrap();
    let out = srm_core::read_run(&mut fresh, &run).unwrap();
    assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
}

// ---------------------------------------------------------------------------
// Retry-classification audit: the retry wrapper must spin only on faults
// that retrying can actually fix.  Permanent faults, ENOSPC, and failed
// durability barriers are *not* in that set — retrying a full disk burns
// the fault budget without progress, and retrying past a failed fsync is
// the classic fsyncgate data-loss bug.  (The chaos campaign's planted
// bug is exactly this audit's first assertion, inverted.)
// ---------------------------------------------------------------------------

#[test]
fn no_space_is_never_retried() {
    let data = records(400, 20);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    // Staging writes land before the sort; place the fill inside the sort.
    let input_writes = 400u64.div_ceil(4).div_ceil(2);
    let faulty = FaultyDiskArray::new(
        inner,
        FaultModel::none().fill_at(FaultOp::Write, input_writes + 10),
    );
    let mut a = RetryingDiskArray::new(faulty, RetryPolicy::default());
    let input = write_unsorted_input(&mut a, &data).unwrap();
    let result = SrmSorter::default().sort(&mut a, &input);
    match result {
        Err(SrmError::Disk(e @ PdiskError::Fault { kind, .. })) => {
            assert_eq!(kind, pdisk::FaultKind::NoSpace, "typed ENOSPC: {e}");
            assert!(!e.is_retryable(), "ENOSPC must classify as non-retryable");
        }
        other => panic!("full disk must surface as the typed no-space fault, got {other:?}"),
    }
    assert_eq!(a.retries(), (0, 0), "a full disk must never be retried");
    let (_, _, allocs) = a.counters();
    assert_eq!(allocs.attempted, 0, "no allocation retries on ENOSPC either");
}

#[test]
fn failed_sync_is_never_retried_and_surfaces_typed() {
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let faulty = FaultyDiskArray::new(inner, FaultModel::none().fail_sync_at(0));
    let mut a = RetryingDiskArray::new(faulty, RetryPolicy::default());
    let err = a.sync().expect_err("scripted sync failure must surface");
    match &err {
        PdiskError::Fault { op, .. } => {
            // The *op* alone makes it non-retryable, whatever the kind:
            // even a "transient" barrier failure cannot be re-issued.
            assert_eq!(*op, FaultOp::Sync);
        }
        other => panic!("expected a typed sync fault, got {other}"),
    }
    assert!(
        !err.is_retryable(),
        "a failed durability barrier must never be retried: the kernel's \
         dirty state is unknown (fsyncgate)"
    );
    assert_eq!(a.retries(), (0, 0));
    // The barrier is one-shot even at the injection layer: a second sync
    // on the (simulated) reopened fd succeeds.
    a.sync().expect("the failure does not stick to the device");
}

#[test]
fn retry_classification_matrix() {
    use pdisk::FaultKind::{NoSpace, Permanent, Transient};
    use FaultOp::{Alloc, Read, Sync, Write};
    let fault = |kind, op| PdiskError::Fault { kind, op, disk: None };
    // Retryable: transient faults on data-path ops, plus OS-level I/O
    // errors and checksum corruption (a reread may see good bytes).
    for e in [
        fault(Transient, Read),
        fault(Transient, Write),
        fault(Transient, Alloc),
        PdiskError::Io(std::io::Error::other("simulated EIO")),
    ] {
        assert!(e.is_retryable(), "{e} should be retryable");
    }
    // Never retryable: permanent faults (dead disk), ENOSPC on any op,
    // and *any* fault on the durability barrier — including a "transient"
    // one, because a failed fsync's side effects are unobservable.
    for e in [
        fault(Permanent, Read),
        fault(Permanent, Write),
        fault(NoSpace, Write),
        fault(NoSpace, Alloc),
        fault(NoSpace, Sync),
        fault(Transient, Sync),
        fault(Permanent, Sync),
    ] {
        assert!(!e.is_retryable(), "{e} must not be retryable");
    }
}

#[test]
fn freed_space_clears_the_no_space_fault() {
    // ENOSPC is non-retryable but *repairable*: after the operator frees
    // space (`free_space`), the same array accepts writes again — the
    // chaos engine's FreeSpace repair path in miniature.
    let data = records(300, 21);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = FaultyDiskArray::new(inner, FaultModel::none().fill_at(FaultOp::Write, 0));
    let err = write_unsorted_input(&mut a, &data).expect_err("disk is full from write 0");
    assert!(
        matches!(
            err,
            SrmError::Disk(PdiskError::Fault { kind: pdisk::FaultKind::NoSpace, .. })
        ),
        "typed: {err}"
    );
    let full: Vec<_> = a.model().full_disks().collect();
    assert_eq!(full.len(), 1, "the filled disk is tracked");
    for d in full {
        a.model_mut().free_space(d);
    }
    assert_eq!(a.model().full_disks().count(), 0);
    let input = write_unsorted_input(&mut a, &data).expect("freed space accepts writes");
    let (run, _) = SrmSorter::default().sort(&mut a, &input).expect("sort completes");
    let out = read_run(&mut a, &run).unwrap();
    assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
}
