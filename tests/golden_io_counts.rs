//! Golden regression tests: exact I/O counts for fixed seeds.
//!
//! The whole repository's claims rest on counted parallel operations, so
//! the counts themselves are pinned here.  If an intentional scheduler
//! change shifts them, these constants must be re-derived (and the change
//! explained); an *unintentional* shift is a regression in the schedule.
//!
//! Every golden run is also replayed through `modelcheck`: the pinned
//! counts are only meaningful if the schedule that produced them obeys
//! the model rules, so a golden trace must be checker-clean.

use modelcheck::check_trace;
use pdisk::trace::TracingDiskArray;
use pdisk::{DiskArray as _, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::simulator::{MergeSim, SimInput, SimPlacement};
use srm_core::sort::write_unsorted_input;
use srm_core::SrmSorter;

#[test]
fn golden_sort_counts() {
    let geom = Geometry::new(2, 4, 96).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xD00D);
    let data: Vec<U64Record> = (0..3000).map(|_| U64Record(rng.random())).collect();
    let mut a = TracingDiskArray::new(MemDiskArray::<U64Record>::new(geom));
    let input = write_unsorted_input(&mut a, &data).unwrap();
    a.reset_stats();
    let (_, report) = SrmSorter::default().sort(&mut a, &input).unwrap();
    let summary = check_trace(geom, &a.take_trace())
        .unwrap_or_else(|v| panic!("golden sort trace violates the model: {v}"));
    assert!(summary.sched_reads > 0, "{summary:?}");

    assert_eq!(report.merge_order, 6);
    assert_eq!(report.runs_formed, 63);
    assert_eq!(report.merge_passes, 3);
    assert_eq!(report.merges, 14);
    // Pinned counts (derived from this implementation at a fixed seed,
    // under the vendored SplitMix64 `SmallRng` — see vendor/README.md).
    // Note the physics in the numbers: 3000 records = 750 blocks; four
    // writes of the file (formation + 3 merge passes) at perfect
    // parallelism = 1500 write ops / 3000 blocks; merge reads at D = 2
    // with zero flushes = 1155 ops for 2250 blocks.
    let io = report.io;
    assert_eq!(
        (io.read_ops, io.write_ops, io.blocks_read, io.blocks_written),
        (1530, 1500, 3000, 3000),
        "I/O trace changed: {io:?}"
    );
    assert_eq!(report.schedule.total_reads(), 1155, "{:?}", report.schedule);
    assert_eq!(report.schedule.blocks_flushed, 0);
}

#[test]
fn golden_simulator_counts() {
    use modelcheck::sim::{check_sim_trace, SimCheckInput, SimEvent, SimRunLayout};
    use srm_core::simulator::TraceEvent as SimTrace;

    let mut rng = SmallRng::seed_from_u64(0xFEED);
    let input = SimInput::average_case(20, 100, 64, 5, SimPlacement::Random, &mut rng);
    let (stats, trace) = MergeSim::run_traced(&input).unwrap();
    assert_eq!(input.total_blocks(), 2000);
    let check_input = SimCheckInput {
        d: input.d,
        runs: input
            .runs
            .iter()
            .map(|r| SimRunLayout {
                start_disk: r.start_disk,
                min_keys: r.min_keys.clone(),
            })
            .collect(),
    };
    let events: Vec<SimEvent> = trace
        .iter()
        .map(|e| match e {
            SimTrace::InitRead { runs } => SimEvent::InitRead { runs: runs.clone() },
            SimTrace::ParRead { targets, flushed } => SimEvent::ParRead {
                targets: targets.clone(),
                flushed: flushed.clone(),
            },
            SimTrace::Depleted { run, idx } => SimEvent::Depleted { run: *run, idx: *idx },
        })
        .collect();
    check_sim_trace(&check_input, &events)
        .unwrap_or_else(|v| panic!("golden simulator schedule violates the model: {v}"));
    assert_eq!(
        (
            stats.schedule.init_reads,
            stats.schedule.par_reads,
            stats.schedule.flush_ops,
            stats.schedule.blocks_read,
        ),
        // Derived under the vendored SplitMix64 SmallRng (vendor/README.md).
        (8, 400, 3, 2007),
        "simulated schedule changed: {:?}",
        stats.schedule
    );
}
