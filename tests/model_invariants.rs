//! Mutation tests for the model checker: take the trace of a *real*
//! parity-protected SRM sort, corrupt exactly one event the way a buggy
//! scheduler or storage layer would, and require `modelcheck` to reject
//! it with the right typed violation at (or provably downstream of) the
//! corrupted event.
//!
//! These are the "does the alarm actually ring" tests.  The clean-trace
//! tests in `crates/modelcheck/tests/` prove the checker accepts correct
//! sorts; these prove it is not accepting them vacuously.

use modelcheck::{check_trace, Violation, ViolationKind};
use pdisk::trace::{Tagged, TraceEvent, TraceFlush, TracingDiskArray};
use pdisk::{DiskId, Geometry, MemDiskArray, ParityDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::SrmSorter;
use std::sync::OnceLock;

const D: usize = 4;

/// One checker-clean trace of a flush-heavy parity sort, shared by all
/// mutations (the sort is deterministic, so computing it once is safe).
fn clean_trace() -> &'static (Geometry, Vec<Tagged>) {
    static TRACE: OnceLock<(Geometry, Vec<Tagged>)> = OnceLock::new();
    TRACE.get_or_init(|| {
        let geom = Geometry::new(D, 8, 256).unwrap();
        let parity = ParityDiskArray::new(MemDiskArray::<U64Record>::new(geom)).unwrap();
        let mut a = TracingDiskArray::new(parity);
        let mut rng = SmallRng::seed_from_u64(0xBEEF);
        let data: Vec<U64Record> = (0..12_000).map(|_| U64Record(rng.random())).collect();
        let input = write_unsorted_input(&mut a, &data).unwrap();
        SrmSorter::default().sort(&mut a, &input).unwrap();
        let trace = a.take_trace();
        let summary = check_trace(geom, &trace).unwrap_or_else(|v| panic!("not clean: {v}"));
        assert!(
            summary.flushed_blocks > 0,
            "mutations need a trace that exercises rule 2c: {summary:?}"
        );
        (geom, trace)
    })
}

/// Apply `mutate` to the first event it accepts and return the mutated
/// trace plus the seq of the event that was changed.
fn mutate_first(
    trace: &[Tagged],
    mut mutate: impl FnMut(&mut TraceEvent) -> bool,
) -> (Vec<Tagged>, u64) {
    let mut out = trace.to_vec();
    let mut hit = None;
    for e in &mut out {
        if mutate(&mut e.event) {
            hit = Some(e.seq);
            break;
        }
    }
    (out, hit.expect("no event accepted the mutation"))
}

fn expect_violation(geom: Geometry, trace: &[Tagged]) -> Violation {
    match check_trace(geom, trace) {
        Ok(s) => panic!("mutated trace passed the checker: {s:?}"),
        Err(v) => *v,
    }
}

/// Fetching two blocks from one disk in a single parallel I/O breaks
/// the model's defining constraint (one block per disk per op).
#[test]
fn two_blocks_from_one_disk_is_rejected() {
    let (geom, trace) = clean_trace();
    let (mutated, seq) = mutate_first(trace, |e| match e {
        TraceEvent::Read { addrs } if addrs.len() >= 2 => {
            addrs[1].disk = addrs[0].disk;
            true
        }
        _ => false,
    });
    let v = expect_violation(*geom, &mutated);
    assert_eq!(v.seq, seq, "{v}");
    assert!(
        matches!(v.kind, ViolationKind::DuplicateDiskInOp { op: "read", .. }),
        "{v}"
    );
}

/// A scheduler whose internal buffer ledger drifts from the replayed
/// pool contents is over- (or under-) committing its `M/B` budget.
#[test]
fn buffer_ledger_drift_is_rejected() {
    let (geom, trace) = clean_trace();
    let (mutated, seq) = mutate_first(trace, |e| match e {
        TraceEvent::SchedRead { fset_len, .. } => {
            *fset_len += 1;
            true
        }
        _ => false,
    });
    let v = expect_violation(*geom, &mutated);
    assert_eq!(v.seq, seq, "{v}");
    assert!(
        matches!(v.kind, ViolationKind::OccupancyTagMismatch { pool: "M_R", .. }),
        "{v}"
    );
}

/// Rule 2c may only evict blocks that are actually resident in `M_R` —
/// claiming to flush a block that is still being fetched is how a buggy
/// flush picks a non-farthest-future victim.
#[test]
fn flushing_an_unbuffered_block_is_rejected() {
    let (geom, trace) = clean_trace();
    let (mutated, seq) = mutate_first(trace, |e| match e {
        TraceEvent::SchedRead { targets, flushed, .. } if !flushed.is_empty() => {
            // Redirect the flush at one of this very read's fetch
            // targets: a real block, but in flight rather than in M_R.
            let t = &targets[0];
            flushed[0] = TraceFlush {
                run: t.run,
                idx: t.idx,
                key: t.key,
                disk: t.disk,
            };
            true
        }
        _ => false,
    });
    let v = expect_violation(*geom, &mutated);
    assert_eq!(v.seq, seq, "{v}");
    assert!(
        matches!(
            v.kind,
            ViolationKind::FlushedBlockNotBuffered { .. }
                | ViolationKind::FlushNotFarthestFuture { .. }
        ),
        "{v}"
    );
}

/// Rotating parity must place stripe `s`'s parity on disk `s mod D`;
/// anything else colocates data and parity and loses single-failure
/// tolerance.
#[test]
fn misplaced_parity_is_rejected() {
    let (geom, trace) = clean_trace();
    let (mutated, seq) = mutate_first(trace, |e| match e {
        TraceEvent::ParityCommit { parity_disk, .. } => {
            *parity_disk = DiskId::from_mod(u64::from(parity_disk.0) + 1, D);
            true
        }
        _ => false,
    });
    let v = expect_violation(*geom, &mutated);
    assert_eq!(v.seq, seq, "{v}");
    assert!(
        matches!(v.kind, ViolationKind::ParityPlacementMismatch { .. }),
        "{v}"
    );
}

/// Output runs must be written as perfect cyclic stripes from their
/// (randomly drawn) start disk; a run that starts one disk off breaks
/// the write-parallelism guarantee of §3.
#[test]
fn non_striped_output_run_is_rejected() {
    let (geom, trace) = clean_trace();
    let (mutated, start_seq) = mutate_first(trace, |e| match e {
        TraceEvent::RunStart { start_disk } => {
            *start_disk = DiskId::from_mod(u64::from(start_disk.0) + 1, D);
            true
        }
        _ => false,
    });
    let v = expect_violation(*geom, &mutated);
    assert!(v.seq > start_seq, "violation must surface at the run's writes: {v}");
    assert!(
        matches!(v.kind, ViolationKind::RunWriteNotStriped { idx: 0, .. }),
        "{v}"
    );
}
