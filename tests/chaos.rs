//! Chaos campaign engine integration: composed-fault trials against
//! the local and dist targets, the planted-bug minimize/replay loop,
//! and the fsyncgate drill.
//!
//! These are the tier-2 drills behind `srm chaos`; CI's chaos-smoke
//! job runs the same campaigns through the CLI.

use srm_chaos::{
    replay, run_campaign, run_trial, CampaignConfig, ChaosEvent, ReproArtifact, Target,
};

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-chaos-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn local_cfg(name: &str, seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::new(Target::Local, seed, scratch(name));
    // Small but multi-pass: enough I/O that every event class has
    // ordinals to land on.
    cfg.records = 4_000;
    cfg.d = 4;
    cfg.b = 16;
    cfg.m = 512;
    cfg
}

#[test]
fn empty_schedule_trial_is_clean() {
    let cfg = local_cfg("empty", 1);
    std::fs::create_dir_all(&cfg.scratch).unwrap();
    let dir = cfg.scratch.join("t");
    let outcome = run_trial(&cfg, &[], &dir).expect("harness ok");
    assert_eq!(outcome.violation, None, "fault-free trial must be clean");
    assert_eq!(outcome.attempts, 1);
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

#[test]
fn local_campaign_has_zero_violations() {
    let mut cfg = local_cfg("local-campaign", 7);
    cfg.trials = 12;
    let report = run_campaign(&cfg, |_, _| {}).expect("campaign runs");
    assert_eq!(report.trials, 12);
    assert!(
        report.violations.is_empty(),
        "composed schedules must all recover: {:?}",
        report
            .violations
            .iter()
            .map(|v| (v.trial, v.violation.clone(), v.schedule.clone()))
            .collect::<Vec<_>>()
    );
    // Some trials must actually have exercised recovery, or the
    // campaign is vacuous.
    assert!(
        report.attempts > u64::from(report.trials),
        "no trial ever needed recovery: attempts = {}",
        report.attempts
    );
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

#[test]
fn dist_campaign_has_zero_violations() {
    let mut cfg = CampaignConfig::new(Target::Dist, 7, scratch("dist-campaign"));
    cfg.trials = 6;
    cfg.records = 3_000;
    cfg.shards = 3;
    cfg.d = 2;
    cfg.b = 8;
    cfg.m = 256;
    let report = run_campaign(&cfg, |_, _| {}).expect("campaign runs");
    assert_eq!(report.trials, 6);
    assert!(
        report.violations.is_empty(),
        "dist schedules are survivable by construction: {:?}",
        report
            .violations
            .iter()
            .map(|v| (v.trial, v.violation.clone(), v.schedule.clone()))
            .collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

/// The planted retry-classification bug (ENOSPC relabelled transient)
/// must be caught by the campaign, shrink to the single `disk-full`
/// event, and replay identically — twice — from the written artifact.
#[test]
fn planted_bug_is_caught_minimized_and_replays_identically() {
    let mut cfg = local_cfg("planted", 7);
    cfg.plant_bug = true;
    cfg.trials = 20;
    let report = run_campaign(&cfg, |_, _| {}).expect("campaign runs");
    let caught: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.violation.code() == "wedged")
        .collect();
    assert!(
        !caught.is_empty(),
        "20 trials with the planted bug armed must hit a disk-full schedule"
    );
    let rec = caught[0];
    assert!(
        rec.events_min <= 5,
        "minimizer left {} events: {:?}",
        rec.events_min,
        rec.schedule
    );
    assert!(
        rec.schedule
            .iter()
            .all(|e| matches!(e, ChaosEvent::DiskFull { .. })),
        "minimal schedule should be the disk-full culprit alone: {:?}",
        rec.schedule
    );

    // Replay the artifact twice: same violation, byte-for-byte same code.
    let path = rec.artifact.as_ref().expect("artifact written");
    let artifact = ReproArtifact::load(path).expect("artifact parses");
    assert_eq!(artifact.violation, "wedged");
    assert_eq!(artifact.events, rec.schedule);
    for round in 0..2 {
        let outcome = replay(&artifact, &cfg.scratch.join("replays"), None).expect("replay runs");
        let v = outcome
            .violation
            .unwrap_or_else(|| panic!("replay round {round} did not reproduce"));
        assert_eq!(v.code(), "wedged", "round {round} diverged: {v}");
    }

    // The same schedule with the bug disarmed recovers cleanly: the
    // violation is the misclassification, not the ENOSPC itself.
    let mut fixed = cfg.clone();
    fixed.plant_bug = false;
    let dir = fixed.scratch.join("disarmed");
    let outcome = run_trial(&fixed, &rec.schedule, &dir).expect("harness ok");
    assert_eq!(
        outcome.violation, None,
        "with correct classification the same schedule must recover"
    );
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

/// fsyncgate drill: a failed durability barrier immediately followed
/// by a crash must recover byte-identically from the previous (`.prev`)
/// manifest generation, checker-clean.
#[test]
fn failed_sync_then_crash_recovers_from_prev_generation() {
    let cfg = local_cfg("fsyncgate", 11);
    std::fs::create_dir_all(&cfg.scratch).unwrap();
    for sync_ordinal in 0..3 {
        for crash_point in [40, 90, 140] {
            let events = vec![
                ChaosEvent::SyncFail {
                    ordinal: sync_ordinal,
                },
                ChaosEvent::CrashAt { point: crash_point },
            ];
            let dir = cfg
                .scratch
                .join(format!("sync{sync_ordinal}-crash{crash_point}"));
            let outcome = run_trial(&cfg, &events, &dir).expect("harness ok");
            assert_eq!(
                outcome.violation, None,
                "sync-fail #{sync_ordinal} + crash@{crash_point} must recover"
            );
            assert!(outcome.attempts >= 2, "the drill must actually interrupt");
        }
    }
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

/// Composed single-events: each event class alone recovers (the
/// campaign covers compositions; this pins each injector's baseline).
#[test]
fn each_event_class_recovers_alone() {
    let cfg = local_cfg("singles", 13);
    std::fs::create_dir_all(&cfg.scratch).unwrap();
    let singles: Vec<(&str, ChaosEvent)> = vec![
        (
            "transient-read",
            ChaosEvent::Transient {
                op: pdisk::FaultOp::Read,
                ordinal: 5,
            },
        ),
        ("corrupt", ChaosEvent::CorruptRead { ordinal: 9 }),
        ("disk-full", ChaosEvent::DiskFull { ordinal: 20 }),
        ("sync-fail", ChaosEvent::SyncFail { ordinal: 1 }),
        ("crash", ChaosEvent::CrashAt { point: 77 }),
        ("kill-disk", ChaosEvent::KillDisk { disk: 2, pass: 1 }),
        ("interrupt", ChaosEvent::Interrupt { pass: 1 }),
    ];
    for (name, ev) in singles {
        let dir = cfg.scratch.join(name);
        let outcome = run_trial(&cfg, std::slice::from_ref(&ev), &dir).expect("harness ok");
        assert_eq!(outcome.violation, None, "{name} must recover: {ev}");
    }
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

/// A dist trial with ENOSPC on a shard fails with the typed shard
/// error (never a panic, never a hang) — the unsurvivable injection's
/// contract, which is why the generator excludes it.
#[test]
fn dist_fill_write_fails_typed_not_wedged() {
    let mut cfg = CampaignConfig::new(Target::Dist, 3, scratch("dist-fill"));
    cfg.records = 2_000;
    cfg.shards = 2;
    cfg.d = 2;
    cfg.b = 8;
    cfg.m = 256;
    std::fs::create_dir_all(&cfg.scratch).unwrap();
    let spec = cfg.job_spec();
    let mut dc = srm_dist::DistConfig::new(cfg.shards);
    dc.fill_write = Some((1, 4));
    let err = srm_dist::distsort(&spec, &dc, &cfg.scratch.join("world"))
        .expect_err("a full shard volume cannot be survived");
    match err {
        srm_dist::DistError::Shard { shard, msg } => {
            assert_eq!(shard, 1);
            assert!(
                msg.contains("no-space"),
                "shard error must carry the no-space taxonomy: {msg}"
            );
        }
        other => panic!("expected the typed shard error, got: {other}"),
    }
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}
