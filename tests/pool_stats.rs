//! Buffer-pool recycling regression: the merge loop must actually hit
//! the pool.  A steady-state pipelined sort on the file backend (the
//! headline bench configuration, shrunk to test scale) has to serve the
//! overwhelming majority of buffer draws from the pool, and after the
//! first merge pass has warmed it, allocate **nothing** — zero fresh
//! draws of either kind.  This pins the allocation-elision half of the
//! zero-delay fast path: a regression that silently reintroduces
//! per-block allocations fails here, not in a wall-clock bench.

use pdisk::{DiskArray, FileDiskArray, Geometry, PoolStats, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::SrmSorter;
use std::cell::Cell;

#[test]
fn steady_state_merge_runs_out_of_the_pool() {
    // The headline geometry (D=8, B=16, M=1792 records) at reduced
    // record count: enough for multiple merge passes, fast enough for CI.
    let geom = Geometry::new(8, 16, 1792).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xB0F0);
    let records: Vec<U64Record> = (0..40_000).map(|_| U64Record(rng.random())).collect();

    let dir = std::env::temp_dir().join(format!("srm-poolstats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut a = FileDiskArray::<U64Record>::create(geom, &dir).unwrap();
    let input = write_unsorted_input(&mut a, &records).unwrap();

    // Snapshot the pool after merge pass 1: by then one full merge has
    // cycled every buffer class through the pool at the pass's R.
    let warm: Cell<Option<PoolStats>> = Cell::new(None);
    let (sorted, report) = SrmSorter::default()
        .with_pipeline(true)
        .with_read_ahead(3)
        .sort_observed(&mut a, &input, None, |pass, a: &mut FileDiskArray<U64Record>| {
            if pass == 1 {
                warm.set(Some(a.buffer_pool().unwrap().stats()));
            }
            Ok(())
        })
        .unwrap();
    assert!(report.merge_passes >= 2, "need a multi-pass workload to test steady state");
    assert_eq!(sorted.records, records.len() as u64);

    let warm = warm.get().expect("observer saw pass 1");
    let end = a.buffer_pool().unwrap().stats();

    // Steady state after warm-up: zero fresh allocations of either kind.
    assert_eq!(
        end.misses(),
        warm.misses(),
        "merge passes after warm-up must allocate nothing: warm {warm:?}, end {end:?}"
    );

    // Whole-sort hit rates (warm-up included) stay above a fixed floor.
    let rec_rate = end.record_hit_rate().expect("record draws happened");
    let byte_rate = end.byte_hit_rate().expect("byte draws happened");
    assert!(rec_rate >= 0.85, "record hit rate {rec_rate:.4} below floor (stats {end:?})");
    assert!(byte_rate >= 0.99, "byte hit rate {byte_rate:.4} below floor (stats {end:?})");

    let _ = std::fs::remove_dir_all(&dir);
}
