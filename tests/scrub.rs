//! Scrubber integration tests: the parity-backed scrub pass must heal
//! injected latent corruption with *exact* repair accounting, even while
//! the array is already degraded (one disk permanently dead).

use pdisk::{
    DiskArray, Geometry, MemDiskArray, ParityDiskArray, ScrubOutcome, StripedRun, U64Record,
};
use srm_core::{scrub_runs, RunWriter};

const D: usize = 4;
const B: usize = 4;

fn stack() -> (ParityDiskArray<U64Record, MemDiskArray<U64Record>>, Geometry) {
    let geom = Geometry::new(D, B, 8 * D * B).unwrap();
    let inner = MemDiskArray::new(geom);
    (ParityDiskArray::new(inner).unwrap(), geom)
}

fn write_run(
    array: &mut ParityDiskArray<U64Record, MemDiskArray<U64Record>>,
    geom: Geometry,
    keys: std::ops::Range<u64>,
) -> StripedRun {
    let mut w = RunWriter::new(geom, pdisk::DiskId(0));
    for k in keys {
        w.push(array, U64Record(k)).unwrap();
    }
    w.finish(array).unwrap()
}

/// The ISSUE scenario: one dead disk *and* one corrupt block on a
/// survivor, with exact repair accounting.  Rotating parity can only
/// repair a survivor's block if its stripe does not also depend on the
/// dead disk (classic RAID-5: one failure per stripe).  A run whose
/// block count is not a multiple of `D` ends in a partial stripe the
/// trailing disks never wrote — corrupt the block there, kill a disk
/// outside that stripe, and the scrub must heal it exactly once while
/// the dead disk's own blocks verify clean via reconstructability.
#[test]
fn scrub_repairs_injected_corruption_in_degraded_mode() {
    let (mut a, geom) = stack();
    // 13 blocks = 3 full stripe rows + a partial row holding one block.
    let run = write_run(&mut a, geom, 0..52);
    assert_eq!(run.len_blocks, 13);

    // The last block sits alone in its stripe (plus parity).
    let victim = run.addr_of(12);
    let vphys = a.physical_addr(victim);
    let parity_home = pdisk::DiskId((vphys.offset % D as u64) as u32);

    // Kill a disk that holds neither the victim nor its stripe's parity:
    // the victim's stripe then has no dependence on the dead disk.
    let dead = (0..D as u32)
        .map(pdisk::DiskId)
        .find(|&dd| dd != victim.disk && dd != parity_home)
        .unwrap();
    a.fail_disk(dead).unwrap();
    a.inner_mut().corrupt_block(vphys).unwrap();

    let report = scrub_runs(&mut a, std::slice::from_ref(&run)).unwrap();
    assert_eq!(report.blocks_checked, 13, "{report}");
    assert_eq!(report.repaired, 1, "exactly the injected corruption: {report}");
    assert_eq!(report.unrepairable, 0, "{report:?}");
    assert_eq!(report.clean, 12, "{report}");
    assert!(report.is_healthy());

    // The heal is durable: a second scrub finds nothing to do, and the
    // run still reads back as written despite the dead disk.
    let again = scrub_runs(&mut a, std::slice::from_ref(&run)).unwrap();
    assert_eq!(again.clean, 13, "{again}");
    let keys: Vec<u64> = srm_core::read_run(&mut a, &run)
        .unwrap()
        .iter()
        .map(|r| r.0)
        .collect();
    assert_eq!(keys, (0..52).collect::<Vec<u64>>());
}

/// The flip side of degraded mode: corruption on a survivor whose stripe
/// *does* span the dead disk is a double failure — the scrub must report
/// it unrepairable (with a located failure line), not abort, and not
/// "heal" it with garbage.
#[test]
fn degraded_scrub_reports_a_double_failure_as_unrepairable() {
    let (mut a, geom) = stack();
    let run = write_run(&mut a, geom, 0..64); // 16 blocks: every stripe full
    a.fail_disk(pdisk::DiskId(2)).unwrap();

    // Any survivor block's stripe includes the dead disk's data here.
    let victim = (0..run.len_blocks)
        .map(|i| run.addr_of(i))
        .find(|addr| addr.disk != pdisk::DiskId(2))
        .unwrap();
    let vphys = a.physical_addr(victim);
    a.inner_mut().corrupt_block(vphys).unwrap();

    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.blocks_checked, 16, "{report}");
    assert_eq!(report.repaired, 0, "{report}");
    // The corrupt survivor is lost, and the dead disk's block in that
    // same stripe can no longer be reconstructed either.
    assert!(report.unrepairable >= 1, "{report}");
    assert_eq!(
        report.failures.len() as u64,
        report.unrepairable,
        "{report:?}"
    );
    assert!(!report.is_healthy());
}

/// Two corrupt frames in the *same* parity stripe exceed what rotating
/// parity can reconstruct even with every disk alive: scrub must report
/// both unrepairable rather than cascade garbage.
#[test]
fn scrub_reports_unrepairable_stripe_with_exact_counts() {
    let (mut a, geom) = stack();
    let run = write_run(&mut a, geom, 0..64);

    // Stripe 0's parity lives on disk 0 under the rotating layout, so
    // logical offset 0 of disks 1 and 2 are physical stripe-mates.
    let (m1, m2) = (a.physical_addr(run.addr_of(1)), a.physical_addr(run.addr_of(2)));
    assert_eq!(m1.offset, m2.offset, "test needs two frames in one stripe");
    a.inner_mut().corrupt_block(m1).unwrap();
    a.inner_mut().corrupt_block(m2).unwrap();

    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.blocks_checked, 16, "{report}");
    assert_eq!(report.unrepairable, 2, "{report:?}");
    assert_eq!(report.repaired, 0, "{report}");
    assert_eq!(report.failures.len(), 2, "{report:?}");
    assert!(!report.is_healthy());
}

/// Without a parity layer the scrubber is detection-only: corruption is
/// reported unrepairable, never silently "fixed".
#[test]
fn scrub_on_a_plain_array_detects_but_cannot_heal() {
    let geom = Geometry::new(D, B, 8 * D * B).unwrap();
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let mut w = RunWriter::new(geom, pdisk::DiskId(0));
    for k in 0..64u64 {
        w.push(&mut a, U64Record(k)).unwrap();
    }
    let run = w.finish(&mut a).unwrap();
    a.corrupt_block(run.addr_of(5)).unwrap();

    assert!(matches!(
        a.scrub_block(run.addr_of(5)).unwrap(),
        ScrubOutcome::Unrepairable(_)
    ));
    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.unrepairable, 1, "{report}");
    assert_eq!(report.clean, 15, "{report}");
    assert!(!report.is_healthy());
}

/// ISSUE-10 satellite — chaos × scrubber: a sort is crashed at a pass
/// boundary (the chaos engine's CrashAt in miniature), latent corruption
/// lands on checkpointed live runs while the array is "powered off", a
/// scrub pass over the manifest's runs heals every corrupt block, and
/// the resumed sort completes byte-identical to the failure-free run.
#[test]
fn chaos_crash_plus_latent_corruption_scrub_heals_then_resume_is_byte_identical() {
    use srm_core::sort::write_unsorted_input;
    use srm_core::{SortManifest, SrmError, SrmSorter};

    let geom = Geometry::new(D, B, 8 * D * B).unwrap();
    let data: Vec<U64Record> = (0..2400).map(|k| U64Record(k * 2_654_435_761 % 100_000)).collect();

    // The failure-free oracle.
    let mut clean: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let input = write_unsorted_input(&mut clean, &data).unwrap();
    let (oracle_run, _) = SrmSorter::default().sort(&mut clean, &input).unwrap();
    let want: Vec<u64> = srm_core::read_run(&mut clean, &oracle_run)
        .unwrap()
        .iter()
        .map(|r| r.0)
        .collect();

    // Session 1 on a parity array: crash right after pass 1's checkpoint.
    let dir = std::env::temp_dir().join(format!("srm-chaos-scrub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("sort.manifest");
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let mut a = ParityDiskArray::new(inner).unwrap();
    let input = write_unsorted_input(&mut a, &data).unwrap();
    // The observer fires *before* each pass's checkpoint is journaled,
    // so crashing at pass 2 leaves a manifest recording pass 1: the
    // resume skips formation and the first merge pass.
    let result = SrmSorter::default().sort_observed(&mut a, &input, Some(&manifest), |pass, _| {
        if pass >= 2 {
            return Err(SrmError::Internal("chaos crash".into()));
        }
        Ok(())
    });
    assert!(result.is_err(), "session 1 crashes by schedule");
    let m = SortManifest::load_latest(&manifest).unwrap().expect("journaled");
    assert!(!m.runs.is_empty(), "live runs are checkpointed");

    // Bit-rot while down: corrupt one block in three distinct stripe
    // rows of the manifest's live runs (single failures, repairable).
    let mut corrupted_rows = std::collections::BTreeSet::new();
    let mut corrupted = 0u64;
    'outer: for run in &m.runs {
        for i in 0..run.len_blocks {
            let phys = a.physical_addr(run.addr_of(i));
            if corrupted_rows.insert(phys.offset) {
                a.inner_mut().corrupt_block(phys).unwrap();
                corrupted += 1;
                if corrupted == 3 {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(corrupted, 3, "enough checkpointed blocks to corrupt");

    // The scrub pass (what `srm scrub --parity` runs) heals all three.
    let report = scrub_runs(&mut a, &m.runs).unwrap();
    assert_eq!(report.repaired, 3, "every corrupt block healed: {report}");
    assert_eq!(report.unrepairable, 0, "{report:?}");
    assert!(report.is_healthy());

    // Session 2 resumes from the manifest on the healed array and the
    // output is byte-identical to the failure-free oracle.
    assert!(m.pass >= 1, "the checkpoint is mid-sort, so session 2 must resume");
    let (run, _) = SrmSorter::default()
        .sort_checkpointed(&mut a, &input, &manifest)
        .expect("resume completes");
    let got: Vec<u64> = srm_core::read_run(&mut a, &run)
        .unwrap()
        .iter()
        .map(|r| r.0)
        .collect();
    assert_eq!(got, want, "healed + resumed output must match the oracle");
    let _ = std::fs::remove_dir_all(&dir);
}
