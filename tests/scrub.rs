//! Scrubber integration tests: the parity-backed scrub pass must heal
//! injected latent corruption with *exact* repair accounting, even while
//! the array is already degraded (one disk permanently dead).

use pdisk::{
    DiskArray, Geometry, MemDiskArray, ParityDiskArray, ScrubOutcome, StripedRun, U64Record,
};
use srm_core::{scrub_runs, RunWriter};

const D: usize = 4;
const B: usize = 4;

fn stack() -> (ParityDiskArray<U64Record, MemDiskArray<U64Record>>, Geometry) {
    let geom = Geometry::new(D, B, 8 * D * B).unwrap();
    let inner = MemDiskArray::new(geom);
    (ParityDiskArray::new(inner).unwrap(), geom)
}

fn write_run(
    array: &mut ParityDiskArray<U64Record, MemDiskArray<U64Record>>,
    geom: Geometry,
    keys: std::ops::Range<u64>,
) -> StripedRun {
    let mut w = RunWriter::new(geom, pdisk::DiskId(0));
    for k in keys {
        w.push(array, U64Record(k)).unwrap();
    }
    w.finish(array).unwrap()
}

/// The ISSUE scenario: one dead disk *and* one corrupt block on a
/// survivor, with exact repair accounting.  Rotating parity can only
/// repair a survivor's block if its stripe does not also depend on the
/// dead disk (classic RAID-5: one failure per stripe).  A run whose
/// block count is not a multiple of `D` ends in a partial stripe the
/// trailing disks never wrote — corrupt the block there, kill a disk
/// outside that stripe, and the scrub must heal it exactly once while
/// the dead disk's own blocks verify clean via reconstructability.
#[test]
fn scrub_repairs_injected_corruption_in_degraded_mode() {
    let (mut a, geom) = stack();
    // 13 blocks = 3 full stripe rows + a partial row holding one block.
    let run = write_run(&mut a, geom, 0..52);
    assert_eq!(run.len_blocks, 13);

    // The last block sits alone in its stripe (plus parity).
    let victim = run.addr_of(12);
    let vphys = a.physical_addr(victim);
    let parity_home = pdisk::DiskId((vphys.offset % D as u64) as u32);

    // Kill a disk that holds neither the victim nor its stripe's parity:
    // the victim's stripe then has no dependence on the dead disk.
    let dead = (0..D as u32)
        .map(pdisk::DiskId)
        .find(|&dd| dd != victim.disk && dd != parity_home)
        .unwrap();
    a.fail_disk(dead).unwrap();
    a.inner_mut().corrupt_block(vphys).unwrap();

    let report = scrub_runs(&mut a, std::slice::from_ref(&run)).unwrap();
    assert_eq!(report.blocks_checked, 13, "{report}");
    assert_eq!(report.repaired, 1, "exactly the injected corruption: {report}");
    assert_eq!(report.unrepairable, 0, "{report:?}");
    assert_eq!(report.clean, 12, "{report}");
    assert!(report.is_healthy());

    // The heal is durable: a second scrub finds nothing to do, and the
    // run still reads back as written despite the dead disk.
    let again = scrub_runs(&mut a, std::slice::from_ref(&run)).unwrap();
    assert_eq!(again.clean, 13, "{again}");
    let keys: Vec<u64> = srm_core::read_run(&mut a, &run)
        .unwrap()
        .iter()
        .map(|r| r.0)
        .collect();
    assert_eq!(keys, (0..52).collect::<Vec<u64>>());
}

/// The flip side of degraded mode: corruption on a survivor whose stripe
/// *does* span the dead disk is a double failure — the scrub must report
/// it unrepairable (with a located failure line), not abort, and not
/// "heal" it with garbage.
#[test]
fn degraded_scrub_reports_a_double_failure_as_unrepairable() {
    let (mut a, geom) = stack();
    let run = write_run(&mut a, geom, 0..64); // 16 blocks: every stripe full
    a.fail_disk(pdisk::DiskId(2)).unwrap();

    // Any survivor block's stripe includes the dead disk's data here.
    let victim = (0..run.len_blocks)
        .map(|i| run.addr_of(i))
        .find(|addr| addr.disk != pdisk::DiskId(2))
        .unwrap();
    let vphys = a.physical_addr(victim);
    a.inner_mut().corrupt_block(vphys).unwrap();

    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.blocks_checked, 16, "{report}");
    assert_eq!(report.repaired, 0, "{report}");
    // The corrupt survivor is lost, and the dead disk's block in that
    // same stripe can no longer be reconstructed either.
    assert!(report.unrepairable >= 1, "{report}");
    assert_eq!(
        report.failures.len() as u64,
        report.unrepairable,
        "{report:?}"
    );
    assert!(!report.is_healthy());
}

/// Two corrupt frames in the *same* parity stripe exceed what rotating
/// parity can reconstruct even with every disk alive: scrub must report
/// both unrepairable rather than cascade garbage.
#[test]
fn scrub_reports_unrepairable_stripe_with_exact_counts() {
    let (mut a, geom) = stack();
    let run = write_run(&mut a, geom, 0..64);

    // Stripe 0's parity lives on disk 0 under the rotating layout, so
    // logical offset 0 of disks 1 and 2 are physical stripe-mates.
    let (m1, m2) = (a.physical_addr(run.addr_of(1)), a.physical_addr(run.addr_of(2)));
    assert_eq!(m1.offset, m2.offset, "test needs two frames in one stripe");
    a.inner_mut().corrupt_block(m1).unwrap();
    a.inner_mut().corrupt_block(m2).unwrap();

    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.blocks_checked, 16, "{report}");
    assert_eq!(report.unrepairable, 2, "{report:?}");
    assert_eq!(report.repaired, 0, "{report}");
    assert_eq!(report.failures.len(), 2, "{report:?}");
    assert!(!report.is_healthy());
}

/// Without a parity layer the scrubber is detection-only: corruption is
/// reported unrepairable, never silently "fixed".
#[test]
fn scrub_on_a_plain_array_detects_but_cannot_heal() {
    let geom = Geometry::new(D, B, 8 * D * B).unwrap();
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let mut w = RunWriter::new(geom, pdisk::DiskId(0));
    for k in 0..64u64 {
        w.push(&mut a, U64Record(k)).unwrap();
    }
    let run = w.finish(&mut a).unwrap();
    a.corrupt_block(run.addr_of(5)).unwrap();

    assert!(matches!(
        a.scrub_block(run.addr_of(5)).unwrap(),
        ScrubOutcome::Unrepairable(_)
    ));
    let report = scrub_runs(&mut a, &[run]).unwrap();
    assert_eq!(report.unrepairable, 1, "{report}");
    assert_eq!(report.clean, 15, "{report}");
    assert!(!report.is_healthy());
}
