//! Property-based tests: for *arbitrary* inputs and geometries, both
//! sorters emit a sorted permutation of their input, SRM's merge respects
//! its I/O lower bound, and the order-statistics sampler keeps its
//! structural invariants.

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::{
    DiskArray, FaultModel, FaultyDiskArray, Geometry, MemDiskArray, RetryPolicy,
    RetryingDiskArray, U64Record,
};
use proptest::collection::vec;
use proptest::prelude::*;
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, RunFormation, SrmConfig, SrmSorter};

/// Small but varied machine shapes.
fn geometries() -> impl Strategy<Value = Geometry> {
    (1usize..=5, 1usize..=6, 6usize..=40).prop_map(|(d, b, mem_blocks)| {
        // Enough memory for both sorters: SRM needs
        // (M/B − 4D)·B ≥ 2(2B + D) for a merge order of at least 2, and
        // DSM needs M/B ≥ 2D·(R+1) for order ≥ 2.
        let srm_min = 4 * d + 5 + (2 * d).div_ceil(b);
        let dsm_min = 2 * d * 3;
        let blocks = mem_blocks.max(srm_min).max(dsm_min);
        Geometry::new(d, b, blocks * b).expect("valid geometry")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn srm_sorts_arbitrary_inputs(
        geom in geometries(),
        keys in vec(any::<u64>(), 1..800),
        seed in any::<u64>(),
    ) {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let config = SrmConfig { seed, ..SrmConfig::default() };
        let (run, report) = SrmSorter::new(config).sort(&mut a, &input).unwrap();
        let got: Vec<u64> = read_run(&mut a, &run).unwrap().iter().map(|r| r.0).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(report.records as usize, keys.len());
        // Reads can never beat the one-block-per-disk-per-op bound.
        let blocks = (keys.len() as u64).div_ceil(geom.b as u64);
        prop_assert!(report.io.blocks_read <= report.io.read_ops * geom.d as u64);
        prop_assert!(report.io.blocks_written >= blocks * (1 + report.merge_passes.min(1)) || report.merge_passes == 0);
    }

    #[test]
    fn srm_with_replacement_selection_sorts(
        geom in geometries(),
        keys in vec(any::<u64>(), 1..500),
        seed in any::<u64>(),
    ) {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let config = SrmConfig {
            seed,
            run_formation: RunFormation::ReplacementSelection,
            ..SrmConfig::default()
        };
        let (run, _) = SrmSorter::new(config).sort(&mut a, &input).unwrap();
        let got: Vec<u64> = read_run(&mut a, &run).unwrap().iter().map(|r| r.0).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dsm_sorts_arbitrary_inputs(
        geom in geometries(),
        keys in vec(any::<u64>(), 1..800),
    ) {
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let input = write_unsorted_stripes(&mut a, &recs).unwrap();
        let (run, _) = DsmSorter::default().sort(&mut a, &input).unwrap();
        let got: Vec<u64> = read_logical_run(&mut a, &run).unwrap().iter().map(|r| r.0).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// SRM and DSM always agree on the final sequence.
    #[test]
    fn sorters_agree(
        geom in geometries(),
        keys in vec(any::<u64>(), 1..400),
    ) {
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();
        let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        let (srm_run, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
        let srm_out: Vec<u64> = read_run(&mut a, &srm_run).unwrap().iter().map(|r| r.0).collect();
        let mut b: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_stripes(&mut b, &recs).unwrap();
        let (dsm_run, _) = DsmSorter::default().sort(&mut b, &input).unwrap();
        let dsm_out: Vec<u64> = read_logical_run(&mut b, &dsm_run).unwrap().iter().map(|r| r.0).collect();
        prop_assert_eq!(srm_out, dsm_out);
    }

    /// Fault tolerance as a property: under arbitrary transient-fault
    /// rates up to 10% (with enough retry budget), SRM's output equals
    /// the no-fault output and the *logical* read count — successful
    /// schedule operations, retries excluded — is unchanged.  Retries
    /// are visible but strictly additive.
    #[test]
    fn transient_faults_never_change_output_or_schedule(
        keys in vec(any::<u64>(), 50..600),
        rate in 0u32..=100,          // per-mille-of-10%: 0.0 ..= 0.10
        fault_seed in any::<u64>(),
    ) {
        let rate = f64::from(rate) / 1000.0;
        let geom = Geometry::new(2, 4, 96).unwrap();
        let recs: Vec<U64Record> = keys.iter().map(|&k| U64Record(k)).collect();

        // No-fault reference.
        let mut clean: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let input = write_unsorted_input(&mut clean, &recs).unwrap();
        clean.reset_stats();
        let (run, _) = SrmSorter::default().sort(&mut clean, &input).unwrap();
        let clean_reads = clean.stats().read_ops;
        let want = read_run(&mut clean, &run).unwrap();

        // Same sort under random transient faults + bounded retry.  At
        // 10% per-disk fault probability, 10 attempts make an
        // all-attempts-fail run vanishingly unlikely (1e-10 per op).
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom);
        let faulty = FaultyDiskArray::new(inner, FaultModel::random(fault_seed).with_rate(rate));
        let mut a = RetryingDiskArray::new(faulty, RetryPolicy::new(10, std::time::Duration::from_millis(1)));
        let input = write_unsorted_input(&mut a, &recs).unwrap();
        a.reset_stats();
        let (run, _) = SrmSorter::default().sort(&mut a, &input).unwrap();
        let stats = a.stats();
        prop_assert_eq!(stats.read_ops, clean_reads, "logical reads changed under faults");
        let got = read_run(&mut a, &run).unwrap();
        prop_assert_eq!(got, want);
        if rate == 0.0 {
            prop_assert_eq!(stats.total_retries(), 0);
        }
    }

    /// Order-statistics sampler invariants over arbitrary (records, B).
    #[test]
    fn block_bounds_structural_invariants(
        records in 1u64..5000,
        block in 1u64..200,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let bb = occupancy::BlockBounds::sample(records, block, &mut rng);
        prop_assert_eq!(bb.blocks() as u64, records.div_ceil(block));
        for j in 0..bb.blocks() {
            prop_assert!(bb.minima[j] <= bb.maxima[j]);
            prop_assert!(bb.minima[j] > 0.0 && bb.maxima[j] < 1.0);
            if j + 1 < bb.blocks() {
                prop_assert!(bb.maxima[j] < bb.minima[j + 1]);
            }
        }
    }

    /// Lemma 9 invariant under arbitrary chain multisets: normalization
    /// preserves ball count and caps every chain at D.
    #[test]
    fn lemma9_normalization_invariants(
        d in 1usize..20,
        chains in vec(1u64..100, 1..30),
    ) {
        let p = occupancy::DependentProblem::new(d, chains);
        let n = p.normalized();
        prop_assert_eq!(n.total_balls(), p.total_balls());
        prop_assert!(n.chains().iter().all(|&c| c <= d as u64));
    }
}
