//! Every error variant the engines can surface must render a
//! non-empty, stable `Display` line: the server's wire protocol, the
//! CLI, and the test assertions all grep these strings, so a variant
//! silently rendering empty (or drifting) breaks failure reporting in
//! ways nothing else tests.

use dsm::DsmError;
use pdisk::PdiskError;
use srm_core::SrmError;
use srm_server::JobError;

fn pdisk_io() -> PdiskError {
    PdiskError::BadGeometry("D = 0".into())
}

/// Render, assert non-empty, and assert the stable marker substring.
fn check(err: &dyn std::fmt::Display, marker: &str) {
    let s = err.to_string();
    assert!(!s.is_empty(), "Display must be non-empty (marker {marker:?})");
    assert!(
        s.contains(marker),
        "Display {s:?} lost its stable marker {marker:?}"
    );
}

#[test]
fn every_srm_error_variant_renders() {
    let cases: Vec<(SrmError, &str)> = vec![
        (SrmError::Disk(pdisk_io()), "disk error"),
        (SrmError::Config("r too big".into()), "configuration error"),
        (SrmError::Checkpoint("torn manifest".into()), "checkpoint error"),
        (SrmError::Internal("lemma 1".into()), "internal invariant violated"),
        (SrmError::Interrupted, "interrupted at a pass boundary"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

#[test]
fn every_dsm_error_variant_renders() {
    let cases: Vec<(DsmError, &str)> = vec![
        (DsmError::Disk(pdisk_io()), "disk error"),
        (DsmError::Config("m too small".into()), "configuration error"),
        (DsmError::Checkpoint("bad checksum".into()), "checkpoint error"),
        (DsmError::Interrupted, "interrupted at a pass boundary"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

#[test]
fn every_job_error_variant_renders() {
    let cases: Vec<(JobError, &str)> = vec![
        (JobError::Disk(pdisk_io()), "disk error"),
        (JobError::Config("records = 0".into()), "job configuration error"),
        (JobError::Checkpoint("stale epoch".into()), "checkpoint error"),
        (JobError::Interrupted, "interrupted at a pass boundary"),
        (JobError::Engine("queue underflow".into()), "engine invariant violated"),
        (JobError::Io("spec unreadable".into()), "i/o error"),
        (JobError::Model("two blocks on disk 3".into()), "model-rule violation"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

/// The `Interrupted` renderings must keep promising that the
/// checkpoint landed first — resumability is the contract PR 5/6
/// tests and operators rely on.
#[test]
fn interrupted_renderings_promise_a_checkpoint() {
    for s in [
        SrmError::Interrupted.to_string(),
        DsmError::Interrupted.to_string(),
        JobError::Interrupted.to_string(),
    ] {
        assert!(s.contains("checkpoint journaled"), "{s:?}");
    }
}
