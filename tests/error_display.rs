//! Every error variant the engines can surface must render a
//! non-empty, stable `Display` line: the server's wire protocol, the
//! CLI, and the test assertions all grep these strings, so a variant
//! silently rendering empty (or drifting) breaks failure reporting in
//! ways nothing else tests.

use dsm::DsmError;
use pdisk::PdiskError;
use srm_core::SrmError;
use srm_server::JobError;

fn pdisk_io() -> PdiskError {
    PdiskError::BadGeometry("D = 0".into())
}

/// Render, assert non-empty, and assert the stable marker substring.
fn check(err: &dyn std::fmt::Display, marker: &str) {
    let s = err.to_string();
    assert!(!s.is_empty(), "Display must be non-empty (marker {marker:?})");
    assert!(
        s.contains(marker),
        "Display {s:?} lost its stable marker {marker:?}"
    );
}

#[test]
fn every_srm_error_variant_renders() {
    let cases: Vec<(SrmError, &str)> = vec![
        (SrmError::Disk(pdisk_io()), "disk error"),
        (SrmError::Config("r too big".into()), "configuration error"),
        (SrmError::Checkpoint("torn manifest".into()), "checkpoint error"),
        (SrmError::Internal("lemma 1".into()), "internal invariant violated"),
        (SrmError::Interrupted, "interrupted at a pass boundary"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

#[test]
fn every_dsm_error_variant_renders() {
    let cases: Vec<(DsmError, &str)> = vec![
        (DsmError::Disk(pdisk_io()), "disk error"),
        (DsmError::Config("m too small".into()), "configuration error"),
        (DsmError::Checkpoint("bad checksum".into()), "checkpoint error"),
        (DsmError::Interrupted, "interrupted at a pass boundary"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

#[test]
fn every_job_error_variant_renders() {
    let cases: Vec<(JobError, &str)> = vec![
        (JobError::Disk(pdisk_io()), "disk error"),
        (JobError::Config("records = 0".into()), "job configuration error"),
        (JobError::Checkpoint("stale epoch".into()), "checkpoint error"),
        (JobError::Interrupted, "interrupted at a pass boundary"),
        (JobError::Engine("queue underflow".into()), "engine invariant violated"),
        (JobError::Io("spec unreadable".into()), "i/o error"),
        (JobError::Model("two blocks on disk 3".into()), "model-rule violation"),
    ];
    for (err, marker) in &cases {
        check(err, marker);
    }
}

/// The `Interrupted` renderings must keep promising that the
/// checkpoint landed first — resumability is the contract PR 5/6
/// tests and operators rely on.
#[test]
fn interrupted_renderings_promise_a_checkpoint() {
    for s in [
        SrmError::Interrupted.to_string(),
        DsmError::Interrupted.to_string(),
        JobError::Interrupted.to_string(),
    ] {
        assert!(s.contains("checkpoint journaled"), "{s:?}");
    }
}

/// ISSUE-10 additions to the fault taxonomy: ENOSPC and failed
/// durability barriers render with their stable slugs (`no-space`,
/// `sync`) — the chaos oracle, the server protocol's `code=` field, and
/// the retry-classification audit all grep them.
#[test]
fn no_space_and_sync_faults_render_with_stable_slugs() {
    use pdisk::{DiskId, FaultKind, FaultOp};
    let cases: Vec<(PdiskError, &[&str])> = vec![
        (
            PdiskError::Fault {
                kind: FaultKind::NoSpace,
                op: FaultOp::Write,
                disk: Some(DiskId(2)),
            },
            &["no-space", "disk 2", "write"],
        ),
        (
            PdiskError::Fault {
                kind: FaultKind::NoSpace,
                op: FaultOp::Alloc,
                disk: None,
            },
            &["no-space", "alloc"],
        ),
        (
            PdiskError::Fault {
                kind: FaultKind::Transient,
                op: FaultOp::Sync,
                disk: Some(DiskId(0)),
            },
            &["sync", "disk 0"],
        ),
        (
            PdiskError::RetriesExhausted {
                attempts: 6,
                last: Box::new(PdiskError::Fault {
                    kind: FaultKind::Transient,
                    op: FaultOp::Read,
                    disk: Some(DiskId(1)),
                }),
            },
            &["gave up after 6 attempts", "transient fault on disk 1"],
        ),
    ];
    for (err, markers) in &cases {
        for marker in *markers {
            check(err, marker);
        }
    }
}

#[test]
fn submit_no_space_renders_actionably() {
    use srm_server::SubmitError;
    let err = SubmitError::NoSpace("injected ENOSPC on job store /tmp/jobs".into());
    check(&err, "out of space");
    check(&err, "free space and resubmit");
    // And the wire protocol maps it to the stable machine-readable code
    // the chaos server target and `srm client` both match on.
    assert!(srm_server::protocol::submit_error_line(&err).starts_with("ERR code=no-space "));
}

#[test]
fn every_chaos_error_and_violation_renders() {
    use srm_chaos::{ChaosError, Violation};
    let errors: Vec<(ChaosError, &str)> = vec![
        (ChaosError::Io("spawn failed".into()), "chaos harness I/O error"),
        (ChaosError::Parse("bad json".into()), "cannot parse reproducer artifact"),
        (ChaosError::BadArtifact("version 9".into()), "unusable reproducer artifact"),
        (ChaosError::Config("no server bin".into()), "chaos config error"),
    ];
    for (err, marker) in &errors {
        check(err, marker);
    }
    // Violations render human text, and their codes (which the minimizer
    // and --expect-violation compare) are stable slugs.
    let violations: Vec<(Violation, &str, &str)> = vec![
        (Violation::DigestMismatch { got: 1, want: 2 }, "digest mismatch", "digest-mismatch"),
        (Violation::ModelViolation("two blocks".into()), "model violation", "model-violation"),
        (Violation::UnexpectedError("EIO".into()), "unexpected error", "unexpected-error"),
        (Violation::Wedged { attempts: 9 }, "no progress after 9", "wedged"),
        (Violation::LeakedFiles("sort.manifest".into()), "leaked files", "leaked-files"),
        (Violation::Panicked("overflow".into()), "panicked", "panic"),
    ];
    for (v, marker, code) in &violations {
        check(v, marker);
        assert_eq!(v.code(), *code, "stable violation code");
    }
}
