//! Exhaustive crash-matrix: crash a checkpointed SRM sort at **every**
//! numbered I/O boundary, reboot, recover, and require byte-identical
//! sorted output — across serial and pipelined engines, mem and file
//! backends, with and without parity.  Every recovery's own I/O trace is
//! replayed through the model checker, so a recovery that reads a frame
//! whose write never durably completed fails the suite even if its
//! output happens to be right.
//!
//! This is the proof behind `DESIGN.md`'s crash-consistency claim: the
//! checkpoint manifests are journaled (write-temp + fsync + rename with
//! generations), every snapshot is preceded by an `array.sync()`
//! durability barrier, and the pipelined engine quiesces split-phase
//! tickets on the way out — so no crash point, including torn parallel
//! writes and a crash *during* the manifest rename, can lose the sort.

use pdisk::Geometry;
use pdisk::U64Record;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_repro::crashmat::{dry_run, explore_point, run_matrix, Backend, MatrixConfig};

const D: usize = 4;
const B: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("srm-crashmat-{tag}-{}", std::process::id()))
}

fn data(records: usize) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(0xC4A5);
    (0..records).map(|_| U64Record(rng.random())).collect()
}

/// Small enough for an exhaustive sweep, big enough for two merge passes
/// (so the matrix covers inter-pass checkpoints, not just formation).
fn config(tag: &str, pipeline: bool, parity: bool, backend: Backend) -> MatrixConfig {
    MatrixConfig {
        geom: Geometry::new(D, B, 8 * D * B).unwrap(),
        seed: 0x5EED_C4A5,
        pipeline,
        // Pipelined sweeps run at read-ahead depth 3: every crash point
        // must recover cleanly with speculative backend reads in flight
        // and the full write-behind window torn.
        read_ahead: if pipeline { 3 } else { 0 },
        parity,
        backend,
        check_recovery: true,
        scratch: scratch(tag),
    }
}

fn sweep(tag: &str, pipeline: bool, parity: bool, backend: Backend) {
    let cfg = config(tag, pipeline, parity, backend);
    let input = data(600);
    let report = run_matrix(&cfg, &input, |_, _| {}).unwrap_or_else(|e| panic!("{tag}: {e}"));
    assert!(report.points > 0, "{tag}: dry run numbered no boundaries");
    assert!(
        report.resumed_from_checkpoint > 0,
        "{tag}: no crash point ever resumed from a checkpoint \
         ({} points, {} fresh restarts)",
        report.points,
        report.fresh_restarts
    );
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}

#[test]
fn serial_mem_plain_recovers_from_every_crash_point() {
    sweep("serial-mem", false, false, Backend::Mem);
}

#[test]
fn serial_mem_parity_recovers_from_every_crash_point() {
    sweep("serial-mem-par", false, true, Backend::Mem);
}

#[test]
fn pipelined_mem_plain_recovers_from_every_crash_point() {
    sweep("pipe-mem", true, false, Backend::Mem);
}

#[test]
fn pipelined_mem_parity_recovers_from_every_crash_point() {
    sweep("pipe-mem-par", true, true, Backend::Mem);
}

/// File-backend sweeps exercise real fsync barriers, DirLock handoff,
/// and torn-frame detection on reopen.  The file worlds are much slower
/// per point, so they run at a smaller record count (still two passes).
#[test]
fn serial_file_plain_recovers_from_every_crash_point() {
    sweep("serial-file", false, false, Backend::File);
}

#[test]
fn pipelined_file_parity_recovers_from_every_crash_point() {
    sweep("pipe-file-par", true, true, Backend::File);
}

/// Recovery is deterministic: the same crash point explored twice gives
/// the same output (and the harness already checks it equals the
/// baseline).  This is the "identical IoStats on resume" property at the
/// observable level — a recovery that took a different path would place
/// blocks differently and diverge.
#[test]
fn recovery_is_deterministic_at_a_fixed_crash_point() {
    let cfg = config("determinism", false, true, Backend::Mem);
    std::fs::create_dir_all(&cfg.scratch).unwrap();
    let input = data(600);
    let (points, baseline) = dry_run(&cfg, &input).unwrap();
    // A mid-sort boundary: far enough in to land after checkpoints exist.
    let k = points / 2;
    let (first, _) = explore_point(&cfg, &input, k).unwrap();
    let (second, _) = explore_point(&cfg, &input, k).unwrap();
    assert_eq!(first, second, "two recoveries from point {k} diverged");
    assert_eq!(first, baseline, "recovery from point {k} diverged from baseline");
    let _ = std::fs::remove_dir_all(&cfg.scratch);
}
