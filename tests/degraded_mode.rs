//! Permanent-disk-death drills: a sort under rotating parity that loses
//! one disk forever — mid-merge or at a pass boundary, with or without a
//! checkpoint resume in between — must complete **without restarting**
//! and produce output byte-identical to the failure-free run, because
//! the parity layer serves the dead disk's blocks by reconstruction and
//! the merge schedule never changes.

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::{
    DiskArray, DiskId, FaultModel, FaultOp, FaultyDiskArray, FileDiskArray, Geometry,
    MemDiskArray, ParityDiskArray, Record, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmError, SrmSorter};
use std::path::PathBuf;

fn random_records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn encode_all(records: &[U64Record]) -> Vec<u8> {
    let mut out = vec![0u8; records.len() * U64Record::ENCODED_LEN];
    for (rec, chunk) in records.iter().zip(out.chunks_mut(U64Record::ENCODED_LEN)) {
        rec.encode(chunk);
    }
    out
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-degraded-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Three disks (real parity, not a mirror) and three merge passes over
/// 3000 records, so deaths can land at and between every boundary.
fn geom() -> Geometry {
    Geometry::new(3, 4, 120).unwrap()
}

/// Failure-free SRM baseline on a plain array: output bytes plus the
/// sort's own read-op count (to aim mid-merge kills).
fn srm_baseline(data: &[U64Record]) -> (Vec<u8>, u64) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut a, data).unwrap();
    a.reset_stats();
    let (run, report) = SrmSorter::default().sort(&mut a, &input).unwrap();
    assert!(report.merge_passes >= 3, "need a genuinely multi-pass sort");
    let reads = a.stats().read_ops;
    let out = read_run(&mut a, &run).unwrap();
    (encode_all(&out), reads)
}

/// The headline drill: a disk dies permanently in the middle of a merge
/// pass (first touch at a scripted read ordinal fails with a permanent
/// fault).  The parity layer absorbs the death inside the failing
/// operation and the sort runs to completion — no error, no restart,
/// byte-identical output, with the recovery work visible in the
/// reconstruction counters.
#[test]
fn srm_parity_survives_permanent_mid_merge_death() {
    let data = random_records(3000, 81);
    let (want, reads) = srm_baseline(&data);

    for ordinal in [reads / 4, reads / 2, reads - 1] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let faulty =
            FaultyDiskArray::new(inner, FaultModel::none().kill_at(FaultOp::Read, ordinal));
        let mut a = ParityDiskArray::new(faulty).unwrap();
        let input = write_unsorted_input(&mut a, &data).unwrap();
        a.reset_stats();

        let (run, report) = SrmSorter::default()
            .sort(&mut a, &input)
            .unwrap_or_else(|e| panic!("kill at read op {ordinal}: sort must survive, got {e}"));
        let out = read_run(&mut a, &run).unwrap();
        assert_eq!(
            encode_all(&out),
            want,
            "kill at read op {ordinal}: degraded output differs from failure-free run"
        );
        assert_eq!(report.records, 3000);
        let stats = a.stats();
        assert!(
            stats.reconstructed_reads > 0,
            "kill at read op {ordinal}: recovery must go through reconstruction"
        );
        assert!(stats.parity_writes > 0);
        let red = a.redundancy().unwrap();
        assert_eq!(red.dead.len(), 1, "exactly one disk died");
    }
}

/// The kill/resume matrix: at every pass boundary, a disk dies
/// (administratively, via `fail_disk`), the snapshot taken right after
/// records the death, the *next* boundary simulates a process crash, and
/// the resumed sort — on an array that knows the disk is dead — finishes
/// byte-identical with reconstruction reads on the books.
#[test]
fn srm_degraded_kill_resume_matrix_per_pass_boundary() {
    let data = random_records(3000, 82);
    let (want, _) = srm_baseline(&data);
    let dir = unique_dir("matrix");

    for boundary in 0..=2u64 {
        let manifest = dir.join(format!("kill-at-{boundary}.manifest"));
        let victim = DiskId((boundary % 3) as u32);
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = ParityDiskArray::new(inner).unwrap();
        let input = write_unsorted_input(&mut a, &data).unwrap();
        a.reset_stats();

        // Session 1: kill `victim` at `boundary`, crash one boundary later.
        let crash_at = boundary + 1;
        let result = SrmSorter::default().sort_observed(
            &mut a,
            &input,
            Some(&manifest),
            |pass, array| {
                if pass == boundary {
                    array.fail_disk(victim).map_err(SrmError::from)?;
                }
                if pass == crash_at {
                    return Err(SrmError::Internal("simulated crash".into()));
                }
                Ok(())
            },
        );
        assert!(result.is_err(), "boundary {boundary}: session 1 must crash");
        assert!(manifest.exists(), "boundary {boundary}: crash leaves a manifest");
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert!(
            text.contains("parity 3") && text.contains(&format!("dead {}", victim.0)),
            "boundary {boundary}: manifest must record parity geometry and the death:\n{text}"
        );

        // A plain array must be refused: the manifest was written under
        // parity and one disk's data exists only as parity.
        let mut plain: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        match SrmSorter::default().sort_checkpointed(&mut plain, &input, &manifest) {
            Err(SrmError::Checkpoint(msg)) => assert!(msg.contains("parity"), "{msg}"),
            other => panic!("boundary {boundary}: plain-array resume must be refused, got {other:?}"),
        }

        // Session 2: same degraded array (it already knows the disk is
        // dead), same manifest — resume and finish.
        let (run, report) = SrmSorter::default()
            .sort_checkpointed(&mut a, &input, &manifest)
            .unwrap_or_else(|e| panic!("boundary {boundary}: degraded resume failed: {e}"));
        let out = read_run(&mut a, &run).unwrap();
        assert_eq!(
            encode_all(&out),
            want,
            "boundary {boundary}: resumed degraded output differs from failure-free run"
        );
        assert_eq!(report.records, 3000);
        assert_eq!(report.merge_passes, 3, "whole-sort pass count survives resume");
        assert!(
            a.stats().reconstructed_reads > 0,
            "boundary {boundary}: degraded passes must reconstruct the dead disk's blocks"
        );
        assert!(!manifest.exists(), "manifest deleted on completion");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full cross-process story on the file backend: parity frames
/// persist in a sidecar store, the process dies after a disk died, and a
/// *fresh* process — new `FileDiskArray::open`, new parity wrapper fed
/// from the store, dead set re-marked from the manifest — finishes the
/// sort byte-identically.
#[test]
fn srm_file_backend_degraded_resume_with_parity_store() {
    let data = random_records(3000, 83);
    let (want, _) = srm_baseline(&data);
    let dir = unique_dir("file");
    let disks = dir.join("disks");
    let store = dir.join("parity.store");
    let manifest = dir.join("sort.manifest");
    let victim = DiskId(1);

    // First process: disk 1 dies at boundary 1, crash at boundary 2.
    let input = {
        let files: FileDiskArray<U64Record> = FileDiskArray::create(geom(), &disks).unwrap();
        let mut a = ParityDiskArray::new(files)
            .unwrap()
            .with_store(&store)
            .unwrap();
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let result = SrmSorter::default().sort_observed(
            &mut a,
            &input,
            Some(&manifest),
            |pass, array| {
                if pass == 1 {
                    array.fail_disk(victim).map_err(SrmError::from)?;
                }
                if pass == 2 {
                    return Err(SrmError::Internal("simulated crash".into()));
                }
                Ok(())
            },
        );
        assert!(result.is_err());
        assert!(manifest.exists());
        input
        // Arrays dropped: files closed, store flushed (write-through).
    };

    // Second process: reopen everything from disk, re-mark the dead set
    // recorded in the manifest (as the CLI does), then resume.
    let m = srm_core::SortManifest::load(&manifest).unwrap();
    let dead = m.redundancy.as_ref().expect("manifest carries parity info").dead.clone();
    assert_eq!(dead, vec![victim]);
    let files = FileDiskArray::<U64Record>::open(geom(), &disks).unwrap();
    let mut a = ParityDiskArray::new(files)
        .unwrap()
        .with_store(&store)
        .unwrap();
    for d in dead {
        a.fail_disk(d).unwrap();
    }
    let (run, _) = SrmSorter::default()
        .sort_checkpointed(&mut a, &input, &manifest)
        .unwrap();
    let out = read_run(&mut a, &run).unwrap();
    assert_eq!(encode_all(&out), want, "cross-process degraded resume must be byte-identical");
    assert!(a.stats().reconstructed_reads > 0);
    assert!(!manifest.exists());
    drop(a);
    let _ = std::fs::remove_dir_all(&dir);
}

/// DSM under the same parity layer: a permanent mid-merge death is
/// absorbed and the striped sort finishes byte-identically too.
#[test]
fn dsm_parity_survives_permanent_mid_merge_death() {
    let data = random_records(3000, 84);

    // Failure-free baseline.
    let mut clean: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_stripes(&mut clean, &data).unwrap();
    clean.reset_stats();
    let (run, report) = DsmSorter::default().sort(&mut clean, &input).unwrap();
    assert!(report.merge_passes >= 2);
    let reads = clean.stats().read_ops;
    let want = encode_all(&read_logical_run(&mut clean, &run).unwrap());

    for ordinal in [reads / 3, 2 * reads / 3] {
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let faulty =
            FaultyDiskArray::new(inner, FaultModel::none().kill_at(FaultOp::Read, ordinal));
        let mut a = ParityDiskArray::new(faulty).unwrap();
        let input = write_unsorted_stripes(&mut a, &data).unwrap();
        a.reset_stats();

        let (run, _) = DsmSorter::default()
            .sort(&mut a, &input)
            .unwrap_or_else(|e| panic!("kill at read op {ordinal}: DSM must survive, got {e}"));
        let out = read_logical_run(&mut a, &run).unwrap();
        assert_eq!(encode_all(&out), want, "kill at read op {ordinal}");
        assert!(a.stats().reconstructed_reads > 0);
    }
}
