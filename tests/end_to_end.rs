//! Cross-crate end-to-end checks: SRM vs DSM on identical inputs and
//! memory budgets; measured I/O versus the closed forms of eq. (40)/(41);
//! the real-file backend versus the in-memory backend.

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::{DiskArray, FileDiskArray, Geometry, MemDiskArray, U64Record};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_repro as _;
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmSorter};

fn random_records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn srm_sort(geom: Geometry, data: &[U64Record]) -> (Vec<u64>, srm_core::SortReport) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let input = write_unsorted_input(&mut a, data).unwrap();
    a.reset_stats();
    let (run, report) = SrmSorter::default().sort(&mut a, &input).unwrap();
    let out = read_run(&mut a, &run).unwrap().iter().map(|r| r.0).collect();
    (out, report)
}

fn dsm_sort(geom: Geometry, data: &[U64Record]) -> (Vec<u64>, dsm::DsmReport) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let input = write_unsorted_stripes(&mut a, data).unwrap();
    a.reset_stats();
    let (run, report) = DsmSorter::default().sort(&mut a, &input).unwrap();
    let out = read_logical_run(&mut a, &run)
        .unwrap()
        .iter()
        .map(|r| r.0)
        .collect();
    (out, report)
}

/// The paper's claim in one assertion: same machine, same memory, same
/// input — SRM needs fewer parallel I/O operations than DSM whenever the
/// merge orders actually differ.
#[test]
fn srm_beats_dsm_on_table_geometry() {
    let geom = Geometry::for_table(2, 8, 16).unwrap();
    let data = random_records(400_000, 1);
    let (srm_out, srm) = srm_sort(geom, &data);
    let (dsm_out, dsm) = dsm_sort(geom, &data);
    assert_eq!(srm_out, dsm_out, "the two sorters disagree");
    assert!(srm_out.windows(2).all(|w| w[0] <= w[1]));
    assert!(
        srm.merge_passes < dsm.merge_passes,
        "SRM passes {} !< DSM passes {}",
        srm.merge_passes,
        dsm.merge_passes
    );
    let (s_ops, d_ops) = (srm.io.total_ops(), dsm.io.total_ops());
    assert!(
        (s_ops as f64) < 0.85 * d_ops as f64,
        "SRM {s_ops} ops vs DSM {d_ops} ops"
    );
}

/// Measured totals track eq. (40)/(41) — loosely, since the formulas drop
/// every ceiling.
#[test]
fn formulas_predict_measured_ios() {
    let (k, d, b) = (4usize, 4usize, 32usize);
    let geom = Geometry::for_table(k, d, b).unwrap();
    let n = 2_000_000u64;
    let data = random_records(n, 2);
    let (_, srm) = srm_sort(geom, &data);
    let (_, dsm) = dsm_sort(geom, &data);
    let srm_pred = analysis::srm_total_ios(n, geom.m as u64, d, b, k, 1.05);
    let dsm_pred = analysis::dsm_total_ios(n, geom.m as u64, d, b, k);
    let srm_err = (srm.io.total_ops() as f64 - srm_pred).abs() / srm_pred;
    let dsm_err = (dsm.io.total_ops() as f64 - dsm_pred).abs() / dsm_pred;
    assert!(srm_err < 0.35, "SRM measured {} vs predicted {srm_pred:.0}", srm.io.total_ops());
    assert!(dsm_err < 0.35, "DSM measured {} vs predicted {dsm_pred:.0}", dsm.io.total_ops());
}

/// SRM's writes are perfectly parallel (Theorem 1's write claim): on a
/// sort whose runs are long, write parallelism approaches D.
#[test]
fn srm_write_parallelism_near_perfect() {
    let geom = Geometry::for_table(4, 4, 64).unwrap();
    let data = random_records(1_000_000, 3);
    let (_, report) = srm_sort(geom, &data);
    // Every stripe is full-width except each run's ragged tail; with
    // ~250 formation runs the average dips slightly below D = 4.
    assert!(
        report.io.write_parallelism() > 3.8,
        "write parallelism {}",
        report.io.write_parallelism()
    );
}

/// File backend produces byte-identical results to the memory backend and
/// the same I/O counts (the schedule is deterministic given the seed).
#[test]
fn file_backend_matches_mem_backend() {
    let geom = Geometry::new(3, 32, 4096).unwrap();
    let data = random_records(60_000, 4);

    let (mem_out, mem_report) = srm_sort(geom, &data);

    let dir = std::env::temp_dir().join(format!("srm-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut files: FileDiskArray<U64Record> = FileDiskArray::create(geom, &dir).unwrap();
    let input = write_unsorted_input(&mut files, &data).unwrap();
    files.reset_stats();
    let (run, file_report) = SrmSorter::default().sort(&mut files, &input).unwrap();
    let file_out: Vec<u64> = read_run(&mut files, &run).unwrap().iter().map(|r| r.0).collect();
    drop(files);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(mem_out, file_out);
    assert_eq!(mem_report.io, file_report.io, "backends must count identically");
    assert_eq!(mem_report.schedule, file_report.schedule);
}

/// The conjecture chain across crates: simulated SRM overhead (Table 3)
/// is bounded by the classical-occupancy overhead (Table 1), which is
/// bounded by the analytic rho* bound.
#[test]
fn overhead_ordering_across_crates() {
    let (k, d) = (5usize, 10usize);
    let mut rng = SmallRng::seed_from_u64(5);
    let simulated = srm_core::simulator::estimate_overhead_v(
        k,
        d,
        200,
        256,
        srm_core::simulator::SimPlacement::Random,
        3,
        &mut rng,
    )
    .unwrap();
    let classical = occupancy::overhead_v(k as u64, d, 2000, &mut rng);
    let analytic = occupancy::upper_bound_expected_max((k * d) as u64, d) / k as f64;
    assert!(
        simulated.mean <= classical.mean + 0.05,
        "simulated v {} should not exceed classical v {}",
        simulated.mean,
        classical.mean
    );
    assert!(
        classical.mean <= analytic + 0.05,
        "classical v {} should not exceed analytic bound {}",
        classical.mean,
        analytic
    );
}

/// Randomized striping balances load: after a full SRM sort, no disk
/// carries disproportionate traffic (the practical content of the
/// random-start-disk choice).
#[test]
fn srm_balances_disk_load() {
    let geom = Geometry::for_table(3, 4, 32).unwrap();
    let data = random_records(600_000, 9);
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom);
    let input = write_unsorted_input(&mut a, &data).unwrap();
    a.reset_stats();
    let _ = SrmSorter::default().sort(&mut a, &input).unwrap();
    let loads = a.disk_loads();
    let reads: Vec<u64> = loads.iter().map(|&(r, _)| r).collect();
    let writes: Vec<u64> = loads.iter().map(|&(_, w)| w).collect();
    for (label, v) in [("reads", reads), ("writes", writes)] {
        let max = *v.iter().max().unwrap() as f64;
        let min = *v.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.10,
            "{label} imbalanced across disks: {v:?}"
        );
    }
}

/// Sorting stability of accounting: identical seeds give identical
/// reports on repeated runs (no hidden nondeterminism anywhere).
#[test]
fn whole_pipeline_deterministic() {
    let geom = Geometry::for_table(3, 4, 32).unwrap();
    let data = random_records(200_000, 6);
    let (out1, rep1) = srm_sort(geom, &data);
    let (out2, rep2) = srm_sort(geom, &data);
    assert_eq!(out1, out2);
    assert_eq!(rep1, rep2);
}
