//! Kill-and-resume end-to-end tests: a multi-pass sort interrupted by a
//! permanent disk fault at *any* point must, when rerun against the same
//! array with the same manifest path, complete and produce output
//! **byte-identical** to an uninterrupted sort — same record sequence,
//! same encoded bytes — because the resumed placement RNG is
//! fast-forwarded to exactly where the interrupted sort left off.

use dsm::{read_logical_run, write_unsorted_stripes, DsmSorter};
use pdisk::{
    DiskArray, FaultModel, FaultOp, FileDiskArray, Geometry, MemDiskArray, Record, U64Record,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use srm_core::sort::write_unsorted_input;
use srm_core::{read_run, SrmSorter};
use std::path::PathBuf;

fn random_records(n: u64, seed: u64) -> Vec<U64Record> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| U64Record(rng.random())).collect()
}

fn encode_all(records: &[U64Record]) -> Vec<u8> {
    let mut out = vec![0u8; records.len() * U64Record::ENCODED_LEN];
    for (rec, chunk) in records.iter().zip(out.chunks_mut(U64Record::ENCODED_LEN)) {
        rec.encode(chunk);
    }
    out
}

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srm-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A geometry giving three merge passes over 3000 records, so kills can
/// land in formation, pass 1, pass 2, and pass 3.
fn geom() -> Geometry {
    Geometry::new(2, 4, 96).unwrap()
}

/// Uninterrupted SRM baseline: output bytes plus total sort read/write ops
/// (used to aim the kill points across the whole schedule).
fn srm_baseline(data: &[U64Record]) -> (Vec<u8>, u64, u64) {
    let mut a: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_input(&mut a, data).unwrap();
    a.reset_stats();
    let (run, report) = SrmSorter::default().sort(&mut a, &input).unwrap();
    assert!(report.merge_passes >= 3, "need a genuinely multi-pass sort");
    // Capture the op counts before the verification read below inflates
    // them — kill points must land inside the sort itself.
    let (reads, writes) = (a.stats().read_ops, a.stats().write_ops);
    let out = read_run(&mut a, &run).unwrap();
    (encode_all(&out), reads, writes)
}

#[test]
fn srm_killed_at_any_point_resumes_byte_identical() {
    let data = random_records(3000, 71);
    let (want, reads, writes) = srm_baseline(&data);
    let dir = unique_dir("srm-mem");

    // Read-ordinal kill points: formation's first read, mid-schedule
    // probes, and the very last read.  Write kills land after the
    // staging writes (input staging happens before the sort).
    let staging_writes = 3000u64.div_ceil(4).div_ceil(2);
    let kills: Vec<(FaultOp, u64)> = [0, reads / 5, reads / 2, 4 * reads / 5, reads - 1]
        .iter()
        .map(|&n| (FaultOp::Read, n))
        .chain([0, writes / 2, writes - 1].iter().map(|&n| (FaultOp::Write, staging_writes + n)))
        .collect();

    for (i, &(op, ordinal)) in kills.iter().enumerate() {
        let manifest = dir.join(format!("kill-{i}.manifest"));
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = pdisk::FaultyDiskArray::new(inner, FaultModel::none().kill_at(op, ordinal));
        let input = write_unsorted_input(&mut a, &data).unwrap();

        let killed = SrmSorter::default().sort_checkpointed(&mut a, &input, &manifest);
        assert!(killed.is_err(), "kill at {op} op {ordinal} must abort the sort");

        // "Reboot": same data on disk, fault gone, same sorter + manifest.
        let mut recovered = a.into_inner();
        let (run, report) = SrmSorter::default()
            .sort_checkpointed(&mut recovered, &input, &manifest)
            .unwrap_or_else(|e| panic!("resume after kill at {op} op {ordinal} failed: {e}"));
        let out = read_run(&mut recovered, &run).unwrap();
        assert_eq!(
            encode_all(&out),
            want,
            "kill at {op} op {ordinal}: resumed output differs from uninterrupted sort"
        );
        assert_eq!(report.records, 3000);
        assert_eq!(report.merge_passes, 3, "whole-sort pass count survives resume");
        assert!(!manifest.exists(), "manifest must be deleted on completion");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The real recovery story: a sort on the file backend dies (process and
/// all), the disk files are reopened with `FileDiskArray::open`, and the
/// resumed sort finishes byte-identically.
#[test]
fn srm_file_backend_survives_process_death() {
    let data = random_records(3000, 72);
    let (want, reads, _) = srm_baseline(&data);
    let dir = unique_dir("srm-file");
    let disks = dir.join("disks");
    let manifest = dir.join("sort.manifest");

    // First "process": stage input, then die from a permanent disk fault
    // midway through the merge schedule.
    let input = {
        let files: FileDiskArray<U64Record> = FileDiskArray::create(geom(), &disks).unwrap();
        let mut a =
            pdisk::FaultyDiskArray::new(files, FaultModel::none().kill_at(FaultOp::Read, reads / 2));
        let input = write_unsorted_input(&mut a, &data).unwrap();
        assert!(SrmSorter::default()
            .sort_checkpointed(&mut a, &input, &manifest)
            .is_err());
        assert!(manifest.exists(), "a mid-merge kill leaves a manifest behind");
        input
        // Array dropped here: worker threads shut down, files closed.
    };

    // Second "process": reopen the same files, resume from the manifest.
    let mut files = FileDiskArray::<U64Record>::open(geom(), &disks).unwrap();
    let (run, _) = SrmSorter::default()
        .sort_checkpointed(&mut files, &input, &manifest)
        .unwrap();
    let out = read_run(&mut files, &run).unwrap();
    assert_eq!(encode_all(&out), want, "cross-process resume must be byte-identical");
    assert!(!manifest.exists());
    drop(files);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dsm_killed_mid_pass_resumes_byte_identical() {
    let data = random_records(3000, 73);

    // Uninterrupted baseline.
    let mut clean: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let input = write_unsorted_stripes(&mut clean, &data).unwrap();
    clean.reset_stats();
    let (run, report) = DsmSorter::default().sort(&mut clean, &input).unwrap();
    assert!(report.merge_passes >= 2);
    let reads = clean.stats().read_ops; // before the verification read
    let want = encode_all(&read_logical_run(&mut clean, &run).unwrap());

    let dir = unique_dir("dsm-mem");
    for (i, ordinal) in [reads / 3, 2 * reads / 3, reads - 1].into_iter().enumerate() {
        let manifest = dir.join(format!("kill-{i}.manifest"));
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a =
            pdisk::FaultyDiskArray::new(inner, FaultModel::none().kill_at(FaultOp::Read, ordinal));
        let input = write_unsorted_stripes(&mut a, &data).unwrap();
        assert!(DsmSorter::default()
            .sort_checkpointed(&mut a, &input, &manifest)
            .is_err());

        let mut recovered = a.into_inner();
        let (run, report) = DsmSorter::default()
            .sort_checkpointed(&mut recovered, &input, &manifest)
            .unwrap();
        let out = read_logical_run(&mut recovered, &run).unwrap();
        assert_eq!(encode_all(&out), want, "kill at read op {ordinal}");
        assert_eq!(report.records, 3000);
        assert!(!manifest.exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--pipeline` + `--resume` in one flow: a *pipelined* sort killed
/// mid-merge (possibly with split-phase tickets in flight — the engine
/// quiesces them on the way out) resumes under the pipelined engine and
/// finishes byte-identical to the serial baseline.
#[test]
fn srm_pipelined_killed_mid_merge_resumes_byte_identical() {
    let data = random_records(3000, 75);
    let (want, reads, _) = srm_baseline(&data);
    let dir = unique_dir("srm-pipe");

    for (i, ordinal) in [reads / 4, reads / 2, reads - 1].into_iter().enumerate() {
        let manifest = dir.join(format!("kill-{i}.manifest"));
        let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
        let mut a = pdisk::FaultyDiskArray::new(
            inner,
            FaultModel::none().kill_at(FaultOp::Read, ordinal),
        );
        let input = write_unsorted_input(&mut a, &data).unwrap();
        let sorter = SrmSorter::default().with_pipeline(true);
        assert!(
            sorter.sort_checkpointed(&mut a, &input, &manifest).is_err(),
            "kill at read op {ordinal} must abort the pipelined sort"
        );

        let mut recovered = a.into_inner();
        let (run, report) = SrmSorter::default()
            .with_pipeline(true)
            .sort_checkpointed(&mut recovered, &input, &manifest)
            .unwrap_or_else(|e| panic!("pipelined resume after kill at op {ordinal} failed: {e}"));
        let out = read_run(&mut recovered, &run).unwrap();
        assert_eq!(
            encode_all(&out),
            want,
            "kill at read op {ordinal}: pipelined resume diverged"
        );
        assert_eq!(report.records, 3000);
        assert!(!manifest.exists());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two saved generations for the byte-flip property below: generation 1
/// (pass 1), then generation 2 (pass 2) which journals generation 1 to
/// `.prev`.  Returns the parsed states plus the pristine file bytes.
fn two_generations(
    dir: &std::path::Path,
) -> (
    srm_core::SortManifest,
    srm_core::SortManifest,
    Vec<u8>,
    Vec<u8>,
) {
    let path = dir.join("sort.manifest");
    let mk = |pass: u64, len: u64| {
        srm_core::SortManifest::new(
            &srm_core::SrmConfig::default(),
            geom(),
            3000,
            63,
            pass,
            60 + pass,
            None,
            vec![pdisk::StripedRun {
                start_disk: pdisk::DiskId(0),
                len_blocks: len,
                records: len * 4,
                base_offsets: vec![7, 9],
            }],
        )
    };
    mk(1, 100).save(&path).unwrap();
    mk(2, 25).save(&path).unwrap();
    let newest = srm_core::SortManifest::load(&path).unwrap();
    let prev = srm_core::SortManifest::load(&dir.join("sort.manifest.prev")).unwrap();
    assert_eq!(newest.generation, 2);
    assert_eq!(prev.generation, 1);
    let current_bytes = std::fs::read(&path).unwrap();
    let prev_bytes = std::fs::read(dir.join("sort.manifest.prev")).unwrap();
    (newest, prev, current_bytes, prev_bytes)
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

    /// Generation journaling under fire: with two saved generations on
    /// disk (current + `.prev`), random byte-flips in either file must
    /// always be detected — recovery loads the newest generation that
    /// still validates, falls back to the journaled predecessor when the
    /// current copy is torn, and never parses to a state that was not
    /// one of the two saved.
    #[test]
    fn srm_generation_fallback_survives_random_byte_flips(
        flips in proptest::collection::vec(
            (proptest::arbitrary::any::<usize>(), 1u8..=255u8, proptest::arbitrary::any::<bool>()),
            1..8,
        ),
    ) {
        let dir = unique_dir("srm-genfuzz");
        let path = dir.join("sort.manifest");
        let prev_path = dir.join("sort.manifest.prev");
        let (newest, prev, current_bytes, prev_bytes) = two_generations(&dir);

        let mut cur = current_bytes.clone();
        let mut prv = prev_bytes.clone();
        let mut cur_touched = false;
        for &(pos, mask, hit_current) in &flips {
            if hit_current {
                cur[pos % current_bytes.len()] ^= mask;
                cur_touched = true;
            } else {
                prv[pos % prev_bytes.len()] ^= mask;
            }
        }
        std::fs::write(&path, &cur).unwrap();
        std::fs::write(&prev_path, &prv).unwrap();

        match srm_core::SortManifest::load_latest(&path) {
            Ok(Some(got)) if got == newest => {}
            Ok(Some(got)) if got == prev => {
                // Fallback is only legitimate when the current manifest
                // really is torn (a flip in trailing whitespace can
                // leave it valid).
                assert!(
                    cur_touched && srm_core::SortManifest::load(&path).is_err(),
                    "fell back to generation 1 while generation 2 still validates"
                );
            }
            Ok(Some(got)) => panic!(
                "corrupt manifests parsed to a state never saved: gen {}",
                got.generation
            ),
            Ok(None) => panic!("files exist but recovery found nothing"),
            // Both generations torn: a typed error, not a panic.
            Err(srm_core::SrmError::Checkpoint(_)) => {}
            Err(other) => panic!("wrong error type: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Resume refuses a manifest that doesn't match the sorter or input —
/// each mismatch is a checkpoint error, not silent corruption.
#[test]
fn resume_rejects_incompatible_manifests() {
    let data = random_records(3000, 74);
    let dir = unique_dir("srm-reject");
    let manifest = dir.join("sort.manifest");

    // Produce a real manifest by killing a checkpointed sort mid-merge.
    let (_, reads, _) = srm_baseline(&data);
    let inner: MemDiskArray<U64Record> = MemDiskArray::new(geom());
    let mut a = pdisk::FaultyDiskArray::new(
        inner,
        FaultModel::none().kill_at(FaultOp::Read, reads / 2),
    );
    let input = write_unsorted_input(&mut a, &data).unwrap();
    assert!(SrmSorter::default()
        .sort_checkpointed(&mut a, &input, &manifest)
        .is_err());
    assert!(manifest.exists(), "mid-merge kill must leave a manifest");
    let mut recovered = a.into_inner();

    // Wrong seed.
    let reseeded = SrmSorter::new(srm_core::SrmConfig {
        seed: 0xBAD_5EED,
        ..srm_core::SrmConfig::default()
    });
    match reseeded.sort_checkpointed(&mut recovered, &input, &manifest) {
        Err(srm_core::SrmError::Checkpoint(msg)) => assert!(msg.contains("seed"), "{msg}"),
        other => panic!("wrong seed must be refused, got {other:?}"),
    }

    // Corrupted manifest file.
    let text = std::fs::read_to_string(&manifest).unwrap();
    assert!(text.contains("records 3000"));
    std::fs::write(&manifest, text.replace("records 3000", "records 3001")).unwrap();
    match SrmSorter::default().sort_checkpointed(&mut recovered, &input, &manifest) {
        Err(srm_core::SrmError::Checkpoint(msg)) => {
            assert!(msg.contains("checksum mismatch"), "{msg}")
        }
        other => panic!("torn manifest must be refused, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exhaustive single-byte corruption: flipping **any** byte of a valid
/// manifest (two masks per position: a low bit and all bits) must either
/// be refused with a typed checkpoint error or parse back to a manifest
/// identical to the original — never panic, never yield a silently
/// different resume state.  (A flip in trailing whitespace can leave the
/// content intact; that is the only acceptable "success".)
#[test]
fn srm_manifest_byte_flips_never_panic_or_resume_wrong() {
    let mut m = srm_core::SortManifest::new(
        &srm_core::SrmConfig::default(),
        geom(),
        3000,
        63,
        2,
        67,
        Some(pdisk::RedundancyInfo {
            stripe_disks: 2,
            dead: vec![pdisk::DiskId(1)],
        }),
        vec![
            pdisk::StripedRun {
                start_disk: pdisk::DiskId(1),
                len_blocks: 130,
                records: 520,
                base_offsets: vec![10, 20],
            },
            pdisk::StripedRun {
                start_disk: pdisk::DiskId(0),
                len_blocks: 120,
                records: 480,
                base_offsets: vec![55, 66],
            },
        ],
    );
    let dir = unique_dir("srm-fuzz");
    let path = dir.join("sort.manifest");
    m.save(&path).unwrap();
    let valid = std::fs::read(&path).unwrap();
    m = srm_core::SortManifest::load(&path).unwrap(); // normalize

    for i in 0..valid.len() {
        for mask in [0x01u8, 0xFF] {
            let mut bytes = valid.clone();
            bytes[i] ^= mask;
            std::fs::write(&path, &bytes).unwrap();
            match srm_core::SortManifest::load(&path) {
                Err(srm_core::SrmError::Checkpoint(_)) => {}
                Err(other) => {
                    panic!("byte {i} ^ {mask:#04x}: wrong error type {other:?}")
                }
                Ok(parsed) => assert_eq!(
                    parsed, m,
                    "byte {i} ^ {mask:#04x}: corrupt manifest parsed to different state"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same exhaustive corruption sweep for the DSM manifest format.
#[test]
fn dsm_manifest_byte_flips_never_panic_or_resume_wrong() {
    let mut m = dsm::DsmManifest {
        geometry: geom(),
        records: 3000,
        runs_formed: 63,
        pass: 1,
        generation: 0,
        redundancy: Some(pdisk::RedundancyInfo {
            stripe_disks: 2,
            dead: vec![pdisk::DiskId(0)],
        }),
        runs: vec![
            dsm::LogicalRun {
                start_stripe: 400,
                len_stripes: 30,
                records: 240,
            },
            dsm::LogicalRun {
                start_stripe: 430,
                len_stripes: 20,
                records: 160,
            },
        ],
    };
    let dir = unique_dir("dsm-fuzz");
    let path = dir.join("sort.manifest");
    m.save(&path).unwrap();
    let valid = std::fs::read(&path).unwrap();

    for i in 0..valid.len() {
        for mask in [0x01u8, 0xFF] {
            let mut bytes = valid.clone();
            bytes[i] ^= mask;
            std::fs::write(&path, &bytes).unwrap();
            match dsm::DsmManifest::load(&path) {
                Err(dsm::DsmError::Checkpoint(_)) => {}
                Err(other) => {
                    panic!("byte {i} ^ {mask:#04x}: wrong error type {other:?}")
                }
                Ok(parsed) => assert_eq!(
                    parsed, m,
                    "byte {i} ^ {mask:#04x}: corrupt manifest parsed to different state"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
