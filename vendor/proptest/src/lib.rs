//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! A real — if small — property-test runner: the `proptest!` macro
//! expands each property into a `#[test]` that draws the configured
//! number of random cases from the argument strategies and runs the
//! body against each.  Differences from upstream: the RNG seed is a
//! fixed hash of the test name (fully deterministic, no persistence
//! file), and failing cases are not shrunk — the assert message
//! reports the failing values instead.

pub mod test_runner {
    /// Deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every property gets its own
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, span)` via widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// Only `cases` is honored by this stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between heterogeneous strategies yielding the
    /// same value type — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Box a strategy for [`Union`] (a fn, not a cast, so the macro
    /// needs no type annotations at the call site).
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match upstream's default: Some three times out of four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option<T>` values from a `T` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Expand each property into a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let cases = ($cfg).cases;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut case = 0u32;
                while case < cases {
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies: `prop_oneof![s1, s2, s3]`.
/// (Upstream's `weight => strategy` arms are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_arm($strat)),+
        ])
    };
}

/// `prop_assume!(cond)` skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u32..17,
            n in 5usize..=9,
            items in vec(any::<u64>(), 1..8),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&n));
            prop_assert!(!items.is_empty() && items.len() < 8);
        }

        #[test]
        fn prop_map_applies(
            doubled in (1u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_picks_only_listed_arms(
            v in prop_oneof![Just(1u32), Just(7), 100u32..110],
        ) {
            prop_assert!(v == 1 || v == 7 || (100..110).contains(&v));
        }

        #[test]
        fn option_of_yields_both_variants(
            opts in crate::collection::vec(crate::option::of(1u32..5), 32),
        ) {
            prop_assert!(opts.iter().all(|o| o.is_none_or(|v| (1..5).contains(&v))));
            // 32 draws at 3:1 odds make an all-Some or all-None batch
            // vanishingly unlikely — and the RNG here is deterministic.
            prop_assert!(opts.iter().any(Option::is_some));
            prop_assert!(opts.iter().any(Option::is_none));
        }
    }
}
