//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns a guard directly).  A poisoned std lock is
//! recovered into its inner guard, matching parking_lot's behavior of
//! never poisoning.

use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
