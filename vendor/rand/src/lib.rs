//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.9 API used by this workspace:
//! `RngCore` / `Rng` / `SeedableRng`, `rngs::SmallRng`, typed
//! `random::<T>()`, `random_range` over integer ranges, and
//! `seq::SliceRandom::shuffle`.  The generator is SplitMix64 — uniform,
//! fast, and seedable, but its stream differs from upstream `SmallRng`,
//! so any test pinning exact draws is pinned against *this* stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion from raw generator output to a typed uniform sample.
pub trait Standard: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that supports uniform sampling (integer `a..b` / `a..=b`).
///
/// Single blanket impl per range shape so type inference can flow from
/// the use site into the range literal, as with upstream rand.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` via Lemire's widening-multiply map.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types with a uniform sampler over half-open / inclusive intervals.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// `RngCore` (including unsized `dyn`/generic `?Sized` receivers).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: 64-bit state, full-period, passes standard
    /// statistical batteries; plenty for simulation and tests.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(0..7);
            assert!(x < 7);
            let y = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
    }
}
