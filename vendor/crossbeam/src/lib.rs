//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only `crossbeam::channel` is used in this workspace (mpsc-style
//! worker queues in the file backend), so that is all this provides —
//! thin wrappers over `std::sync::mpsc` with crossbeam's names and
//! cloneable senders.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks while a bounded channel is full, like crossbeam.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let res = match &self.0 {
                Tx::Unbounded(s) => s.send(value),
                Tx::Bounded(s) => s.send(value),
            };
            res.map_err(|e| SendError(e.0))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// The message is handed back, as in crossbeam; `Debug` does not
    /// require `T: Debug` so `expect()` works on any payload.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_works_across_threads() {
            let (tx, rx) = bounded(1);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
