//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Emits empty `impl serde::Serialize` / `impl serde::Deserialize`
//! blocks — the stub `serde` traits carry no methods.  Handles structs
//! and enums, with or without generics-free bodies; generic types are
//! not supported (and none in this workspace derive serde generically).

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name: the identifier following `struct` or `enum`.
fn type_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("serde_derive stub: generated impl must parse")
}
