//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Provides the API surface the `bench` crate uses so benchmark
//! targets compile and link, but performs **no measurement**: bench
//! closures are accepted and dropped, so running a bench binary is an
//! instant no-op.  Use the `bench` crate's `src/bin` experiment
//! drivers for real paper measurements in this environment.

use std::fmt;
use std::hint;

pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    pub function: String,
    pub parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: String::new(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: String::new(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, _routine: R) {}
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { _name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let _ = id.into();
        self
    }
}

pub struct BenchmarkGroup {
    _name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, _f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let _ = id.into();
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        _input: &I,
        _f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let _ = id.into();
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
