//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on plain data
//! types so they stay serialization-ready; nothing currently routes
//! through a serde serializer.  The traits here are therefore empty
//! markers, and `serde_derive` emits empty impls for them.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
